"""Straggler-coding comparison — the [11] result the paper's intro cites.

Reproduces the reported 31.3%–35.7% average-runtime reduction of MDS-coded
distributed gradient descent over the uncoded baseline, on the shifted-
exponential machine model, and sweeps the recovery threshold k to show the
trade (small k: more work per worker; large k: longer straggler wait).

**Live lane** (``main()``): real stragglers on the live process backend.
One worker's map stage is paced N-times slower via ``$REPRO_FAULT_PLAN``
(N in {2, 5, 10}; ``--quick`` runs N=5 only) and a TeraSort runs with
speculative map re-execution on vs off.  Each lane's output is asserted
byte-identical to a fault-free reference, and the x5 lane must show the
acceptance-bar **>= 1.5x speedup** from speculation.  Results land in a
JSON gated by ``check_regression.py --kind stragglers``.

Usage::

    PYTHONPATH=src python benchmarks/bench_stragglers.py --quick \
        [--out results/stragglers.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict

import numpy as np
import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.stragglers.latency import ShiftedExponential  # noqa: E402
from repro.stragglers.matmul import CodedMatVec, UncodedMatVec  # noqa: E402
from repro.stragglers.runner import (  # noqa: E402
    render_straggler_table,
    straggler_comparison,
)
from repro.utils.tables import format_table  # noqa: E402


def bench_straggler_gd_comparison(benchmark, sink):
    results = benchmark.pedantic(
        lambda: straggler_comparison(iterations=80, seed=3),
        rounds=1,
        iterations=1,
    )
    by_scheme = {r.scheme: r for r in results}
    # Analytic saving inside the quoted band; simulation near it.
    exp_saving = 1.0 - (
        by_scheme["coded"].expected_iteration_time
        / by_scheme["uncoded"].expected_iteration_time
    )
    assert 0.313 <= exp_saving <= 0.357
    assert 0.25 < by_scheme["coded"].reduction_vs_uncoded < 0.45
    # Replication helps less than MDS coding (also per [11]).
    assert (
        by_scheme["replication"].reduction_vs_uncoded
        < by_scheme["coded"].reduction_vs_uncoded
    )
    benchmark.extra_info["coded_saving"] = round(
        by_scheme["coded"].reduction_vs_uncoded, 3
    )
    sink.add(
        "stragglers_gd", render_straggler_table(results, markdown=True)
    )


def bench_straggler_threshold_sweep(benchmark, sink):
    """Expected matvec time vs recovery threshold k (n = 10 workers)."""
    a = np.zeros((100, 4))
    lat = ShiftedExponential(shift=1.0, rate=0.5)

    def sweep():
        rows = []
        uncoded = UncodedMatVec(a, 10, latency=lat).expected_time()
        for k in range(1, 11):
            coded = CodedMatVec(
                a, 10, recovery_threshold=k, latency=lat
            ).expected_time()
            rows.append((k, coded, 1.0 - coded / uncoded))
        return uncoded, rows

    uncoded, rows = benchmark(sweep)
    times = [t for _, t, _ in rows]
    best_k = rows[int(np.argmin(times))][0]
    # The optimum is interior: both extremes lose.  k=n means waiting for
    # every worker at uncoded-sized blocks is strictly worse than uncoded
    # (same wait, n/k = 1) — equal actually, so compare strictly interior.
    assert 2 <= best_k <= 9, f"best k={best_k}"
    assert min(times) < uncoded
    # k = n degenerates to uncoded exactly.
    assert times[-1] == pytest.approx(uncoded)
    benchmark.extra_info["best_k"] = best_k
    sink.add(
        "stragglers_threshold",
        format_table(
            ["k", "expected matvec (s)", "saving vs uncoded"],
            [[k, t, f"{100 * s:.1f}%"] for k, t, s in rows],
            decimals=3,
            markdown=True,
        ),
    )


# ---------------------------------------------------------------------------
# Live lane: one real injected straggler, speculation on vs off.
# ---------------------------------------------------------------------------


def _live_sort(
    nodes: int, records: int, speculation: bool, plan: str, timeout: float
):
    """One TeraSort on a fresh process pool under the given fault plan.

    A fresh Session per lane so the forked workers inherit the plan from
    the environment (set before the pool fork) — the same no-plumbing
    path a real deployment uses.
    """
    from repro.kvpairs.datasource import TeragenSource
    from repro.cluster import connect
    from repro.session import Session, TeraSortSpec
    from repro.testing.faults import ENV_VAR

    old = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan
    try:
        with Session(connect(
            f"proc://{nodes}", timeout=timeout, heartbeat_interval=0.05
        )) as session:
            t0 = time.perf_counter()
            run = session.submit(TeraSortSpec(
                input=TeragenSource(records, seed=71),
                speculation=speculation,
                speculation_wait_factor=1.5,
                speculation_min_wait=0.1,
            )).result(timeout=timeout)
            seconds = time.perf_counter() - t0
        return run, seconds
    finally:
        if old is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = old


def live_bench(
    nodes: int, records: int, factors, timeout: float
) -> Dict:
    reference, _ = _live_sort(nodes, records, False, "", timeout)
    ref_bytes = [p.to_bytes() for p in reference.partitions]
    results: Dict = {"nodes": nodes, "records": records, "live": {}}
    for factor in factors:
        plan = f"stage.slow,rank=1,stage=map,factor={factor}"
        lane: Dict = {}
        for label, speculation in (("on", True), ("off", False)):
            run, seconds = _live_sort(
                nodes, records, speculation, plan, timeout
            )
            if [p.to_bytes() for p in run.partitions] != ref_bytes:
                raise SystemExit(
                    f"x{factor}/speculation-{label}: output diverged "
                    f"from the fault-free reference"
                )
            lane[f"{label}_seconds"] = seconds
            if speculation:
                lane["speculation_meta"] = run.meta["speculation"]
        lane["speedup"] = lane["off_seconds"] / lane["on_seconds"]
        results["live"][f"x{factor}"] = lane
        print(f"[live/x{factor}] speculation on {lane['on_seconds']:.2f}s "
              f"vs off {lane['off_seconds']:.2f}s — "
              f"{lane['speedup']:.2f}x (backups "
              f"{lane['speculation_meta']['backups']})", flush=True)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="live straggler lane: injected slowdown, "
                    "speculation on vs off")
    parser.add_argument("--nodes", "-K", type=int, default=4)
    parser.add_argument("--records", "-n", type=int, default=40_000)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: the x5 lane only, 20k records")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the results JSON here")
    args = parser.parse_args(argv)
    factors = (5,) if args.quick else (2, 5, 10)
    records = 20_000 if args.quick else args.records

    results = live_bench(args.nodes, records, factors, args.timeout)
    x5 = results["live"]["x5"]
    if x5["speedup"] < 1.5:
        print(f"FAIL: x5 straggler speedup {x5['speedup']:.2f}x is below "
              f"the 1.5x acceptance bar", file=sys.stderr)
        return 1
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    print(f"PASS: speculation recovered a x5 map straggler "
          f"{x5['speedup']:.2f}x faster (>= 1.5x bar), byte-identical "
          f"in every lane")
    return 0


if __name__ == "__main__":
    sys.exit(main())
