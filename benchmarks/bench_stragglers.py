"""Straggler-coding comparison — the [11] result the paper's intro cites.

Reproduces the reported 31.3%–35.7% average-runtime reduction of MDS-coded
distributed gradient descent over the uncoded baseline, on the shifted-
exponential machine model, and sweeps the recovery threshold k to show the
trade (small k: more work per worker; large k: longer straggler wait).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.matmul import CodedMatVec, UncodedMatVec
from repro.stragglers.runner import (
    render_straggler_table,
    straggler_comparison,
)
from repro.utils.tables import format_table


def bench_straggler_gd_comparison(benchmark, sink):
    results = benchmark.pedantic(
        lambda: straggler_comparison(iterations=80, seed=3),
        rounds=1,
        iterations=1,
    )
    by_scheme = {r.scheme: r for r in results}
    # Analytic saving inside the quoted band; simulation near it.
    exp_saving = 1.0 - (
        by_scheme["coded"].expected_iteration_time
        / by_scheme["uncoded"].expected_iteration_time
    )
    assert 0.313 <= exp_saving <= 0.357
    assert 0.25 < by_scheme["coded"].reduction_vs_uncoded < 0.45
    # Replication helps less than MDS coding (also per [11]).
    assert (
        by_scheme["replication"].reduction_vs_uncoded
        < by_scheme["coded"].reduction_vs_uncoded
    )
    benchmark.extra_info["coded_saving"] = round(
        by_scheme["coded"].reduction_vs_uncoded, 3
    )
    sink.add(
        "stragglers_gd", render_straggler_table(results, markdown=True)
    )


def bench_straggler_threshold_sweep(benchmark, sink):
    """Expected matvec time vs recovery threshold k (n = 10 workers)."""
    a = np.zeros((100, 4))
    lat = ShiftedExponential(shift=1.0, rate=0.5)

    def sweep():
        rows = []
        uncoded = UncodedMatVec(a, 10, latency=lat).expected_time()
        for k in range(1, 11):
            coded = CodedMatVec(
                a, 10, recovery_threshold=k, latency=lat
            ).expected_time()
            rows.append((k, coded, 1.0 - coded / uncoded))
        return uncoded, rows

    uncoded, rows = benchmark(sweep)
    times = [t for _, t, _ in rows]
    best_k = rows[int(np.argmin(times))][0]
    # The optimum is interior: both extremes lose.  k=n means waiting for
    # every worker at uncoded-sized blocks is strictly worse than uncoded
    # (same wait, n/k = 1) — equal actually, so compare strictly interior.
    assert 2 <= best_k <= 9, f"best k={best_k}"
    assert min(times) < uncoded
    # k = n degenerates to uncoded exactly.
    assert times[-1] == pytest.approx(uncoded)
    benchmark.extra_info["best_k"] = best_k
    sink.add(
        "stragglers_threshold",
        format_table(
            ["k", "expected matvec (s)", "saving vs uncoded"],
            [[k, t, f"{100 * s:.1f}%"] for k, t, s in rows],
            decimals=3,
            markdown=True,
        ),
    )
