"""Streaming-overlap benchmark: hide shuffle communication behind compute.

The live acceptance lane for the ``overlap=True`` execution mode.  On a
paced process mesh (per-worker egress throttled to the paper's 100 Mbps
NIC class, so communication is genuinely expensive relative to compute)
the same sort runs staged and overlapped:

* **uncoded** — the serial unicast shuffle (one sender's turn at a time)
  vs the streaming engine that ships every map window's chunks the
  moment the window completes and merges arrivals incrementally.  The
  acceptance bar is a **>= 1.3x makespan speedup**.
* **coded** — the Fig. 9(b) serial multicast schedule vs the
  map-progress-aware overlapped multicast engine (reported, no bar).

Every lane's output is asserted byte-identical to the staged reference
*before* anything is timed — an overlap mode that changed one byte would
fail here, not in the timing table.  The measured uncoded overlap
makespan is additionally checked against
:meth:`~repro.sim.costmodel.EC2CostModel.overlapped_makespan` (compute
from the staged lane's stage table, communication = staged shuffle
seconds / K): the prediction must land **within 25%**.

Results land in a JSON gated by ``check_regression.py --kind overlap``.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap.py --quick \
        [--out results/overlap.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from typing import Dict, List, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cluster import connect  # noqa: E402
from repro.core.terasort import SPEC_WINDOWS_PER_SHARD  # noqa: E402
from repro.kvpairs.datasource import FileSource  # noqa: E402
from repro.kvpairs.teragen import teragen_to_file  # noqa: E402
from repro.session import (  # noqa: E402
    CodedTeraSortSpec,
    Session,
    TeraSortSpec,
)
from repro.sim.costmodel import EC2CostModel  # noqa: E402

#: The paper's NIC class: 100 Mbps per-worker egress.
RATE_BYTES_PER_S = 12_500_000


def _bytes(run) -> List[bytes]:
    return [p.to_bytes() for p in run.partitions]


def _timed(session: Session, spec, timeout: float) -> Tuple[object, float]:
    t0 = time.perf_counter()
    run = session.submit(spec).result(timeout=timeout)
    return run, time.perf_counter() - t0


def _lane(
    session: Session,
    staged_spec,
    overlap_spec,
    reps: int,
    timeout: float,
) -> Dict:
    """Time one staged-vs-overlap pair; byte-identity gates the timing."""
    staged_run, _ = _timed(session, staged_spec, timeout)
    overlap_run, _ = _timed(session, overlap_spec, timeout)
    if _bytes(overlap_run) != _bytes(staged_run):
        raise SystemExit(
            "overlap output diverged from the staged schedule — "
            "refusing to time a broken mode"
        )
    staged_wall, overlap_wall = [], []
    staged_stages, overlap_stages = staged_run, overlap_run
    for _ in range(reps):
        staged_stages, s = _timed(session, staged_spec, timeout)
        overlap_stages, o = _timed(session, overlap_spec, timeout)
        staged_wall.append(s)
        overlap_wall.append(o)
    staged_span = staged_stages.stage_times.total
    overlap_span = overlap_stages.stage_times.total
    return {
        "staged_seconds": min(staged_wall),
        "overlap_seconds": min(overlap_wall),
        "speedup": min(staged_wall) / min(overlap_wall),
        "staged_stage_seconds": staged_span,
        "overlap_stage_seconds": overlap_span,
        "stage_speedup": staged_span / overlap_span,
        "hidden_seconds": overlap_stages.meta["overlap"]["hidden_seconds"],
        "staged_stage_times": dict(staged_stages.stage_times.seconds),
        "overlap_stage_times": dict(overlap_stages.stage_times.seconds),
    }


def live_bench(nodes: int, records: int, reps: int, timeout: float) -> Dict:
    results: Dict = {
        "nodes": nodes,
        "records": records,
        "rate_mbps": RATE_BYTES_PER_S * 8 / 1e6,
    }
    with tempfile.TemporaryDirectory(prefix="bench-overlap-") as tmp:
        # Pre-generate the input file so neither lane pays teragen inside
        # a timed stage (the paper's TeraSort reads its shard from disk).
        path = str(pathlib.Path(tmp) / "input.bin")
        teragen_to_file(path, records, seed=83)
        source = FileSource(path)
        with Session(
            connect(
                f"proc://{nodes}",
                timeout=timeout,
                rate_bytes_per_s=RATE_BYTES_PER_S,
            )
        ) as session:
            # Warm the pool (fork + imports) before anything is timed.
            session.submit(TeraSortSpec(input=source)).result(timeout=timeout)

            results["uncoded"] = _lane(
                session,
                TeraSortSpec(input=source),
                TeraSortSpec(input=source, overlap=True),
                reps,
                timeout,
            )
            results["coded"] = _lane(
                session,
                CodedTeraSortSpec(
                    input=source, redundancy=1, schedule="serial"
                ),
                CodedTeraSortSpec(
                    input=source,
                    redundancy=1,
                    schedule="serial",
                    overlap=True,
                ),
                reps,
                timeout,
            )

    # Cost-model cross-check, validating the overlapped-makespan law
    # ``max(compute, comm) + min/windows``: compute is the overlap
    # lane's own non-shuffle stage seconds (the map + merge work the
    # engine interleaves), comm the staged serial shuffle compressed by
    # the K concurrent senders.  The measured makespan must land on the
    # max-plus-tail envelope, not on the staged sum.
    lane = results["uncoded"]
    shuffle = lane["staged_stage_times"].get("shuffle", 0.0)
    compute = sum(
        seconds
        for stage, seconds in lane["overlap_stage_times"].items()
        if stage != "shuffle"
    )
    model = EC2CostModel.paper_calibrated()
    predicted = model.overlapped_makespan(
        compute, shuffle / nodes, windows=SPEC_WINDOWS_PER_SHARD
    )
    measured = lane["overlap_stage_seconds"]
    lane["predicted_overlap_seconds"] = predicted
    lane["prediction_ratio"] = predicted / measured if measured else 0.0
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming overlap: staged vs overlapped makespan "
        "on a 100 Mbps-paced process mesh"
    )
    parser.add_argument("--nodes", "-K", type=int, default=4)
    parser.add_argument("--records", "-n", type=int, default=80_000)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 320k records, 2 reps")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the results JSON here")
    args = parser.parse_args(argv)
    # The per-worker egress must comfortably exceed the token bucket's
    # burst allowance (rate/10 = 1.25 MB) or nothing actually paces and
    # there is no communication to hide; 320k records = 6 MB egress per
    # worker at K=4.
    records = 320_000 if args.quick else args.records
    reps = 2 if args.quick else args.reps

    results = live_bench(args.nodes, records, reps, args.timeout)
    unc, cod = results["uncoded"], results["coded"]
    print(
        f"[uncoded] staged {unc['staged_seconds']:.2f}s vs overlap "
        f"{unc['overlap_seconds']:.2f}s — {unc['speedup']:.2f}x "
        f"(hidden {unc['hidden_seconds']:.2f}s)", flush=True,
    )
    print(
        f"[coded]   staged {cod['staged_seconds']:.2f}s vs overlap "
        f"{cod['overlap_seconds']:.2f}s — {cod['speedup']:.2f}x",
        flush=True,
    )
    print(
        f"[model]   predicted overlap {unc['predicted_overlap_seconds']:.2f}s "
        f"vs measured {unc['overlap_stage_seconds']:.2f}s "
        f"({unc['prediction_ratio']:.2f}x)", flush=True,
    )

    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.out}")

    failed = False
    if unc["speedup"] < 1.3:
        print(
            f"FAIL: uncoded overlap speedup {unc['speedup']:.2f}x is below "
            f"the 1.3x acceptance bar", file=sys.stderr,
        )
        failed = True
    if not 0.75 <= unc["prediction_ratio"] <= 1.25:
        print(
            f"FAIL: cost-model prediction off by more than 25% "
            f"(ratio {unc['prediction_ratio']:.2f}x)", file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"PASS: overlap hid {unc['hidden_seconds']:.2f}s of communication "
        f"({unc['speedup']:.2f}x uncoded, {cod['speedup']:.2f}x coded), "
        f"byte-identical in every lane; model within 25%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
