"""§V-C trend: speedup vs cluster size K at fixed r = 3.

The paper: "As K increases, the speedup decreases" — CodeGen grows as
C(K, r+1) and each node holds a smaller data fraction, raising the
communication load.
"""

from __future__ import annotations

from repro.experiments.figures import sweep_k
from repro.experiments.report import render_sweep


def bench_sweep_k_r3(benchmark, sink):
    points = benchmark.pedantic(
        lambda: sweep_k(redundancy=3, k_values=(8, 12, 16, 20, 24)),
        rounds=1,
        iterations=1,
    )
    speedups = [p.speedup for p in points]
    ks = [p.num_nodes for p in points]
    assert ks == [8, 12, 16, 20, 24]
    # Monotone decreasing speedup in K.
    assert speedups == sorted(speedups, reverse=True), speedups
    # All still > 1 (coding keeps winning in this range).
    assert min(speedups) > 1.0
    benchmark.extra_info["speedups"] = {
        k: round(s, 2) for k, s in zip(ks, speedups)
    }
    sink.add(
        "sweep_k",
        render_sweep(points, "Speedup vs K (r=3, 12 GB)", markdown=True),
    )
