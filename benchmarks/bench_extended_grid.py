"""The extended (K, r) grid behind the paper's "up to 4.11x" remark (§V-C).

The paper points to additional experiments on its companion site with
speedups up to 4.11x.  We sweep K in {12, 16, 20} x r in {2..6} and check
that the best configuration lands in that band.
"""

from __future__ import annotations

from repro.experiments.figures import extended_grid
from repro.experiments.report import render_sweep


def bench_extended_grid(benchmark, sink):
    points = benchmark.pedantic(
        lambda: extended_grid(), rounds=1, iterations=1
    )
    best = max(points, key=lambda p: p.speedup)
    # The best simulated speedup should approach the paper's 4.11x
    # (smaller K + moderate r is the sweet spot).
    assert 3.0 < best.speedup < 5.0, (best.num_nodes, best.redundancy, best.speedup)
    benchmark.extra_info["best"] = {
        "K": best.num_nodes,
        "r": best.redundancy,
        "speedup": round(best.speedup, 2),
    }
    benchmark.extra_info["paper_best"] = 4.11
    sink.add(
        "extended_grid",
        render_sweep(
            points, "Extended (K, r) grid — paper reports up to 4.11x",
            markdown=True,
        ),
    )
