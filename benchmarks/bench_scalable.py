"""Scalable (grouped) coding — quantifying the §VI future direction.

The paper's CodeGen wall: C(20, 6) = 38,760 group setups cost 140.91 s of
the 441.10 s total at K=20, r=5 (Table III).  The grouped construction
([24]) rebuilds the coding inside groups of g nodes: CodeGen shrinks to
C(g, r+1) per group and group shuffles run concurrently, at the price of
(1/r)(1 - r/g) > (1/r)(1 - r/K) communication load and r/g > r/K storage.
"""

from __future__ import annotations

import pytest

from repro.scalable.sim import simulate_grouped_coded_terasort
from repro.scalable.theory import grouped_vs_full
from repro.sim.runner import simulate_coded_terasort, simulate_terasort
from repro.utils.tables import format_table


def bench_grouped_vs_full_k20(benchmark, sink):
    """Head-to-head at the paper's K=20, r=5 configuration."""

    def run():
        base = simulate_terasort(20, granularity="turn")
        full = simulate_coded_terasort(20, 5, granularity="turn")
        grouped = simulate_grouped_coded_terasort(20, 10, 5)
        return base, full, grouped

    base, full, grouped = benchmark.pedantic(run, rounds=1, iterations=1)
    # CodeGen collapses by more than an order of magnitude.
    assert grouped.stage_times["codegen"] < full.stage_times["codegen"] / 20
    # Map pays the K/g = 2x price.
    assert grouped.stage_times["map"] == pytest.approx(
        2 * full.stage_times["map"], rel=0.02
    )
    # End to end the grouped scheme wins big at this operating point.
    speedup_full = base.total_time / full.total_time
    speedup_grouped = base.total_time / grouped.total_time
    assert speedup_full == pytest.approx(2.2, rel=0.15)  # paper's 2.20x
    assert speedup_grouped > 2 * speedup_full
    benchmark.extra_info["speedup_full"] = round(speedup_full, 2)
    benchmark.extra_info["speedup_grouped"] = round(speedup_grouped, 2)

    rows = []
    for label, rep in (
        ("TeraSort", base),
        ("CodedTeraSort r=5", full),
        ("Grouped g=10, r=5", grouped),
    ):
        stage = rep.stage_times
        rows.append(
            [
                label,
                stage.seconds.get("codegen", 0.0),
                stage.seconds.get("map", 0.0),
                stage.seconds.get("shuffle", 0.0),
                stage.total,
                base.total_time / rep.total_time,
            ]
        )
    sink.add(
        "scalable_k20",
        "Grouped vs full coding (K=20, 12 GB)\n\n"
        + format_table(
            ["scheme", "codegen (s)", "map (s)", "shuffle (s)", "total (s)", "speedup"],
            rows,
            decimals=2,
            markdown=True,
        ),
    )


def bench_grouped_group_size_sweep(benchmark, sink):
    """Sweep g at K=24, per-node storage fixed at 1/2 (r = g/2).

    The per-group shuffle wall time is g-independent at fixed storage
    (each group moves (1-rho) D / (rho K) concurrently), so every term
    left — CodeGen C(g, r+1), the multicast log-penalty in r = rho g, and
    the Map slowdown — *grows* with g: under concurrent group shuffles,
    the smallest group the storage budget allows is optimal, and wide
    coding only pays off when the fabric serializes transfers (the
    paper's regime).  g = K itself is the scalability wall: C(24, 13)
    setups cost hours.
    """
    configs = [(2, 1), (4, 2), (6, 3), (8, 4), (12, 6)]

    def sweep():
        base = simulate_terasort(24, granularity="turn")
        points = []
        for g, r in configs:
            rep = simulate_grouped_coded_terasort(24, g, r, granularity="turn")
            points.append((g, r, rep))
        return base, points

    base, points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = {g: base.total_time / rep.total_time for g, _, rep in points}
    codegen = [rep.stage_times["codegen"] for _, _, rep in points]
    # CodeGen grows monotonically with g at fixed storage (C(g, g/2+1)).
    assert codegen == sorted(codegen)
    # Monotone: every grouping beats wider coding at fixed storage here.
    ordered = [speedups[g] for g, _ in configs]
    assert ordered == sorted(ordered, reverse=True)
    assert all(s > 5 for s in ordered)  # all far above the paper's 2.2x
    # The g = K endpoint (plain coded at r = 12) is the wall: C(24, 13)
    # group setups alone cost hours — asserted analytically, the event
    # count makes it pointless to simulate.
    from repro.sim.costmodel import EC2CostModel
    from repro.utils.subsets import binomial

    wall = EC2CostModel.paper_calibrated().codegen_time(binomial(24, 13))
    assert wall > 3600
    benchmark.extra_info["speedups"] = {
        g: round(s, 2) for g, s in speedups.items()
    }
    rows = [
        [
            f"g={g}, r={r}",
            rep.stage_times["codegen"],
            rep.stage_times["map"],
            rep.stage_times["shuffle"],
            rep.total_time,
            base.total_time / rep.total_time,
        ]
        for g, r, rep in points
    ]
    sink.add(
        "scalable_sweep",
        "Group-size sweep (K=24, per-node storage 1/2, 12 GB)\n\n"
        + format_table(
            ["config", "codegen (s)", "map (s)", "shuffle (s)", "total (s)", "speedup"],
            rows,
            decimals=2,
            markdown=True,
        ),
    )


def bench_grouped_theory_table(benchmark, sink):
    """Closed-form comparison table across (K, g, r) configurations."""

    def build():
        rows = []
        for k, g, r in ((16, 4, 2), (16, 8, 4), (20, 10, 5), (24, 6, 3)):
            cmp = grouped_vs_full(k, g, r)
            rows.append(
                [
                    f"K={k}, g={g}, r={r}",
                    cmp.load_grouped,
                    cmp.load_full,
                    cmp.codegen_grouped,
                    cmp.codegen_full,
                    f"{cmp.codegen_ratio:.0f}x",
                ]
            )
        return rows

    rows = benchmark(build)
    for row in rows:
        assert row[1] >= row[2]  # grouped load >= equal-storage full load
    sink.add(
        "scalable_theory",
        "Grouped vs full coding, closed forms (equal per-node storage)\n\n"
        + format_table(
            [
                "config",
                "grouped load",
                "full load",
                "grouped CodeGen",
                "full CodeGen",
                "CodeGen saving",
            ],
            rows,
            decimals=3,
            markdown=True,
        ),
    )
