"""Real end-to-end runs: multiprocess workers, sockets, rate-limited NICs.

The closest local equivalent of the paper's EC2 experiment: K worker
*processes* exchange data over a socket mesh with token-bucket pacing
(the paper's ``tc``-style 100 Mbps throttle, scaled so each bench run
stays in seconds).  CodedTeraSort must beat TeraSort end-to-end when the
shuffle is bandwidth-bound — the paper's claim measured for real, not
simulated.

The TCP lane repeats the comparison on the multi-host backend: K
``repro worker`` agents rendezvous over real TCP on localhost (the same
code path that spans machines), with the same paced NICs.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.coded_terasort import run_coded_terasort
from repro.core.terasort import run_terasort
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.api import MulticastMode
from repro.cluster import connect
from repro.runtime.tcp import run_worker
from repro.session import CodedTeraSortSpec, Session, TeraSortSpec
from repro.utils.tables import format_table

K = 4
R = 2
RECORDS = 40_000  # 4 MB
RATE = 4e6  # 4 MB/s per-node egress -> shuffle-bound like the paper


def bench_real_terasort_rate_limited(benchmark):
    data = teragen(RECORDS, seed=3)
    run = benchmark.pedantic(
        lambda: run_terasort(
            connect(f"proc://{K}", rate_bytes_per_s=RATE, timeout=120), data
        ),
        rounds=1,
        iterations=1,
    )
    validate_sorted_permutation(data, run.partitions)
    benchmark.extra_info["shuffle_s"] = round(run.stage_times["shuffle"], 3)
    benchmark.extra_info["total_s"] = round(run.stage_times.total, 3)


def bench_real_coded_terasort_rate_limited(benchmark):
    data = teragen(RECORDS, seed=3)
    run = benchmark.pedantic(
        lambda: run_coded_terasort(
            connect(
                f"proc://{K}",
                rate_bytes_per_s=RATE,
                timeout=120,
                multicast_mode=MulticastMode.TREE,
            ),
            data,
            redundancy=R,
        ),
        rounds=1,
        iterations=1,
    )
    validate_sorted_permutation(data, run.partitions)
    benchmark.extra_info["shuffle_s"] = round(run.stage_times["shuffle"], 3)
    benchmark.extra_info["total_s"] = round(run.stage_times.total, 3)


def bench_real_speedup_comparison(benchmark, sink):
    """Both algorithms back-to-back; asserts the coded shuffle wins.

    Uses a larger input than the standalone benches so the rate-limited
    transfer time dominates scheduler noise (this is a real wall-clock
    measurement on whatever machine runs the suite).
    """
    data = teragen(100_000, seed=4)  # 10 MB -> ~2.5 s of paced shuffle

    def both():
        plain = run_terasort(
            connect(f"proc://{K}", rate_bytes_per_s=RATE, timeout=240), data
        )
        coded = run_coded_terasort(
            connect(
                f"proc://{K}",
                rate_bytes_per_s=RATE,
                timeout=240,
                multicast_mode=MulticastMode.TREE,
            ),
            data,
            redundancy=R,
        )
        return plain, coded

    plain, coded = benchmark.pedantic(both, rounds=1, iterations=1)
    validate_sorted_permutation(data, plain.partitions)
    validate_sorted_permutation(data, coded.partitions)
    shuffle_gain = (
        plain.stage_times["shuffle"] / coded.stage_times["shuffle"]
    )
    if shuffle_gain <= 1.1:
        # One retry: a co-scheduled process can stall a worker mid-turn;
        # a genuine regression fails twice.
        plain, coded = both()
        shuffle_gain = (
            plain.stage_times["shuffle"] / coded.stage_times["shuffle"]
        )
    # Paper §V-C: shuffle gain is positive but below r (multicast overhead).
    assert shuffle_gain > 1.1, f"coded shuffle not faster: {shuffle_gain:.2f}"
    benchmark.extra_info["real_shuffle_gain"] = round(shuffle_gain, 2)
    benchmark.extra_info["r"] = R
    rows = []
    for label, run in (("TeraSort", plain), ("CodedTeraSort r=2", coded)):
        st = run.stage_times
        rows.append([label, st["shuffle"], st.total])
    sink.add(
        "real_cluster",
        f"Real multiprocess run — K={K}, {RECORDS} records, "
        f"{RATE/1e6:.0f} MB/s per-node throttle\n\n"
        + format_table(
            ["algorithm", "shuffle (s)", "total (s)"],
            rows,
            decimals=3,
            markdown=True,
        ),
    )


def bench_real_tcp_cluster_speedup(benchmark, sink):
    """The paper's comparison on the multi-host TCP backend.

    K worker agents rendezvous over real TCP (localhost, same code path
    as separate machines) with paced NICs; both algorithms run
    back-to-back on one ``Session`` over the standing mesh, and the
    coded shuffle must win.
    """
    ctx = multiprocessing.get_context("fork")
    data = teragen(100_000, seed=4)  # 10 MB -> ~2.5 s of paced shuffle

    def both():
        with connect(
            "tcp://127.0.0.1:0",
            size=K,
            rate_bytes_per_s=RATE,
            timeout=240,
            multicast_mode=MulticastMode.TREE,
            connect_timeout=60,
        ) as cluster:
            procs = [
                ctx.Process(
                    target=run_worker,
                    kwargs=dict(join=cluster.address, quiet=True),
                    daemon=True,
                )
                for _ in range(K)
            ]
            for p in procs:
                p.start()
            try:
                with Session(cluster) as session:
                    plain = session.submit(TeraSortSpec(data=data)).result()
                    coded = session.submit(
                        CodedTeraSortSpec(data=data, redundancy=R)
                    ).result()
            finally:
                for p in procs:
                    p.join(timeout=30)
                    if p.is_alive():  # pragma: no cover - defensive
                        p.terminate()
                        p.join()
        return plain, coded

    plain, coded = benchmark.pedantic(both, rounds=1, iterations=1)
    validate_sorted_permutation(data, plain.partitions)
    validate_sorted_permutation(data, coded.partitions)
    shuffle_gain = plain.stage_times["shuffle"] / coded.stage_times["shuffle"]
    if shuffle_gain <= 1.1:
        # One retry: a co-scheduled process can stall a worker mid-turn;
        # a genuine regression fails twice.
        plain, coded = both()
        shuffle_gain = (
            plain.stage_times["shuffle"] / coded.stage_times["shuffle"]
        )
    assert shuffle_gain > 1.1, f"coded shuffle not faster: {shuffle_gain:.2f}"
    benchmark.extra_info["real_tcp_shuffle_gain"] = round(shuffle_gain, 2)
    rows = []
    for label, run in (("TeraSort", plain), ("CodedTeraSort r=2", coded)):
        st = run.stage_times
        rows.append([label, st["shuffle"], st.total])
    sink.add(
        "real_cluster_tcp",
        f"Multi-host TCP backend (localhost mesh) — K={K}, 100000 records, "
        f"{RATE/1e6:.0f} MB/s per-node throttle, one session for both jobs"
        "\n\n"
        + format_table(
            ["algorithm", "shuffle (s)", "total (s)"],
            rows,
            decimals=3,
            markdown=True,
        ),
    )
