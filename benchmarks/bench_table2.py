"""Table II: TeraSort vs CodedTeraSort (r = 3, 5), 12 GB, K = 16.

The paper's headline result: 2.16x and 3.39x end-to-end speedups.  Each
bench simulates one row at full scale with per-transfer DES granularity
(7,280 multicasts at r=3; 48,048 at r=5).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import render_table
from repro.experiments.tables import table2
from repro.sim.runner import simulate_coded_terasort, simulate_terasort

#: paper speedups for the assertion band.
PAPER_SPEEDUP = {3: 2.16, 5: 3.39}


def bench_table2_full(benchmark, sink):
    """All three rows + speedup comparison (the complete table)."""
    result = benchmark.pedantic(
        lambda: table2(granularity="transfer"), rounds=1, iterations=1
    )
    for label, paper_s, measured_s in result.speedup_pairs():
        assert measured_s == pytest.approx(paper_s, abs=0.45), label
    benchmark.extra_info["speedups"] = {
        label: round(m, 2) for label, _p, m in result.speedup_pairs()
    }
    sink.add("table2", render_table(result, markdown=True))


@pytest.mark.parametrize("r", [3, 5])
def bench_table2_coded_row(benchmark, r):
    """One coded row in isolation (per-transfer event granularity)."""
    report = benchmark.pedantic(
        lambda: simulate_coded_terasort(16, r), rounds=1, iterations=1
    )
    base = simulate_terasort(16, granularity="turn")
    speedup = base.total_time / report.total_time
    assert speedup == pytest.approx(PAPER_SPEEDUP[r], abs=0.45)
    benchmark.extra_info["simulated_speedup"] = round(speedup, 2)
    benchmark.extra_info["paper_speedup"] = PAPER_SPEEDUP[r]
    benchmark.extra_info["des_transfers"] = report.transfers
