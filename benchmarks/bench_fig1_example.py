"""Fig. 1: the Coded MapReduce example (K=3, Q=3, N=6).

Reproduces the three schemes' communication loads in intermediate-value
units: 12 (uncoded r=1), 6 (uncoded r=2), 3 (coded r=2) — measured from
real engine runs with the fixed-size-value probe job.
"""

from __future__ import annotations

from repro.core.cmr import run_mapreduce
from repro.core.jobs import PROBE_UNIT, FixedSizeProbeJob
from repro.cluster import connect
from repro.utils.tables import format_table


def _loads():
    files = [f"file-{i}" for i in range(6)]
    out = {}
    for label, coded, r in (
        ("uncoded r=1 (Fig. 1a)", False, 1),
        ("uncoded r=2", False, 2),
        ("coded r=2 (Fig. 1b)", True, 2),
    ):
        run = run_mapreduce(
            connect("inproc://3", recv_timeout=30), FixedSizeProbeJob(), files,
            redundancy=r, coded=coded,
        )
        records = [x for x in run.traffic.records if x.stage == "shuffle"]
        if coded:
            header = 4 + 2 + 4 + 4 * (r + 1) + 12 * r + 8
            payload = sum(x.payload_bytes - header for x in records)
        else:
            payload = sum(x.payload_bytes for x in records)
        out[label] = payload / PROBE_UNIT
    return out


def bench_fig1_example_loads(benchmark, sink):
    loads = benchmark(_loads)
    assert loads["uncoded r=1 (Fig. 1a)"] == 12
    assert loads["uncoded r=2"] == 6
    assert loads["coded r=2 (Fig. 1b)"] == 3
    benchmark.extra_info["loads_in_iv_units"] = loads
    sink.add(
        "fig1_example",
        "Fig. 1 example — measured loads in intermediate-value units\n\n"
        + format_table(
            ["scheme", "paper load", "measured load"],
            [
                ["uncoded r=1", 12, loads["uncoded r=1 (Fig. 1a)"]],
                ["uncoded r=2", 6, loads["uncoded r=2"]],
                ["coded r=2", 3, loads["coded r=2 (Fig. 1b)"]],
            ],
            decimals=1,
            markdown=True,
        ),
    )
