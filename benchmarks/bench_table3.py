"""Table III: TeraSort vs CodedTeraSort (r = 3, 5), 12 GB, K = 20.

The K=20 points show the §V-C trends: the r=5 CodeGen stage balloons to
~141 s (38,760 groups) and the speedup flattens to 2.20x.  The r=5 shuffle
alone is 232,560 DES transfer events — the largest simulation in the suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import render_table
from repro.experiments.tables import table3


def bench_table3_full(benchmark, sink):
    result = benchmark.pedantic(
        lambda: table3(granularity="transfer"), rounds=1, iterations=1
    )
    speedups = {label: m for label, _p, m in result.speedup_pairs()}
    assert speedups["CodedTeraSort r=3"] == pytest.approx(1.97, abs=0.30)
    assert speedups["CodedTeraSort r=5"] == pytest.approx(2.20, abs=0.30)

    # §V-C: at K=20 the r=5 CodeGen dominates its own coding gain enough
    # that r=5 barely beats r=3 (vs the clear win at K=16).
    rows = {row.label: row for row in result.rows}
    codegen_r5 = rows["CodedTeraSort r=5"].measured.stage_times["codegen"]
    assert codegen_r5 > 100.0  # paper: 140.91 s
    benchmark.extra_info["speedups"] = {
        k: round(v, 2) for k, v in speedups.items()
    }
    benchmark.extra_info["codegen_r5_s"] = round(codegen_r5, 1)
    sink.add("table3", render_table(result, markdown=True))
