"""§V-C trend: speedup vs redundancy r at fixed K.

The paper observes that speedup rises with r while the shuffle gain
dominates, then falls once the C(K, r+1) CodeGen cost takes over — and
limits its experiments to r <= 5 because of it.  The crossover location
depends on K through C(K, r+1):

* at K=20, C(20, r+1) grows steeply (38,760 groups already at r=5) and
  the full rise-then-fall appears inside r = 1..8 (peak near r=4);
* at K=16, C(16, r+1) tops out at r+1=8 (12,870 groups ~ 43 s), which
  never dominates the 12 GB shuffle, so within the paper's experimental
  range the speedup is still rising — consistent with Table II showing
  3.39x at r=5 > 2.16x at r=3.
"""

from __future__ import annotations

from repro.experiments.figures import sweep_r
from repro.experiments.report import render_sweep


def bench_sweep_r_k16(benchmark, sink):
    """K=16: monotone rise over the paper's r range (Table II regime)."""
    points = benchmark.pedantic(
        lambda: sweep_r(num_nodes=16, r_values=(1, 2, 3, 4, 5)),
        rounds=1,
        iterations=1,
    )
    speedups = {p.redundancy: p.speedup for p in points}
    # r=1 pays the multicast penalty for no coding gain.
    assert speedups[1] < 1.0
    # Monotone rise through the measured range; Table II ratios bracketed.
    for r in (2, 3, 4, 5):
        assert speedups[r] > speedups[r - 1]
    assert 1.8 < speedups[3] < 2.6  # paper: 2.16x
    assert 2.8 < speedups[5] < 3.9  # paper: 3.39x
    # CodeGen grows with C(16, r+1) over this range.
    codegen = [p.codegen_time for p in points]
    assert codegen == sorted(codegen)
    benchmark.extra_info["speedups"] = {
        r: round(s, 2) for r, s in speedups.items()
    }
    sink.add(
        "sweep_r_k16",
        render_sweep(points, "Speedup vs r (K=16, 12 GB)", markdown=True),
    )


def bench_sweep_r_k20(benchmark, sink):
    """K=20: the full rise-then-fall — CodeGen takes over past r~4."""
    points = benchmark.pedantic(
        lambda: sweep_r(num_nodes=20, r_values=(1, 2, 3, 4, 5, 6, 7, 8)),
        rounds=1,
        iterations=1,
    )
    speedups = {p.redundancy: p.speedup for p in points}
    # Rising region (shuffle dominates).
    assert speedups[2] > speedups[1]
    assert speedups[3] > speedups[2]
    # Falling region: C(20, r+1) CodeGen dominates (§V-C observation).
    peak_r = max(speedups, key=speedups.get)
    assert 3 <= peak_r <= 6, f"peak at r={peak_r}"
    assert speedups[8] < speedups[peak_r] / 1.5
    # CodeGen strictly increases with r here (C(20, r+1) monotone to r=8).
    codegen = [p.codegen_time for p in points]
    assert codegen == sorted(codegen)
    benchmark.extra_info["speedups"] = {
        r: round(s, 2) for r, s in speedups.items()
    }
    benchmark.extra_info["peak_r"] = peak_r
    sink.add(
        "sweep_r_k20",
        render_sweep(points, "Speedup vs r (K=20, 12 GB)", markdown=True),
    )
