"""Merge/partition kernel microbenchmark: OVC + radix vs classic.

Quantifies the compute-kernel layer of :mod:`repro.kvpairs.kernels` in
isolation, on the same data through both implementations:

* **merge** — k-way :func:`~repro.kvpairs.sorting.merge_sorted` of
  in-RAM sorted runs (the Reduce hot loop), TeraGen keys;
* **duplicates** — the same merge on duplicate-heavy keys, where the
  OVC column's distinct-group compression does the work;
* **external** — :func:`~repro.kvpairs.spill.merge_runs` over runs
  spilled by :class:`~repro.kvpairs.spill.ExternalSorter` (the ovc lane
  reads persisted ``.ovc`` sidecars instead of recomputing codes);
* **partition** — map-side :func:`~repro.core.mapper.hash_file`
  (radix-table partition indices + radix grouping vs ``searchsorted`` +
  ``int64`` stable argsort).

Every lane asserts the two implementations produce **byte-identical**
output before reporting numbers.  The ``ovc`` block also reports the
comparison-byte accounting from :data:`repro.kvpairs.kernels.stats`:
what fraction of rank queries resolved on the cached prefix word, the
estimated key bytes examined per query (classic: 10), and how many
records never issued a query at all (duplicate compression).

Usage::

    PYTHONPATH=src python benchmarks/bench_merge_kernels.py --quick \
        [--out results/merge_kernels.json]

``--quick`` is the CI smoke; the regression gate
(``check_regression.py --kind merge_kernels``) checks the speedup
ratios and the ovc merge throughput against
``results/baseline_merge_kernels_quick.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, Tuple

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.mapper import hash_file  # noqa: E402
from repro.core.partitioner import RangePartitioner  # noqa: E402
from repro.kvpairs import kernels  # noqa: E402
from repro.kvpairs.kernels import KERNELS_ENV  # noqa: E402
from repro.kvpairs.records import (  # noqa: E402
    KEY_BYTES,
    RECORD_BYTES,
    RecordBatch,
    VALUE_BYTES,
)
from repro.kvpairs.sorting import merge_sorted, sort_batch  # noqa: E402
from repro.kvpairs.spill import (  # noqa: E402
    ExternalSorter,
    SpillDir,
    merge_runs,
)
from repro.kvpairs.teragen import teragen  # noqa: E402

RESULTS_DIR = REPO / "results"


def _timeit(fn: Callable, reps: int) -> Tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _ab(fn: Callable, reps: int) -> Tuple[Dict, Dict]:
    """Run ``fn`` under both kernel modes; returns (times, outputs)."""
    times, outs = {}, {}
    for mode in ("classic", "ovc"):
        os.environ[KERNELS_ENV] = mode
        times[mode], outs[mode] = _timeit(fn, reps)
    return times, outs


def _split_runs(stream: RecordBatch, k: int):
    per = len(stream) // k
    return [
        sort_batch(stream.slice(i * per, (i + 1) * per if i < k - 1 else len(stream)))
        for i in range(k)
    ]


def _dup_heavy(n: int, distinct: int, seed: int) -> RecordBatch:
    rng = np.random.default_rng(seed)
    pool = np.array(
        [f"DUP{i:05d}xx".encode() for i in range(distinct)],
        dtype=f"S{KEY_BYTES}",
    )
    keys = pool[rng.integers(0, distinct, size=n)]
    values = np.zeros(n, dtype=f"S{VALUE_BYTES}")
    return RecordBatch.from_arrays(keys, values)


def _lane_result(times: Dict, nbytes: int) -> Dict:
    return {
        "classic_seconds": times["classic"],
        "ovc_seconds": times["ovc"],
        "classic_mbps": nbytes / 1e6 / times["classic"],
        "ovc_mbps": nbytes / 1e6 / times["ovc"],
        "speedup": times["classic"] / times["ovc"],
    }


def bench_merge(n: int, k: int, reps: int, dup: bool) -> Dict:
    name = "duplicates" if dup else "merge"
    stream = _dup_heavy(n, max(4, n // 200), seed=3) if dup else teragen(n, seed=1)
    runs = _split_runs(stream, k)
    kernels.stats.reset()
    times, outs = _ab(lambda: merge_sorted(runs), reps)
    if outs["classic"].array.tobytes() != outs["ovc"].array.tobytes():
        raise RuntimeError(f"{name}: kernel outputs diverged")
    lane = _lane_result(times, n * RECORD_BYTES)
    lane.update({"records": n, "runs": k})
    print(f"[{name}] k={k} n={n}: classic {lane['classic_mbps']:.0f} MB/s, "
          f"ovc {lane['ovc_mbps']:.0f} MB/s ({lane['speedup']:.2f}x)",
          flush=True)
    return lane


def bench_external(n: int, k: int, window: int, reps: int) -> Dict:
    stream = teragen(n, seed=5)
    chunk_bytes = max(RECORD_BYTES, n * RECORD_BYTES // k)
    times, sums = {}, {}
    for mode in ("classic", "ovc"):
        os.environ[KERNELS_ENV] = mode
        with SpillDir(f"bench-{mode}") as spill:
            sorter = ExternalSorter(spill, chunk_bytes=chunk_bytes)
            for piece in stream.iter_slices(max(1, n // (2 * k))):
                sorter.add(piece)
            spilled = sorter.finish()

            def consume():
                total = 0
                for batch in merge_runs(
                    spilled, window_records=window, out_records=window
                ):
                    total += len(batch)
                return total

            times[mode], sums[mode] = _timeit(consume, reps)
    if sums["classic"] != sums["ovc"] or sums["ovc"] != n:
        raise RuntimeError("external: record counts diverged")
    lane = _lane_result(times, n * RECORD_BYTES)
    lane.update({"records": n, "runs": k, "window_records": window})
    print(f"[external] k={k} n={n} window={window}: classic "
          f"{lane['classic_mbps']:.0f} MB/s, ovc {lane['ovc_mbps']:.0f} MB/s "
          f"({lane['speedup']:.2f}x)", flush=True)
    return lane


def bench_partition(n: int, num_partitions: int, reps: int) -> Dict:
    batch = teragen(n, seed=9)
    part = RangePartitioner.uniform(num_partitions)
    times, outs = _ab(lambda: hash_file(batch, part), reps)
    for c, o in zip(outs["classic"], outs["ovc"]):
        if c.array.tobytes() != o.array.tobytes():
            raise RuntimeError("partition: kernel outputs diverged")
    lane = _lane_result(times, n * RECORD_BYTES)
    lane.update({"records": n, "partitions": num_partitions})
    print(f"[partition] K={num_partitions} n={n}: classic "
          f"{lane['classic_mbps']:.0f} MB/s, ovc {lane['ovc_mbps']:.0f} MB/s "
          f"({lane['speedup']:.2f}x end-to-end hash_file)", flush=True)

    # The index pass alone (partition indices + grouping permutation +
    # counts) — the part the kernels replace; end-to-end hash_file is
    # dominated by the 100-byte record gather, identical in both modes.
    def index_pass():
        idx = part.partition_indices(batch)
        if kernels.use_ovc():
            return kernels.group_by_partition(idx, num_partitions)
        order = np.argsort(idx, kind="stable")
        counts = np.bincount(idx, minlength=num_partitions)
        return order, counts

    itimes, iouts = _ab(index_pass, reps)
    if not all(np.array_equal(a, b) for a, b in zip(*iouts.values())):
        raise RuntimeError("partition: index passes diverged")
    lane["index"] = {
        "classic_seconds": itimes["classic"],
        "ovc_seconds": itimes["ovc"],
        "speedup": itimes["classic"] / itimes["ovc"],
    }
    lane["index_speedup"] = lane["index"]["speedup"]
    print(f"[partition] index pass: classic {itimes['classic']*1e3:.1f} ms, "
          f"ovc {itimes['ovc']*1e3:.1f} ms "
          f"({lane['index_speedup']:.2f}x)", flush=True)
    return lane


def ovc_accounting(n: int, k: int) -> Dict:
    """One instrumented ovc merge: what did the codes actually save?"""
    os.environ[KERNELS_ENV] = "ovc"
    mixed = RecordBatch.concat(
        [teragen(n // 2, seed=2), _dup_heavy(n - n // 2, max(4, n // 400), 8)]
    )
    runs = _split_runs(mixed, k)
    kernels.stats.reset()
    merge_sorted(runs)
    snap = kernels.stats.snapshot()
    queries = snap["rank_queries"] or 1
    return {
        **snap,
        "fallback_fraction": snap["fallback_queries"] / queries,
        "key_bytes_per_query": kernels.stats.key_bytes_per_query(),
        "classic_key_bytes_per_query": float(KEY_BYTES),
        "dup_skip_fraction": snap["dup_records_skipped"]
        / max(1, snap["merge_records"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (sub-second lanes)")
    parser.add_argument("--records", type=int, default=2_000_000)
    parser.add_argument("--runs", "-k", type=int, default=8)
    parser.add_argument("--partitions", "-K", type=int, default=16)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    n = 400_000 if args.quick else args.records
    reps = args.reps or (3 if args.quick else 5)
    prior = os.environ.get(KERNELS_ENV)
    try:
        results = {
            "records": n,
            "quick": bool(args.quick),
            "merge": bench_merge(n, args.runs, reps, dup=False),
            "duplicates": bench_merge(
                max(n // 2, 1000), args.runs, reps, dup=True
            ),
            "external": bench_external(
                max(n // 2, 1000), 4, 16384, max(1, reps - 1)
            ),
            "partition": bench_partition(n, args.partitions, reps),
            "ovc": ovc_accounting(max(n // 2, 1000), args.runs),
        }
    finally:
        if prior is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = prior

    ovc = results["ovc"]
    print(f"[ovc] {ovc['key_bytes_per_query']:.2f} key bytes/query "
          f"(classic {KEY_BYTES}), fallback {ovc['fallback_fraction']:.2%}, "
          f"{ovc['dup_records_skipped']} dup records skipped "
          f"({ovc['dup_skip_fraction']:.0%} of merged)", flush=True)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    print(f"PASS: byte-identical on all lanes; merge {results['merge']['speedup']:.2f}x, "
          f"duplicates {results['duplicates']['speedup']:.2f}x, "
          f"external {results['external']['speedup']:.2f}x, "
          f"partition {results['partition']['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
