"""Sort service: makespan for N mixed jobs, concurrent subsets vs FIFO.

Measures what the service's per-job worker subsets buy on one standing
TCP mesh: N four-worker jobs (mixed coded/uncoded, two tenants) packed
concurrently onto K=8 workers by the :class:`SortService` scheduler,
versus the same N jobs submitted strictly FIFO (each waits for the
previous — the :class:`~repro.session.Session` discipline, where one job
owns the whole pool).  With two disjoint 4-worker subsets live at once,
the concurrent lane's makespan should approach half the FIFO lane's;
the acceptance bar is >= 1.3x.

Every job's output is asserted byte-identical to the same spec run solo
on a dedicated in-process cluster before any timing is reported.  The
mesh is paced (``--rate-mbps``) so the shuffle — the resource the
subsets actually partition — dominates the per-job wall time.

A third *elastic* lane then exercises the elastic-pool machinery on the
same K=8 mesh: two 4-worker jobs are put in flight, 2 workers are
SIGKILLed mid-service, 2 replacements rejoin the standing mesh, and a
queued 6-worker coded job either waits for the regrowth or is
shrink-to-fit re-planned — every output again byte-identical to a solo
run at the width it actually ran.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \
        [--jobs N] [--records N] [--out results/service.json]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import signal
import sys
import threading
import time
from typing import Dict, List

from repro.kvpairs.teragen import teragen
from repro.cluster import connect
from repro.runtime.tcp import run_worker
from repro.service import ServiceClient, SortService
from repro.session import CodedTeraSortSpec, Session, TeraSortSpec

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
_CTX = multiprocessing.get_context("fork")

#: Mesh size and per-job subset size: two jobs fit side by side.
NODES = 8
JOB_WORKERS = 4


def _spawn_workers(address: str, n: int):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address, quiet=True,
                connect_timeout=120.0, handshake_timeout=120.0,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _make_specs(jobs: int, records: int) -> List:
    """Mixed workload: alternate uncoded and coded (r=2) sorts."""
    specs = []
    for i in range(jobs):
        data = teragen(records, seed=100 + i)
        if i % 2:
            specs.append(CodedTeraSortSpec(data=data, redundancy=2))
        else:
            specs.append(TeraSortSpec(data=data))
    return specs


def _partitions_bytes(run) -> List[bytes]:
    return [p.to_bytes() for p in run.partitions]


def _references(specs: List) -> List[List[bytes]]:
    refs = []
    with Session(connect(f"inproc://{JOB_WORKERS}", recv_timeout=120.0)) as session:
        for spec in specs:
            refs.append(
                _partitions_bytes(session.submit(spec).result(timeout=300))
            )
    return refs


def bench(jobs: int, records: int, rate_mbps: float) -> Dict:
    specs = _make_specs(jobs, records)
    refs = _references(specs)

    with connect(
        "tcp://127.0.0.1:0", size=NODES,
        rate_bytes_per_s=rate_mbps * 1e6 / 8.0,
        timeout=300, connect_timeout=120,
    ) as cluster:
        procs = _spawn_workers(cluster.address, NODES)
        try:
            with SortService(
                cluster, max_queue_depth=2 * jobs, shrink_to_fit=True,
            ) as service:
                service.start()
                client = ServiceClient(service.control_address)

                # Warm the mesh (imports, allocators) outside the clocks.
                client.submit(
                    TeraSortSpec(data=teragen(2_000, seed=99)),
                    workers=JOB_WORKERS,
                ).result(timeout=300)

                def tenant(i: int) -> str:
                    return "alice" if i % 2 else "bob"

                # Lane 1: FIFO — each job waits for the previous one, the
                # strict one-job-owns-the-pool session discipline.
                t0 = time.perf_counter()
                fifo_runs = [
                    client.submit(
                        spec, tenant=tenant(i), workers=JOB_WORKERS
                    ).result(timeout=300)
                    for i, spec in enumerate(specs)
                ]
                fifo_s = time.perf_counter() - t0

                # Lane 2: concurrent — submit everything, let the
                # scheduler pack disjoint subsets onto the mesh.
                t0 = time.perf_counter()
                handles = [
                    client.submit(
                        spec, tenant=tenant(i), workers=JOB_WORKERS
                    )
                    for i, spec in enumerate(specs)
                ]
                conc_runs = [h.result(timeout=300) for h in handles]
                conc_s = time.perf_counter() - t0

                stats = client.stats()

                # Lane 3: elasticity — SIGKILL 2 workers under two
                # in-flight jobs, rejoin replacements, and push a
                # 6-worker coded job through the membership change.
                data_kill = [
                    teragen(records, seed=200 + i) for i in range(2)
                ]
                inflight_specs = [
                    TeraSortSpec(data=data_kill[0]),
                    CodedTeraSortSpec(data=data_kill[1], redundancy=2),
                ]
                wide_data = teragen(records, seed=210)
                wide_spec = CodedTeraSortSpec(data=wide_data, redundancy=2)

                recovery = {}

                def watch_recovery(t_kill):
                    deadline = time.monotonic() + 300
                    while time.monotonic() < deadline:
                        if client.stats().workers_live == NODES:
                            recovery["s"] = time.monotonic() - t_kill
                            return
                        time.sleep(0.2)

                t0 = time.perf_counter()
                inflight = [
                    client.submit(s, tenant="elastic", workers=JOB_WORKERS)
                    for s in inflight_specs
                ]
                for p in procs[:2]:
                    os.kill(p.pid, signal.SIGKILL)
                watcher = threading.Thread(
                    target=watch_recovery, args=(time.monotonic(),),
                    daemon=True,
                )
                watcher.start()
                wide = client.submit(wide_spec, tenant="elastic", workers=6)
                procs += _spawn_workers(cluster.address, 2)
                inflight_runs = [h.result(timeout=300) for h in inflight]
                wide_run = wide.result(timeout=300)
                elastic_s = time.perf_counter() - t0
                watcher.join(timeout=300)
                stats_elastic = client.stats()
                if stats_elastic.workers_joined != 2:
                    raise RuntimeError(
                        f"expected 2 rejoins, got "
                        f"{stats_elastic.workers_joined}"
                    )
                wide_k = wide.replanned_k or 6
                # A retried in-flight job may itself have been
                # shrink-re-planned; verify at its actual width.
                inflight_k = [
                    h.replanned_k or JOB_WORKERS for h in inflight
                ]
        finally:
            for p in procs:
                p.join(timeout=30)
                if p.is_alive():
                    p.terminate()
                    p.join()

    for lane, runs in (("fifo", fifo_runs), ("concurrent", conc_runs)):
        for i, run in enumerate(runs):
            if _partitions_bytes(run) != refs[i]:
                rk = handles[i].replanned_k if lane == "concurrent" else None
                raise RuntimeError(
                    f"{lane} lane job {i} diverged from its solo reference"
                    f" (parts={len(run.partitions)} ref={len(refs[i])}"
                    f" replanned_k={rk})"
                )
    # Elastic lane byte identity, at the width each job actually ran.
    for (run, spec, k) in [
        (inflight_runs[0], inflight_specs[0], inflight_k[0]),
        (inflight_runs[1], inflight_specs[1], inflight_k[1]),
        (wide_run, wide_spec, wide_k),
    ]:
        with Session(connect(f"inproc://{k}", recv_timeout=120.0)) as s:
            ref = _partitions_bytes(s.submit(spec).result(timeout=300))
        if _partitions_bytes(run) != ref:
            raise RuntimeError(
                f"elastic lane {type(spec).__name__}@{k} diverged from "
                "its solo reference"
            )

    return {
        "nodes": NODES,
        "job_workers": JOB_WORKERS,
        "jobs": jobs,
        "records": records,
        "rate_mbps": rate_mbps,
        "fifo": {
            "makespan_s": fifo_s,
            "jobs_per_s": jobs / fifo_s,
        },
        "concurrent": {
            "makespan_s": conc_s,
            "jobs_per_s": jobs / conc_s,
        },
        "speedup": fifo_s / conc_s,
        "elastic": {
            "makespan_s": elastic_s,
            "jobs_per_s": 3 / elastic_s,
            "recovery_s": recovery.get("s"),
            "replanned_k": wide.replanned_k,
            "workers_joined": stats_elastic.workers_joined,
            "workers_live": stats_elastic.workers_live,
        },
        "jobs_done": stats.jobs_done,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small payloads for CI smoke (seconds, not minutes)",
    )
    parser.add_argument("--jobs", type=int, default=6,
                        help="jobs per lane (default 6)")
    parser.add_argument("--records", type=int, default=None,
                        help="records per job (100 B each)")
    parser.add_argument("--rate-mbps", type=float, default=None,
                        help="per-worker mesh pacing in Mbit/s")
    parser.add_argument("--out", type=pathlib.Path,
                        default=RESULTS_DIR / "service.json")
    args = parser.parse_args(argv)

    # Pace hard enough that the shuffle (what the subsets partition)
    # dominates per-job wall time; otherwise dispatch overhead hides
    # the concurrency win at smoke sizes.
    records = args.records or (30_000 if args.quick else 100_000)
    rate_mbps = args.rate_mbps or 8.0

    report = bench(args.jobs, records, rate_mbps)
    report["quick"] = bool(args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True))

    print(f"sort service: {args.jobs} x {records}-record jobs "
          f"({JOB_WORKERS} workers each) on a paced K={NODES} mesh")
    print(f"  fifo       makespan {report['fifo']['makespan_s']:6.2f}s"
          f"   {report['fifo']['jobs_per_s']:5.2f} jobs/s")
    print(f"  concurrent makespan {report['concurrent']['makespan_s']:6.2f}s"
          f"   {report['concurrent']['jobs_per_s']:5.2f} jobs/s")
    print(f"  -> {report['speedup']:.2f}x (all outputs byte-identical "
          f"to solo runs)")
    el = report["elastic"]
    rec = el["recovery_s"]
    print(f"  elastic    makespan {el['makespan_s']:6.2f}s"
          f"   {el['jobs_per_s']:5.2f} jobs/s  "
          f"(SIGKILL 2 + rejoin"
          + (f"; live in {rec:.2f}s" if rec is not None else "")
          + (f"; 6-wide re-planned to K'={el['replanned_k']}"
             if el["replanned_k"] else "; 6-wide ran full width")
          + ")")
    print(f"[results] wrote {args.out}")
    if report["speedup"] < 1.3:
        print("WARNING: concurrent-subset speedup below the 1.3x "
              "acceptance bar", file=sys.stderr)
        # Full runs gate on the acceptance bar; --quick (the CI smoke)
        # only warns — check_regression.py gates CI against the committed
        # baseline instead.
        if not args.quick:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
