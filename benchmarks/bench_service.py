"""Sort service: makespan for N mixed jobs, concurrent subsets vs FIFO.

Measures what the service's per-job worker subsets buy on one standing
TCP mesh: N four-worker jobs (mixed coded/uncoded, two tenants) packed
concurrently onto K=8 workers by the :class:`SortService` scheduler,
versus the same N jobs submitted strictly FIFO (each waits for the
previous — the :class:`~repro.session.Session` discipline, where one job
owns the whole pool).  With two disjoint 4-worker subsets live at once,
the concurrent lane's makespan should approach half the FIFO lane's;
the acceptance bar is >= 1.3x.

Every job's output is asserted byte-identical to the same spec run solo
on a dedicated in-process cluster before any timing is reported.  The
mesh is paced (``--rate-mbps``) so the shuffle — the resource the
subsets actually partition — dominates the per-job wall time.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \
        [--jobs N] [--records N] [--out results/service.json]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import sys
import time
from typing import Dict, List

from repro.kvpairs.teragen import teragen
from repro.runtime.inproc import ThreadCluster
from repro.runtime.tcp import TcpCluster, run_worker
from repro.service import ServiceClient, SortService
from repro.session import CodedTeraSortSpec, Session, TeraSortSpec

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
_CTX = multiprocessing.get_context("fork")

#: Mesh size and per-job subset size: two jobs fit side by side.
NODES = 8
JOB_WORKERS = 4


def _spawn_workers(address: str, n: int):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address, quiet=True,
                connect_timeout=120.0, handshake_timeout=120.0,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _make_specs(jobs: int, records: int) -> List:
    """Mixed workload: alternate uncoded and coded (r=2) sorts."""
    specs = []
    for i in range(jobs):
        data = teragen(records, seed=100 + i)
        if i % 2:
            specs.append(CodedTeraSortSpec(data=data, redundancy=2))
        else:
            specs.append(TeraSortSpec(data=data))
    return specs


def _partitions_bytes(run) -> List[bytes]:
    return [p.to_bytes() for p in run.partitions]


def _references(specs: List) -> List[List[bytes]]:
    refs = []
    with Session(ThreadCluster(JOB_WORKERS, recv_timeout=120.0)) as session:
        for spec in specs:
            refs.append(
                _partitions_bytes(session.submit(spec).result(timeout=300))
            )
    return refs


def bench(jobs: int, records: int, rate_mbps: float) -> Dict:
    specs = _make_specs(jobs, records)
    refs = _references(specs)

    with TcpCluster(
        NODES, "tcp://127.0.0.1:0",
        rate_bytes_per_s=rate_mbps * 1e6 / 8.0,
        timeout=300, connect_timeout=120,
    ) as cluster:
        procs = _spawn_workers(cluster.address, NODES)
        try:
            with SortService(cluster, max_queue_depth=2 * jobs) as service:
                service.start()
                client = ServiceClient(service.control_address)

                # Warm the mesh (imports, allocators) outside the clocks.
                client.submit(
                    TeraSortSpec(data=teragen(2_000, seed=99)),
                    workers=JOB_WORKERS,
                ).result(timeout=300)

                def tenant(i: int) -> str:
                    return "alice" if i % 2 else "bob"

                # Lane 1: FIFO — each job waits for the previous one, the
                # strict one-job-owns-the-pool session discipline.
                t0 = time.perf_counter()
                fifo_runs = [
                    client.submit(
                        spec, tenant=tenant(i), workers=JOB_WORKERS
                    ).result(timeout=300)
                    for i, spec in enumerate(specs)
                ]
                fifo_s = time.perf_counter() - t0

                # Lane 2: concurrent — submit everything, let the
                # scheduler pack disjoint subsets onto the mesh.
                t0 = time.perf_counter()
                handles = [
                    client.submit(
                        spec, tenant=tenant(i), workers=JOB_WORKERS
                    )
                    for i, spec in enumerate(specs)
                ]
                conc_runs = [h.result(timeout=300) for h in handles]
                conc_s = time.perf_counter() - t0

                stats = client.stats()
        finally:
            for p in procs:
                p.join(timeout=30)
                if p.is_alive():
                    p.terminate()
                    p.join()

    for lane, runs in (("fifo", fifo_runs), ("concurrent", conc_runs)):
        for i, run in enumerate(runs):
            if _partitions_bytes(run) != refs[i]:
                raise RuntimeError(
                    f"{lane} lane job {i} diverged from its solo reference"
                )

    return {
        "nodes": NODES,
        "job_workers": JOB_WORKERS,
        "jobs": jobs,
        "records": records,
        "rate_mbps": rate_mbps,
        "fifo": {
            "makespan_s": fifo_s,
            "jobs_per_s": jobs / fifo_s,
        },
        "concurrent": {
            "makespan_s": conc_s,
            "jobs_per_s": jobs / conc_s,
        },
        "speedup": fifo_s / conc_s,
        "jobs_done": stats.jobs_done,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small payloads for CI smoke (seconds, not minutes)",
    )
    parser.add_argument("--jobs", type=int, default=6,
                        help="jobs per lane (default 6)")
    parser.add_argument("--records", type=int, default=None,
                        help="records per job (100 B each)")
    parser.add_argument("--rate-mbps", type=float, default=None,
                        help="per-worker mesh pacing in Mbit/s")
    parser.add_argument("--out", type=pathlib.Path,
                        default=RESULTS_DIR / "service.json")
    args = parser.parse_args(argv)

    # Pace hard enough that the shuffle (what the subsets partition)
    # dominates per-job wall time; otherwise dispatch overhead hides
    # the concurrency win at smoke sizes.
    records = args.records or (30_000 if args.quick else 100_000)
    rate_mbps = args.rate_mbps or 8.0

    report = bench(args.jobs, records, rate_mbps)
    report["quick"] = bool(args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True))

    print(f"sort service: {args.jobs} x {records}-record jobs "
          f"({JOB_WORKERS} workers each) on a paced K={NODES} mesh")
    print(f"  fifo       makespan {report['fifo']['makespan_s']:6.2f}s"
          f"   {report['fifo']['jobs_per_s']:5.2f} jobs/s")
    print(f"  concurrent makespan {report['concurrent']['makespan_s']:6.2f}s"
          f"   {report['concurrent']['jobs_per_s']:5.2f} jobs/s")
    print(f"  -> {report['speedup']:.2f}x (all outputs byte-identical "
          f"to solo runs)")
    print(f"[results] wrote {args.out}")
    if report["speedup"] < 1.3:
        print("WARNING: concurrent-subset speedup below the 1.3x "
              "acceptance bar", file=sys.stderr)
        # Full runs gate on the acceptance bar; --quick (the CI smoke)
        # only warns — check_regression.py gates CI against the committed
        # baseline instead.
        if not args.quick:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
