"""Wireless distributed computing benches — the §VI mobile direction.

Regenerates the load curves of the wireless setting ([24], [25]): airtime
per input byte vs redundancy for the four protocols, and the scalability
series showing the grouped construction's load independent of K.
"""

from __future__ import annotations

import pytest

from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.utils.tables import format_table
from repro.wireless.theory import (
    wireless_coded_load,
    wireless_edge_load,
    wireless_grouped_load,
    wireless_uncoded_load,
)
from repro.wireless.wdc import run_wireless_sort


def bench_wireless_load_vs_r(benchmark, sink):
    """Airtime load vs r at K=6 for all three protocols (measured)."""
    n = 24_000

    def sweep():
        data = teragen(n, seed=0)
        rows = []
        for r in (1, 2, 3, 4, 5):
            measured = {}
            for protocol in ("uncoded", "d2d", "edge"):
                out = run_wireless_sort(data, 6, r, protocol=protocol)
                validate_sorted_permutation(data, out.partitions)
                measured[protocol] = out.shuffle_load()
            rows.append((r, measured))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for r, measured in rows:
        assert measured["uncoded"] == pytest.approx(
            wireless_uncoded_load(r, 6), rel=0.08
        )
        assert measured["d2d"] == pytest.approx(
            wireless_coded_load(r, 6), rel=0.15, abs=0.01
        )
        assert measured["edge"] == pytest.approx(
            wireless_edge_load(r, 6), rel=0.15, abs=0.02
        )
        # Ordering: d2d strictly wins; edge <= uncoded with equality at
        # r=1 (both fly twice, no coding gain — headers add ~0.1%).
        assert measured["d2d"] < measured["edge"]
        assert measured["edge"] <= measured["uncoded"] * 1.01
    sink.add(
        "wireless_load",
        "Wireless airtime load vs r (K=6, measured over real sorts)\n\n"
        + format_table(
            ["r", "uncoded", "edge coded", "d2d coded"],
            [
                [r, m["uncoded"], m["edge"], m["d2d"]]
                for r, m in rows
            ],
            decimals=4,
            markdown=True,
        ),
    )


def bench_wireless_scalability(benchmark, sink):
    """[24]'s headline: grouped airtime load is flat in the user count."""
    n = 24_000

    def sweep():
        rows = []
        for k in (4, 8, 12, 16):
            data = teragen(n, seed=1)
            grouped = run_wireless_sort(data, k, 2, group_size=4)
            plain = run_wireless_sort(data, k, 2, protocol="d2d")
            rows.append((k, grouped.shuffle_load(), plain.shuffle_load()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    grouped_loads = [g for _, g, _ in rows]
    plain_loads = [p for _, _, p in rows]
    ideal = wireless_grouped_load(2, 4)
    # Grouped: flat at (1/r)(1 - r/g) for every K.
    for load in grouped_loads:
        assert load == pytest.approx(ideal, rel=0.10)
    # Plain: grows with K toward 1/r.
    assert plain_loads == sorted(plain_loads)
    assert plain_loads[-1] > plain_loads[0] * 1.3
    sink.add(
        "wireless_scalability",
        "Grouped vs plain coded airtime load as users scale (r=2, g=4)\n\n"
        + format_table(
            ["K users", "grouped load", "plain coded load"],
            [[k, g, p] for k, g, p in rows],
            decimals=4,
            markdown=True,
        ),
    )
