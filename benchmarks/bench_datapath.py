"""End-to-end data-plane throughput: pack → send → recv → unpack (→ decode).

Measures the zero-copy shuffle data plane against the pre-zero-copy
("copy") semantics, on the real multiprocessing backend (real sockets,
real processes, unpaced):

* **roundtrip lane** (2 nodes): rank 0 packs a batch sequence and ships it
  to rank 1, which unpacks and acks every repetition.
  - ``copy`` lane: joined ``pack_batches`` buffer, owned-``bytes``
    receive, copying ``unpack_batches`` — the seed's semantics through
    the compat APIs (the seed itself copied ~6×: pack join, framing
    concat, parts-list join, prefix strip, ``from_bytes`` copy, plus
    per-segment slices on the coded path; the compat path already folds
    several of those into one).
  - ``zerocopy`` lane: ``pack_batches_parts`` gather list → vectored
    ``sendmsg`` → ``recv_into`` arena → ``copy=False`` view →
    ``from_buffer`` batches.  The payload is materialized once at the
    producer and lands once in the receive arena.
* **coded lane** (3 nodes, r = 2): every node XOR-encodes a packet over
  its serialized intermediate values, serially multicasts it, parses the
  two inbound packets, and decodes its missing intermediate value —
  ``encode → shuffle → decode`` with arenas on the zerocopy lane, joined
  buffers on the copy lane.

Every lane runs under :mod:`repro.utils.copytrack`, so the report carries
a *bytes-copied counter*: user-space payload copies per payload byte
(the receive-arena fill — the transfer itself — is not counted).

Usage::

    PYTHONPATH=src python benchmarks/bench_datapath.py [--quick] \
        [--records N] [--reps R] [--out results/datapath.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict

from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.serialization import (
    pack_batches,
    pack_batches_parts,
    packed_size,
    unpack_batches,
)
from repro.kvpairs.teragen import teragen
from repro.cluster import connect
from repro.runtime.program import NodeProgram
from repro.utils import copytrack
from repro.utils.subsets import without

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

DATA_TAG = 100
ACK_TAG = 101
CODED_TAG_BASE = 200

#: Large single frames: keeps the measurement about copies, not chunking.
BENCH_CHUNK_BYTES = 1 << 26


class _RoundtripProgram(NodeProgram):
    """Rank 0: pack + send; rank 1: recv + unpack + ack.  Per-rep timing."""

    STAGES = ["datapath"]

    def __init__(self, comm, mode: str, records: int, reps: int) -> None:
        super().__init__(comm)
        self.mode = mode
        self.records = records
        self.reps = reps

    def _xfer(self, batch, rep: int) -> Dict:
        zero = self.mode == "zerocopy"
        if self.rank == 0:
            if zero:
                payload = pack_batches_parts([(rep, batch)])
            else:
                payload = pack_batches([(rep, batch)])
            self.comm.send(1, DATA_TAG, payload)
            ack = self.comm.recv(1, ACK_TAG, copy=False)
            n = int.from_bytes(bytes(ack), "little")
            if n != self.records:
                raise RuntimeError(f"ack mismatch: {n} != {self.records}")
            return {}
        buf = self.comm.recv(0, DATA_TAG, copy=not zero)
        items = unpack_batches(buf, copy=not zero)
        (tag, got) = items[0]
        if tag != rep or len(got) != self.records:
            raise RuntimeError(f"unpack mismatch at rep {rep}")
        # Touch the records (checksum one column) so lazily-viewed batches
        # are actually read, like a reducer would.
        first_keys = int(got.raw_view()[:, 0].sum())
        self.comm.send(0, ACK_TAG, len(got).to_bytes(8, "little"))
        return {"key_sum": first_keys}

    def run(self):
        batch = teragen(self.records, seed=7) if self.rank == 0 else None
        with self.stage("datapath"):
            self._xfer(batch, 0)  # warmup (untimed copies discarded below)
            self.comm.barrier()
            with copytrack.track() as copies:
                t0 = time.perf_counter()
                sums = [self._xfer(batch, rep) for rep in range(self.reps)]
                elapsed = time.perf_counter() - t0
            self.comm.barrier()
        return {
            "seconds": elapsed,
            "copies": dict(copies),
            "key_sums": [s.get("key_sum") for s in sums if s],
        }


class _CodedLaneProgram(NodeProgram):
    """K=3, r=2 coded shuffle: encode → serial multicast → parse → decode."""

    STAGES = ["datapath"]

    def __init__(self, comm, mode: str, records: int, reps: int) -> None:
        super().__init__(comm)
        self.mode = mode
        self.records = records
        self.reps = reps

    def run(self):
        group = tuple(range(self.size))
        # Deterministic store every member rebuilds identically: the
        # intermediate value destined to t (for file subset M\{t}).
        store = {
            (without(group, t), t): teragen(self.records, seed=t).to_bytes()
            for t in group
        }

        def lookup(subset, target):
            return store[(subset, target)]

        zero = self.mode == "zerocopy"
        expected = store[(without(group, self.rank), self.rank)]

        def one_rep(rep: int) -> None:
            pkt = encode_packet(self.rank, group, lookup)
            payload = pkt.to_parts() if zero else pkt.to_bytes()
            packets = {}
            for sender in group:
                tag = CODED_TAG_BASE + rep * self.size + sender
                if sender == self.rank:
                    self.comm.bcast(group, self.rank, tag, payload)
                else:
                    raw = self.comm.bcast(group, sender, tag, copy=not zero)
                    packets[sender] = CodedPacket.from_bytes(raw)
            recovered = recover_intermediate(self.rank, group, packets, lookup)
            if zero:
                batch = RecordBatch.from_buffer(recovered)
            else:
                batch = RecordBatch.from_bytes(recovered)
            if len(batch) != self.records or recovered != expected:
                raise RuntimeError(f"decode mismatch at rep {rep}")

        with self.stage("datapath"):
            one_rep(0)  # warmup
            self.comm.barrier()
            with copytrack.track() as copies:
                t0 = time.perf_counter()
                for rep in range(1, self.reps + 1):
                    one_rep(rep)
                elapsed = time.perf_counter() - t0
            self.comm.barrier()
        return {"seconds": elapsed, "copies": dict(copies)}


def _merge_copies(results) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for res in results:
        for site, nbytes in res["copies"].items():
            merged[site] = merged.get(site, 0) + nbytes
    return merged


def bench_roundtrip(mode: str, records: int, reps: int) -> Dict:
    cluster = connect("proc://2", timeout=300.0, chunk_bytes=BENCH_CHUNK_BYTES)
    res = cluster.run(
        lambda comm: _RoundtripProgram(comm, mode, records, reps)
    )
    payload = packed_size(records)
    seconds = max(r["seconds"] for r in res.results)
    moved = payload * reps
    copies = _merge_copies(res.results)
    return {
        "mode": mode,
        "records": records,
        "reps": reps,
        "payload_bytes": payload,
        "seconds": seconds,
        "gbps": moved / seconds / 1e9,
        "copied_bytes": sum(copies.values()),
        "copies_per_payload_byte": sum(copies.values()) / moved,
        "copy_sites": copies,
    }


def bench_coded(mode: str, records: int, reps: int) -> Dict:
    cluster = connect("proc://3", timeout=300.0, chunk_bytes=BENCH_CHUNK_BYTES)
    res = cluster.run(
        lambda comm: _CodedLaneProgram(comm, mode, records, reps)
    )
    # Each node decodes one intermediate value (records * 100 bytes) per
    # rep; three nodes do so concurrently.
    decoded = 3 * records * 100 * reps
    seconds = max(r["seconds"] for r in res.results)
    copies = _merge_copies(res.results)
    return {
        "mode": mode,
        "records": records,
        "reps": reps,
        "seconds": seconds,
        "decoded_gbps": decoded / seconds / 1e9,
        "copied_bytes": sum(copies.values()),
        "copy_sites": copies,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke (seconds, not minutes)",
    )
    parser.add_argument("--records", type=int, default=None,
                        help="records per roundtrip payload (100 B each)")
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path,
                        default=RESULTS_DIR / "datapath.json")
    args = parser.parse_args(argv)

    if args.quick:
        records = args.records or 20_000
        reps = args.reps or 2
        coded_records = 6_000
        coded_reps = 1
    else:
        records = args.records or 300_000
        reps = args.reps or 6
        coded_records = 80_000
        coded_reps = 4

    report = {
        "config": {
            "records": records,
            "reps": reps,
            "coded_records": coded_records,
            "coded_reps": coded_reps,
            "chunk_bytes": BENCH_CHUNK_BYTES,
            "quick": bool(args.quick),
        },
        "roundtrip": {},
        "coded": {},
    }
    for mode in ("copy", "zerocopy"):
        report["roundtrip"][mode] = bench_roundtrip(mode, records, reps)
        report["coded"][mode] = bench_coded(mode, coded_records, coded_reps)

    rt = report["roundtrip"]
    cd = report["coded"]
    rt["speedup"] = rt["zerocopy"]["gbps"] / rt["copy"]["gbps"]
    cd["speedup"] = cd["zerocopy"]["decoded_gbps"] / cd["copy"]["decoded_gbps"]

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True))

    print(f"roundtrip ({records} records x {reps} reps, "
          f"{rt['copy']['payload_bytes'] / 1e6:.1f} MB/payload)")
    for mode in ("copy", "zerocopy"):
        row = rt[mode]
        print(f"  {mode:9s} {row['gbps']:6.2f} GB/s   "
              f"{row['copies_per_payload_byte']:.2f} copies/payload-byte")
    print(f"  speedup   {rt['speedup']:.2f}x")
    print(f"coded K=3 r=2 ({coded_records} records x {coded_reps} reps)")
    for mode in ("copy", "zerocopy"):
        row = cd[mode]
        print(f"  {mode:9s} {row['decoded_gbps']:6.2f} GB/s decoded")
    print(f"  speedup   {cd['speedup']:.2f}x")
    print(f"[results] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
