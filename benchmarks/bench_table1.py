"""Table I: TeraSort breakdown, 12 GB, K=16, 100 Mbps.

Regenerates the paper's Table I by running the discrete-event simulator at
full scale (240 serial unicasts of 46.9 MB each).  The benchmark time is
the simulator's own wall time; the *simulated* seconds are pushed into
``results/table1.md`` next to the paper's numbers.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table1


def bench_table1_terasort_k16(benchmark, sink):
    result = benchmark.pedantic(
        lambda: table1(granularity="transfer"), rounds=1, iterations=1
    )
    row = result.rows[0]
    # Sanity: reproduced total within 5% of the paper's 961.25 s.
    assert abs(row.total_ratio - 1.0) < 0.05
    # The paper's headline observation: shuffle is ~98.4% of the total.
    shuffle_share = row.measured.stage_times["shuffle"] / row.measured_total
    assert shuffle_share > 0.95
    benchmark.extra_info["simulated_total_s"] = round(row.measured_total, 2)
    benchmark.extra_info["paper_total_s"] = row.paper.total
    benchmark.extra_info["shuffle_share"] = round(shuffle_share, 4)
    sink.add("table1", render_table(result, markdown=True))
