"""Bench-regression gate: compare bench JSON against committed baselines.

What CI runs after the ``bench_datapath --quick`` and
``bench_session_reuse --quick`` smokes: each throughput metric in the
fresh JSON is compared against the committed baseline in ``results/``,
and the job **fails if any metric regressed by more than the threshold**
(default 30%, the acceptance bar).  Improvements and noise above the
floor pass silently; ratio metrics (zero-copy speedup, session speedup)
are machine-portable, absolute metrics (GB/s, jobs/s) gate against the
machine class that wrote the baseline.

Usage::

    python benchmarks/check_regression.py --kind datapath --current datapath.json
    python benchmarks/check_regression.py --kind session_reuse \
        --current session_reuse.json --threshold 0.30

Refreshing baselines (after an intentional perf change, or to re-anchor
to a new runner class)::

    PYTHONPATH=src python benchmarks/bench_datapath.py --quick --out /tmp/d.json
    python benchmarks/check_regression.py --kind datapath \
        --current /tmp/d.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Dict, List, Tuple

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Gated metrics per bench kind: (dotted JSON path, description).  All are
#: higher-is-better throughputs or speedup ratios.
MANIFEST: Dict[str, List[Tuple[str, str]]] = {
    "datapath": [
        ("roundtrip.zerocopy.gbps", "pack->send->recv->unpack throughput"),
        ("roundtrip.speedup", "zero-copy speedup over copy semantics"),
        ("coded.zerocopy.decoded_gbps", "encode->multicast->decode throughput"),
    ],
    "session_reuse": [
        ("process.session_jobs_per_s", "jobs/sec on one process pool"),
        ("process.speedup", "session speedup over one-shot runs"),
        ("thread.session_jobs_per_s", "jobs/sec on one thread pool"),
    ],
    "out_of_core": [
        ("process.parallel.mbps",
         "out-of-core coded sort throughput (process backend)"),
        ("process.serial.efficiency",
         "out-of-core vs in-memory throughput ratio (serial vs serial)"),
        ("tcp.parallel.mbps",
         "out-of-core coded sort throughput (real TCP mesh)"),
    ],
    "stragglers": [
        ("live.x5.speedup",
         "speculation speedup under a 5x map straggler (on vs off)"),
    ],
    "service": [
        ("speedup",
         "concurrent-subset speedup over serialized FIFO makespan"),
        ("concurrent.jobs_per_s",
         "service throughput with per-job worker subsets"),
        ("elastic.jobs_per_s",
         "elastic-lane throughput (SIGKILL 2 mid-service, rejoin, "
         "6-wide job through the membership change)"),
    ],
    "overlap": [
        ("uncoded.speedup",
         "streaming-overlap speedup over the staged uncoded sort "
         "(100 Mbps-paced mesh)"),
        ("coded.speedup",
         "streaming-overlap speedup over the staged coded sort"),
    ],
    "merge_kernels": [
        ("merge.speedup", "OVC k-way merge speedup over classic kernels"),
        ("merge.ovc_mbps", "k-way OVC merge throughput"),
        ("external.speedup",
         "external merge speedup (spilled runs + OVC sidecars)"),
        ("partition.index_speedup",
         "radix partition index-pass speedup over searchsorted+argsort"),
    ],
}


def _lookup(doc: dict, dotted: str) -> float:
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric {dotted!r} missing (at {part!r})")
        node = node[part]
    return float(node)


def baseline_path(kind: str) -> pathlib.Path:
    return RESULTS_DIR / f"baseline_{kind}_quick.json"


def check(
    kind: str, current: dict, baseline: dict, threshold: float
) -> List[str]:
    """Returns failure lines (empty = gate passes); prints the table."""
    failures: List[str] = []
    print(f"bench-regression gate [{kind}] — fail below "
          f"{(1 - threshold) * 100:.0f}% of baseline")
    print(f"{'metric':44s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for dotted, desc in MANIFEST[kind]:
        base = _lookup(baseline, dotted)
        cur = _lookup(current, dotted)
        ratio = cur / base if base else float("inf")
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSED"
        print(f"{dotted:44s} {base:12.3f} {cur:12.3f} {ratio:6.2f}x  {verdict}")
        if verdict != "ok":
            failures.append(
                f"{dotted} ({desc}): {cur:.3f} vs baseline {base:.3f} "
                f"({ratio:.2f}x, floor {1 - threshold:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--kind", required=True, choices=sorted(MANIFEST))
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="fresh bench JSON (from a --quick run)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline JSON (default: "
                             "results/baseline_<kind>_quick.json)")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30")),
        help="max tolerated fractional regression (default 0.30, i.e. "
             "fail on >30%%; env: BENCH_REGRESSION_THRESHOLD)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="instead of gating, store --current as the "
                             "committed baseline for --kind")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    base_path = args.baseline or baseline_path(args.kind)
    if args.write_baseline:
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(json.dumps(current, indent=2, sort_keys=True))
        print(f"wrote baseline {base_path}")
        return 0
    if not base_path.exists():
        print(f"ERROR: no baseline at {base_path}; create one with "
              f"--write-baseline", file=sys.stderr)
        return 2
    baseline = json.loads(base_path.read_text())
    failures = check(args.kind, current, baseline, args.threshold)
    if failures:
        print("\nFAIL: throughput regression beyond threshold:",
              file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        print("(intentional change? refresh the baseline with "
              "--write-baseline and commit it)", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
