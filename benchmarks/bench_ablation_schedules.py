"""Ablation: serial (paper) vs parallel (future-work) shuffle schedules.

§VI lists asynchronous execution with parallel communications as a future
direction.  Three variants per scheme: the paper's serial turns, naive
asynchronous sending (NIC contention only), and conflict-free scheduled
rounds (1-factorization for unicast, greedy group packing for multicast).
"""

from __future__ import annotations

from repro.experiments.figures import schedule_ablation
from repro.experiments.report import render_ablation


def bench_schedule_ablation_k16_r3(benchmark, sink):
    result = benchmark.pedantic(
        lambda: schedule_ablation(num_nodes=16, redundancy=3),
        rounds=1,
        iterations=1,
    )
    rows = {label: (sh, tot) for label, sh, tot in result.rows}
    serial_ts = rows["TeraSort, serial (paper)"][0]
    parallel_ts = rows["TeraSort, parallel (naive async)"][0]
    rounds_ts = rows["TeraSort, rounds (scheduled parallel)"][0]
    serial_cts = rows["CodedTeraSort, serial (paper)"][0]
    parallel_cts = rows["CodedTeraSort, parallel (naive async)"][0]
    rounds_cts = rows["CodedTeraSort, rounds (scheduled parallel)"][0]
    # In the paper's serialized regime coding wins decisively.
    assert serial_cts < serial_ts / 2
    # Naive async helps both; unscheduled multicast contention (groups of
    # r+1 = 4 nodes conflict often) keeps the coded gain modest.
    assert parallel_ts < serial_ts / 2
    assert parallel_cts < serial_cts
    # Scheduled rounds approach the concurrency caps: ~K/2 disjoint
    # unicasts, ~K/(r+1) disjoint multicasts per round.
    assert rounds_ts < serial_ts / 6  # cap 8x, packing realizes > 6x
    assert rounds_cts < serial_cts / 2.5  # cap 4x, packing realizes > 2.5x
    # The honest punchline: with fully scheduled parallelism the uncoded
    # exchange (2 nodes/transfer) out-parallelizes r+1-node multicasts —
    # coding's win is tied to the serialized fabric the paper uses.
    assert rounds_ts < rounds_cts
    benchmark.extra_info["serial_vs_rounds_terasort"] = round(
        serial_ts / rounds_ts, 2
    )
    benchmark.extra_info["serial_vs_rounds_coded"] = round(
        serial_cts / rounds_cts, 2
    )
    sink.add("ablation_schedules", render_ablation(result, markdown=True))
