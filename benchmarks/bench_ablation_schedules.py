"""Ablation: serial (paper) vs parallel (future-work) shuffle schedules.

§VI lists asynchronous execution with parallel communications as a future
direction.  Two layers of evidence:

* **Simulator** (`bench_schedule_ablation_k16_r3`): three variants per
  scheme at paper scale — the paper's serial turns, naive asynchronous
  sending (NIC contention only), and conflict-free scheduled rounds
  (1-factorization for unicast, greedy group packing for multicast).
* **Real engine** (`bench_engine_schedule_serial_vs_parallel`): the actual
  CodedTeraSort program on the multiprocessing backend with the paper's
  100 Mbps pacing, serial Fig. 9(b) turns vs the pipelined non-blocking
  round schedule, at several (K, r) points.  Emits
  ``results/ablation_engine_schedules.json`` with turns, rounds,
  per-stage spans, and the cost model's closed-form predictions.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.figures import schedule_ablation
from repro.experiments.report import render_ablation

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Real-engine measurement grid: (K, r, records).  Sizes are chosen so the
#: paced transfer time dominates the shuffle (per-node egress is several
#: times the token bucket's burst); smaller inputs measure barrier/setup
#: overhead instead of the schedule.
ENGINE_POINTS = [(4, 1, 200_000), (6, 2, 400_000), (8, 3, 800_000)]

#: The paper's 100 Mbps per-node egress (bytes/s).
PAPER_RATE = 12.5e6


def bench_schedule_ablation_k16_r3(benchmark, sink):
    result = benchmark.pedantic(
        lambda: schedule_ablation(num_nodes=16, redundancy=3),
        rounds=1,
        iterations=1,
    )
    rows = {label: (sh, tot) for label, sh, tot in result.rows}
    serial_ts = rows["TeraSort, serial (paper)"][0]
    parallel_ts = rows["TeraSort, parallel (naive async)"][0]
    rounds_ts = rows["TeraSort, rounds (scheduled parallel)"][0]
    serial_cts = rows["CodedTeraSort, serial (paper)"][0]
    parallel_cts = rows["CodedTeraSort, parallel (naive async)"][0]
    rounds_cts = rows["CodedTeraSort, rounds (scheduled parallel)"][0]
    # In the paper's serialized regime coding wins decisively.
    assert serial_cts < serial_ts / 2
    # Naive async helps both; unscheduled multicast contention (groups of
    # r+1 = 4 nodes conflict often) keeps the coded gain modest.
    assert parallel_ts < serial_ts / 2
    assert parallel_cts < serial_cts
    # Scheduled rounds approach the concurrency caps: ~K/2 disjoint
    # unicasts, ~K/(r+1) disjoint multicasts per round.
    assert rounds_ts < serial_ts / 6  # cap 8x, packing realizes > 6x
    assert rounds_cts < serial_cts / 2.5  # cap 4x, packing realizes > 2.5x
    # The honest punchline: with fully scheduled parallelism the uncoded
    # exchange (2 nodes/transfer) out-parallelizes r+1-node multicasts —
    # coding's win is tied to the serialized fabric the paper uses.
    assert rounds_ts < rounds_cts
    benchmark.extra_info["serial_vs_rounds_terasort"] = round(
        serial_ts / rounds_ts, 2
    )
    benchmark.extra_info["serial_vs_rounds_coded"] = round(
        serial_cts / rounds_cts, 2
    )
    sink.add("ablation_schedules", render_ablation(result, markdown=True))


def _measure_engine_point(k, r, n_records, cost):
    """One (K, r) point: serial vs parallel on the process backend."""
    from repro.core.coded_terasort import run_coded_terasort
    from repro.core.groups import build_coding_plan
    from repro.core.theory import coded_shuffle_bytes
    from repro.kvpairs.teragen import teragen
    from repro.kvpairs.validation import validate_sorted_permutation
    from repro.cluster import connect

    data = teragen(n_records, seed=1000 + 10 * k + r)
    plan = build_coding_plan(k, r)
    packet_bytes = coded_shuffle_bytes(data.nbytes, r, k) / plan.total_multicasts
    point = {
        "k": k,
        "r": r,
        "records": n_records,
        "rate_bytes_per_s": PAPER_RATE,
        "turns": len(plan.schedule),
        "rounds": plan.num_rounds,
        "theoretical_speedup": plan.parallel_speedup,
        "model_serial_shuffle_s": cost.serial_multicast_shuffle_time(
            len(plan.schedule), packet_bytes, r
        ),
        "model_parallel_shuffle_s": cost.parallel_multicast_shuffle_time(
            plan.num_rounds, packet_bytes, r
        ),
    }
    for schedule in ("serial", "parallel"):
        run = run_coded_terasort(
            connect(f"proc://{k}", timeout=240, rate_bytes_per_s=PAPER_RATE),
            data,
            redundancy=r,
            schedule=schedule,
        )
        validate_sorted_permutation(data, run.partitions)
        entry = {
            "stage_seconds": dict(run.stage_times.seconds),
            "total_seconds": run.stage_times.total,
        }
        if schedule == "parallel":
            entry["shuffle_span_seconds"] = run.meta["shuffle_span_seconds"]
        point[schedule] = entry
    point["measured_shuffle_speedup"] = (
        point["serial"]["stage_seconds"]["shuffle"]
        / max(1e-9, point["parallel"]["stage_seconds"]["shuffle"])
    )
    return point


def bench_engine_schedule_serial_vs_parallel(benchmark, sink, paper_cost):
    points = benchmark.pedantic(
        lambda: [
            _measure_engine_point(k, r, n, paper_cost)
            for k, r, n in ENGINE_POINTS
        ],
        rounds=1,
        iterations=1,
    )
    # Acceptance bar: at K=8, r=3 the pipelined parallel schedule's shuffle
    # wall-clock is strictly below the serialized Fig. 9(b) baseline.
    big = next(p for p in points if (p["k"], p["r"]) == (8, 3))
    assert (
        big["parallel"]["stage_seconds"]["shuffle"]
        < big["serial"]["stage_seconds"]["shuffle"]
    )
    for p in points:
        benchmark.extra_info[
            f"shuffle_speedup_k{p['k']}_r{p['r']}"
        ] = round(p["measured_shuffle_speedup"], 2)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "ablation_engine_schedules.json"
    out_path.write_text(json.dumps(points, indent=2), encoding="utf-8")

    lines = [
        "# Engine schedule ablation (process backend, 100 Mbps pacing)",
        "",
        "| K | r | turns | rounds | serial shuffle (s) | parallel shuffle (s) "
        "| speedup | theoretical |",
        "|---|---|-------|--------|--------------------|----------------------"
        "|---------|-------------|",
    ]
    for p in points:
        lines.append(
            f"| {p['k']} | {p['r']} | {p['turns']} | {p['rounds']} "
            f"| {p['serial']['stage_seconds']['shuffle']:.3f} "
            f"| {p['parallel']['stage_seconds']['shuffle']:.3f} "
            f"| {p['measured_shuffle_speedup']:.2f}x "
            f"| {p['theoretical_speedup']:.2f}x |"
        )
    lines.append("")
    lines.append(f"Raw spans: `{out_path.name}` (same directory).")
    sink.add("ablation_engine_schedules", "\n".join(lines))
