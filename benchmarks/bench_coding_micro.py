"""Microbenchmarks: real encode/decode throughput of the coding engine.

These measure the *actual* Python/NumPy XOR coding path (not simulated):
packets per second and bytes per second for Algorithm 1 and Algorithm 2 at
realistic segment sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.decoding import recover_intermediate
from repro.core.encoding import encode_packet
from repro.utils.subsets import without


def build_store(group, value_bytes, seed=0):
    rng = random.Random(seed)
    store = {}
    for t in group:
        subset = without(group, t)
        store[(subset, t)] = bytes(
            rng.randrange(256) for _ in range(value_bytes)
        )
    return store


@pytest.mark.parametrize("r,value_kb", [(3, 64), (5, 64), (3, 512)])
def bench_encode_packet(benchmark, r, value_kb):
    group = tuple(range(r + 1))
    store = build_store(group, value_kb * 1024)
    lookup = lambda s, t: store[(s, t)]  # noqa: E731

    pkt = benchmark(lambda: encode_packet(0, group, lookup))
    assert len(pkt.payload) > 0
    benchmark.extra_info["payload_bytes"] = len(pkt.payload)
    benchmark.extra_info["xor_mb_per_round"] = round(
        r * len(pkt.payload) / 1e6, 3
    )


@pytest.mark.parametrize("r", [2, 3, 5])
def bench_decode_group(benchmark, r):
    """Full Algorithm 2 for one receiver in one group."""
    group = tuple(range(r + 1))
    store = build_store(group, 128 * 1024)
    lookup = lambda s, t: store[(s, t)]  # noqa: E731
    receiver = 0
    packets = {
        u: encode_packet(u, group, lookup) for u in group if u != receiver
    }
    expected = store[(without(group, receiver), receiver)]

    recovered = benchmark(
        lambda: recover_intermediate(receiver, group, packets, lookup)
    )
    assert recovered == expected


def bench_packet_wire_roundtrip(benchmark):
    group = (0, 1, 2, 3)
    store = build_store(group, 256 * 1024)
    lookup = lambda s, t: store[(s, t)]  # noqa: E731
    pkt = encode_packet(0, group, lookup)

    from repro.core.encoding import CodedPacket

    out = benchmark(lambda: CodedPacket.from_bytes(pkt.to_bytes()))
    assert out == pkt
