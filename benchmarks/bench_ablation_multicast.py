"""Ablations on the multicast cost — the §V-C sub-r shuffle gain.

1. Simulated: the ``MPI_Bcast`` logarithmic penalty (gamma) is why the
   measured shuffle gain is below r; with an ideal multicast (gamma = 0)
   the gain is the full r.
2. Real: linear vs binomial-tree application-layer multicast on the
   multiprocess backend under rate limiting — the tree shortens the
   root's serialized sending time.
"""

from __future__ import annotations

import pytest

from repro.core.coded_terasort import run_coded_terasort
from repro.experiments.figures import multicast_penalty_ablation
from repro.experiments.report import render_ablation
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.api import MulticastMode
from repro.cluster import connect
from repro.sim.costmodel import EC2CostModel
from repro.sim.runner import simulate_coded_terasort, simulate_terasort


def bench_multicast_penalty_sim(benchmark, sink):
    result = benchmark.pedantic(
        lambda: multicast_penalty_ablation(num_nodes=16, redundancy=3),
        rounds=1,
        iterations=1,
    )
    ideal_shuffle = result.rows[0][1]
    calibrated_shuffle = result.rows[1][1]
    base = simulate_terasort(16, granularity="turn").stage_times["shuffle"]
    ideal_gain = base / ideal_shuffle
    calibrated_gain = base / calibrated_shuffle
    # An ideal multicast achieves the full *load* ratio r(K-1)/(K-r)
    # (more than r: redundant mapping already shrinks what must move —
    # §IV-D), boosted by the TCP overhead factor that only the uncoded
    # unicasts pay in the calibration.
    k, r = 16, 3
    overhead = 1.0 + EC2CostModel.paper_calibrated().unicast_overhead
    expected_ideal = r * (k - 1) / (k - r) * overhead
    assert ideal_gain == pytest.approx(expected_ideal, rel=0.03)
    # The calibrated log-penalty pulls the gain below r, as the paper
    # measures (945.72 / 412.22 ~ 2.3 < 3 in Table II).
    assert calibrated_gain < ideal_gain
    assert 2.0 < calibrated_gain < 3.0
    benchmark.extra_info["ideal_gain"] = round(ideal_gain, 2)
    benchmark.extra_info["calibrated_gain"] = round(calibrated_gain, 2)
    sink.add("ablation_multicast", render_ablation(result, markdown=True))


def bench_multicast_tree_vs_linear_real(benchmark, sink):
    """Real multiprocess runs: binomial tree vs linear multicast."""
    data = teragen(30_000, seed=5)
    k, r, rate = 4, 2, 4e6

    def run(mode):
        return run_coded_terasort(
            connect(
                f"proc://{k}",
                rate_bytes_per_s=rate, timeout=120, multicast_mode=mode,
            ),
            data,
            redundancy=r,
        )

    def both():
        return run(MulticastMode.LINEAR), run(MulticastMode.TREE)

    linear, tree = benchmark.pedantic(both, rounds=1, iterations=1)
    validate_sorted_permutation(data, linear.partitions)
    validate_sorted_permutation(data, tree.partitions)
    benchmark.extra_info["linear_shuffle_s"] = round(
        linear.stage_times["shuffle"], 3
    )
    benchmark.extra_info["tree_shuffle_s"] = round(
        tree.stage_times["shuffle"], 3
    )
    from repro.utils.tables import format_table

    sink.add(
        "ablation_multicast_real",
        "Linear vs binomial-tree application multicast (real, K=4, r=2)\n\n"
        + format_table(
            ["mode", "shuffle (s)", "total (s)"],
            [
                ["linear", linear.stage_times["shuffle"], linear.stage_times.total],
                ["tree", tree.stage_times["shuffle"], tree.stage_times.total],
            ],
            decimals=3,
            markdown=True,
        ),
    )
