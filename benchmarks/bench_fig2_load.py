"""Fig. 2: communication load vs computation load (K = 10).

Two series per curve: the closed forms of Eq. (2) and loads *measured* by
byte-accounting real CodedTeraSort runs on the thread backend.  The
measured coded points sit a few percent above theory (packet headers),
exactly as a real implementation must.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import fig2_series
from repro.experiments.report import render_fig2


def bench_fig2_theory_curves(benchmark, sink):
    points = benchmark(lambda: fig2_series(num_nodes=10, measure=False))
    assert len(points) == 10
    # Eq. (2) spot values from the figure: L(1)=0.9, coded L(2)=0.4.
    assert points[0].uncoded_theory == pytest.approx(0.9)
    assert points[1].coded_theory == pytest.approx(0.4)
    sink.add("fig2_theory", render_fig2(points, markdown=True))


def bench_fig2_measured_loads(benchmark, sink):
    """Functional runs at K=10 for r = 1..5 (C(10,r) files each).

    The load cut is asymptotic: per-(file, partition) cells must be large
    enough that packet headers and max-of-r zero-padding are second-order.
    Padding scales as ~E[max of r cells]/mean ~ 1 + c/sqrt(cell records);
    at r=5, C(10,5)=252 files over 10 partitions, 400k records give ~160
    records per cell and a ~10% envelope.
    """
    points = benchmark.pedantic(
        lambda: fig2_series(
            num_nodes=10, n_records=400_000, measure=True, max_measured_r=5
        ),
        rounds=1,
        iterations=1,
    )
    for p in points:
        if p.coded_measured is not None:
            # Measured tracks theory within 15% (headers + padding).
            assert p.coded_measured == pytest.approx(
                p.coded_theory, rel=0.15, abs=0.02
            ), f"r={p.r}"
            # Headers/padding only ever add bytes.
            assert p.coded_measured >= p.coded_theory * 0.999, f"r={p.r}"
    measured = {p.r: p.coded_measured for p in points if p.coded_measured}
    benchmark.extra_info["coded_measured"] = {
        r: round(v, 4) for r, v in measured.items()
    }
    sink.add("fig2_measured", render_fig2(points, markdown=True))
