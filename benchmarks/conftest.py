"""Benchmark-suite fixtures: result sink writing results/*.md artifacts.

Every bench both (a) runs under pytest-benchmark for timing and (b) pushes
its reproduced table/figure rows into the session :class:`ResultSink`, which
writes one markdown fragment per experiment into ``results/`` at session
end.  EXPERIMENTS.md aggregates the same content via ``python -m repro
report``; the per-bench fragments let a single experiment be regenerated in
isolation.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


class ResultSink:
    """Collects rendered experiment fragments and flushes them to disk."""

    def __init__(self) -> None:
        self.fragments: Dict[str, str] = {}

    def add(self, name: str, content: str) -> None:
        self.fragments[name] = content

    def flush(self) -> List[str]:
        RESULTS_DIR.mkdir(exist_ok=True)
        written = []
        for name, content in sorted(self.fragments.items()):
            path = RESULTS_DIR / f"{name}.md"
            path.write_text(content, encoding="utf-8")
            written.append(str(path))
        return written


@pytest.fixture(scope="session")
def sink():
    s = ResultSink()
    yield s
    for path in s.flush():
        print(f"[results] wrote {path}")


@pytest.fixture(scope="session")
def paper_cost():
    from repro.sim.costmodel import EC2CostModel

    return EC2CostModel.paper_calibrated()
