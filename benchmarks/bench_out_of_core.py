"""Out-of-core sort: N bytes sorted under an N/8 memory budget.

Proves the bounded-memory data plane end to end: a CodedTeraSort of a
dataset **8x the per-worker memory budget** completes on both shuffle
schedules on the process backend and over a real localhost TCP mesh
(``repro worker`` subprocesses), with

* output **byte-identical** to the in-memory path (streamed part files
  compared record-for-record against resident reference partitions),
* peak per-worker record-buffer residency **within the budget** (the
  :class:`~repro.utils.residency.ResidencyMeter` readout shipped home in
  ``SortRun.meta``), and
* the control plane carrying only ``FileSource`` descriptors — the
  per-rank job payload pickles are asserted to be descriptor-sized.

The input lives on disk (``repro gen`` format, written once per run);
workers mmap their own ranges.  Reported throughput is end-to-end sort
MB/s per lane plus ``efficiency`` = out-of-core MB/s / in-memory MB/s (a
machine-portable ratio: both lanes run on the same box back to back).

Usage::

    PYTHONPATH=src python benchmarks/bench_out_of_core.py --quick \
        [--out results/out_of_core.json]

``--quick`` is the CI smoke: 64 MiB sorted under an 8 MiB budget.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, List

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.kvpairs.datasource import FileSource  # noqa: E402
from repro.kvpairs.records import RECORD_BYTES, RecordBatch  # noqa: E402
from repro.kvpairs.teragen import teragen_to_file  # noqa: E402
from repro.kvpairs.validation import validate_sorted_iter  # noqa: E402
from repro.cluster import connect  # noqa: E402
from repro.session import CodedTeraSortSpec, Session  # noqa: E402

RESULTS_DIR = REPO / "results"


def _assert_identical(reference: List[RecordBatch], partitions) -> None:
    """Stream-compare FileSource part files against resident partitions."""
    for rank, (ref, part) in enumerate(zip(reference, partitions)):
        pos = 0
        for batch in part.iter_batches():
            stop = pos + len(batch)
            if not np.array_equal(batch.array, ref.array[pos:stop]):
                raise RuntimeError(
                    f"rank {rank}: bytes [{pos * RECORD_BYTES}, "
                    f"{stop * RECORD_BYTES}) diverged from in-memory path"
                )
            pos = stop
        if pos != len(ref):
            raise RuntimeError(
                f"rank {rank}: {pos} records, in-memory path has {len(ref)}"
            )


def _run_lane(session, spec, budget: int, reference, nbytes: int) -> Dict:
    t0 = time.perf_counter()
    run = session.run(spec)
    seconds = time.perf_counter() - t0
    peak = run.meta["oc_peak_resident_bytes"]
    if not 0 < peak <= budget:
        raise RuntimeError(
            f"peak resident {peak} outside (0, budget {budget}]"
        )
    if run.meta["oc_spilled_bytes"] <= 0:
        raise RuntimeError("out-of-core lane never spilled")
    _assert_identical(reference, run.partitions)
    n_out = validate_sorted_iter(
        b for p in run.partitions for b in p.iter_batches()
    )
    if n_out * RECORD_BYTES != nbytes:
        raise RuntimeError(f"output holds {n_out * RECORD_BYTES} bytes")
    return {
        "seconds": seconds,
        "mbps": nbytes / 1e6 / seconds,
        "peak_resident_bytes": peak,
        "spilled_bytes": run.meta["oc_spilled_bytes"],
        "spill_runs": run.meta["oc_spill_runs"],
    }


def _check_descriptor_payloads(spec, nodes: int) -> int:
    """The control-plane criterion: per-rank payloads are descriptors."""
    prepared = spec.prepare(nodes)
    largest = max(len(pickle.dumps(p)) for p in prepared.payloads)
    if largest > 16_384:
        raise RuntimeError(
            f"control-plane payload is {largest} bytes — record payloads "
            "leaked into the descriptor path"
        )
    return largest


def bench(nodes: int, redundancy: int, records: int, timeout: float) -> Dict:
    workdir = tempfile.mkdtemp(prefix="bench-ooc-")
    try:
        return _bench(workdir, nodes, redundancy, records, timeout)
    finally:
        # Input + up to four sorted copies add up to hundreds of MiB;
        # remove them on failure paths too.
        shutil.rmtree(workdir, ignore_errors=True)


def _bench(
    workdir: str, nodes: int, redundancy: int, records: int, timeout: float
) -> Dict:
    nbytes = records * RECORD_BYTES
    budget = nbytes // 8
    data_path = os.path.join(workdir, "input.bin")
    print(f"[gen] {records} records ({nbytes / 2**20:.0f} MiB) -> "
          f"{data_path}; budget {budget / 2**20:.1f} MiB/worker", flush=True)
    teragen_to_file(data_path, records, seed=17)
    source = FileSource(data_path)

    def spec(schedule: str, output: str) -> CodedTeraSortSpec:
        return CodedTeraSortSpec(
            input=source,
            redundancy=redundancy,
            schedule=schedule,
            memory_budget=budget,
            output_dir=os.path.join(workdir, output),
        )

    payload_bytes = _check_descriptor_payloads(
        CodedTeraSortSpec(input=source, redundancy=redundancy), nodes
    )

    results: Dict = {
        "records": records,
        "bytes": nbytes,
        "memory_budget": budget,
        "nodes": nodes,
        "redundancy": redundancy,
        "max_payload_bytes": payload_bytes,
    }

    # In-memory reference lane (same descriptor input, no budget).
    with Session(connect(f"proc://{nodes}", timeout=timeout)) as session:
        t0 = time.perf_counter()
        ref_run = session.run(
            CodedTeraSortSpec(input=source, redundancy=redundancy)
        )
        inmem_s = time.perf_counter() - t0
        reference = list(ref_run.partitions)
        results["process"] = {
            "inmem_seconds": inmem_s,
            "inmem_mbps": nbytes / 1e6 / inmem_s,
        }
        for schedule in ("serial", "parallel"):
            lane = _run_lane(
                session,
                spec(schedule, f"out-proc-{schedule}"),
                budget,
                reference,
                nbytes,
            )
            lane["efficiency"] = lane["mbps"] / results["process"]["inmem_mbps"]
            results["process"][schedule] = lane
            print(f"[process/{schedule}] {lane['mbps']:.1f} MB/s "
                  f"(in-mem {results['process']['inmem_mbps']:.1f}), peak "
                  f"{lane['peak_resident_bytes']} <= {budget}, spilled "
                  f"{lane['spilled_bytes'] / 2**20:.0f} MiB", flush=True)

    # Real TCP mesh lane: K `repro worker` subprocesses on localhost.
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    results["tcp"] = {}
    with connect(
        "tcp://127.0.0.1:0", size=nodes, timeout=timeout, connect_timeout=120
    ) as cluster:
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--join", cluster.address, "--connect-timeout", "120",
                 "--quiet"],
                env=env,
            )
            for _ in range(nodes)
        ]
        try:
            with Session(cluster) as session:
                for schedule in ("serial", "parallel"):
                    lane = _run_lane(
                        session,
                        spec(schedule, f"out-tcp-{schedule}"),
                        budget,
                        reference,
                        nbytes,
                    )
                    lane["efficiency"] = (
                        lane["mbps"] / results["process"]["inmem_mbps"]
                    )
                    results["tcp"][schedule] = lane
                    print(f"[tcp/{schedule}] {lane['mbps']:.1f} MB/s, peak "
                          f"{lane['peak_resident_bytes']} <= {budget}",
                          flush=True)
        finally:
            rcs = []
            for proc in workers:
                try:
                    rcs.append(proc.wait(timeout=60))
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    rcs.append("killed")
    if rcs != [0] * nodes:
        raise RuntimeError(f"tcp workers exited {rcs}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", "-K", type=int, default=4)
    parser.add_argument("--redundancy", "-r", type=int, default=2)
    parser.add_argument("--records", "-n", type=int, default=1_342_177,
                        help="dataset size (default ~128 MiB)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 64 MiB under an 8 MiB budget")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the results JSON here")
    args = parser.parse_args(argv)
    records = 671_089 if args.quick else args.records  # 64 MiB quick

    results = bench(args.nodes, args.redundancy, records, args.timeout)
    print(json.dumps(
        {k: v for k, v in results.items() if not isinstance(v, dict)},
        indent=2,
    ))
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    print(f"PASS: {results['bytes'] / 2**20:.0f} MiB sorted under a "
          f"{results['memory_budget'] / 2**20:.1f} MiB budget, "
          f"byte-identical on process+tcp, both schedules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
