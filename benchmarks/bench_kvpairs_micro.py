"""Microbenchmarks: the KV-pair substrate (real measured throughput).

TeraGen generation, Map-stage hash partitioning, Reduce-stage sorting, and
Pack/Unpack serialization — the compute stages whose EC2 rates the cost
model calibrates.  ``extra_info`` reports records/s so the numbers can be
compared against the calibrated constants.
"""

from __future__ import annotations

import pytest

from repro.core.mapper import hash_file
from repro.core.partitioner import RangePartitioner
from repro.kvpairs.serialization import pack_batch, unpack_batch
from repro.kvpairs.sorting import is_sorted, sort_batch
from repro.kvpairs.teragen import teragen

N = 200_000


@pytest.fixture(scope="module")
def batch():
    return teragen(N, seed=1)


def bench_teragen(benchmark):
    out = benchmark(lambda: teragen(N, seed=2))
    assert len(out) == N


def bench_hash_partition_k16(benchmark, batch):
    partitioner = RangePartitioner.uniform(16)
    parts = benchmark(lambda: hash_file(batch, partitioner))
    assert sum(len(p) for p in parts) == N
    benchmark.extra_info["records_per_s_hint"] = N


def bench_sort(benchmark, batch):
    out = benchmark(lambda: sort_batch(batch))
    assert is_sorted(out)
    benchmark.extra_info["records"] = N


def bench_pack(benchmark, batch):
    buf = benchmark(lambda: pack_batch(batch, tag=1))
    assert len(buf) > N * 100


def bench_unpack(benchmark, batch):
    buf = pack_batch(batch, tag=1)
    tag, out = benchmark(lambda: unpack_batch(buf))
    assert tag == 1 and len(out) == N


def bench_key_words(benchmark, batch):
    hi, lo = benchmark(batch.key_words)
    assert len(hi) == N and len(lo) == N
