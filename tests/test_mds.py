"""Tests for the real-valued MDS code (round trips, MDS property)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stragglers.mds import MDSCode, MDSError


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(MDSError):
            MDSCode(3, 0)
        with pytest.raises(MDSError):
            MDSCode(2, 3)
        with pytest.raises(MDSError):
            MDSCode(4, 2, construction="hamming")

    def test_systematic_prefix_is_identity(self):
        code = MDSCode(7, 4)
        assert np.allclose(code.generator[:4], np.eye(4))
        assert code.is_systematic

    def test_vandermonde_shape(self):
        code = MDSCode(6, 3, construction="vandermonde")
        assert code.generator.shape == (6, 3)
        assert not code.is_systematic

    def test_n_equals_k_is_identity_map(self):
        code = MDSCode(4, 4)
        data = np.arange(12.0).reshape(4, 3)
        assert np.allclose(code.encode(data), data)


class TestEncodeDecode:
    def test_systematic_blocks_pass_through(self):
        code = MDSCode(6, 3)
        data = np.random.default_rng(0).standard_normal((3, 5))
        coded = code.encode(data)
        assert np.allclose(coded[:3], data)

    def test_encode_shape_validation(self):
        code = MDSCode(5, 3)
        with pytest.raises(MDSError):
            code.encode(np.zeros((4, 2)))

    def test_decode_validation(self):
        code = MDSCode(5, 3)
        coded = code.encode(np.ones((3, 2)))
        with pytest.raises(MDSError):
            code.decode(coded[:2], [0, 1])  # too few blocks/indices
        with pytest.raises(MDSError):
            code.decode(coded[:3], [0, 1, 1])  # duplicate index
        with pytest.raises(MDSError):
            code.decode(coded[:3], [0, 1, 9])  # out of range
        with pytest.raises(MDSError):
            code.decode(coded[:2], [0, 1, 2])  # row count != k

    def test_all_erasure_patterns_small(self):
        """Exhaustive MDS check: every 3-of-6 subset decodes."""
        code = MDSCode(6, 3)
        rng = np.random.default_rng(1)
        data = rng.standard_normal((3, 4))
        coded = code.encode(data)
        for subset in itertools.combinations(range(6), 3):
            got = code.decode(coded[list(subset)], list(subset))
            assert np.allclose(got, data, atol=1e-8), subset

    def test_all_erasure_patterns_vandermonde(self):
        code = MDSCode(6, 3, construction="vandermonde")
        rng = np.random.default_rng(2)
        data = rng.standard_normal((3, 4))
        coded = code.encode(data)
        for subset in itertools.combinations(range(6), 3):
            got = code.decode(coded[list(subset)], list(subset))
            assert np.allclose(got, data, atol=1e-6), subset

    def test_multidimensional_blocks(self):
        """Blocks can be matrices (the coded-matmul use case)."""
        code = MDSCode(8, 5)
        rng = np.random.default_rng(3)
        data = rng.standard_normal((5, 6, 7))
        coded = code.encode(data)
        idx = [7, 0, 3, 5, 2]
        got = code.decode(coded[sorted(idx)], sorted(idx))
        assert got.shape == data.shape
        assert np.allclose(got, data, atol=1e-8)

    def test_decoding_matrix_matches_decode(self):
        code = MDSCode(7, 4)
        rng = np.random.default_rng(4)
        data = rng.standard_normal((4, 3))
        coded = code.encode(data)
        idx = [1, 2, 4, 6]
        dec_mat = code.decoding_matrix(idx)
        via_matrix = dec_mat @ coded[idx]
        assert np.allclose(via_matrix, data, atol=1e-8)

    def test_decoding_matrix_validation(self):
        code = MDSCode(5, 3)
        with pytest.raises(MDSError):
            code.decoding_matrix([0, 1])

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n=st.integers(2, 10))
    def test_random_subset_roundtrip(self, data, n):
        k = data.draw(st.integers(1, n))
        cols = data.draw(st.integers(1, 6))
        subset = data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=k, max_size=k, unique=True
            )
        )
        code = MDSCode(n, k)
        rng = np.random.default_rng(17)
        blocks = rng.standard_normal((k, cols))
        coded = code.encode(blocks)
        got = code.decode(coded[subset], subset)
        assert np.allclose(got, blocks, atol=1e-6)

    def test_linearity_of_encoding(self):
        """enc(aX + bY) = a enc(X) + b enc(Y) — needed for matvec coding."""
        code = MDSCode(6, 4)
        rng = np.random.default_rng(5)
        x, y = rng.standard_normal((2, 4, 3))
        lhs = code.encode(2.0 * x - 0.5 * y)
        rhs = 2.0 * code.encode(x) - 0.5 * code.encode(y)
        assert np.allclose(lhs, rhs)
