"""Tests for the bundled Coded MapReduce jobs.

The invariant across all jobs: outputs are identical for every scheme
(uncoded r=1, uncoded r>1, coded r>1) and every cluster size — coding is
transparent to the application.
"""

from __future__ import annotations

import pytest

from repro.core.cmr import run_mapreduce
from repro.core.jobs import (
    GrepJob,
    InvertedIndexJob,
    SelfJoinJob,
    WordCountJob,
    _bucket,
)
from repro.runtime.inproc import ThreadCluster

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "the five boxing wizards jump quickly at dawn",
    "a quick movement of the enemy will jeopardize five gunboats",
    "five quacking zephyrs jolt my wax bed today",
    "jinxed wizards pluck ivy from the big quilt",
]


def merged_outputs(run):
    merged = {}
    for out in run.outputs.values():
        if isinstance(out, dict):
            for key, val in out.items():
                assert key not in merged
                merged[key] = val
        else:
            merged.setdefault("__list__", []).extend(out)
    return merged


class TestBucketHash:
    def test_deterministic(self):
        assert _bucket("hello", 7) == _bucket("hello", 7)

    def test_range(self):
        for w in ["a", "bb", "ccc", "zzzz"]:
            assert 0 <= _bucket(w, 5) < 5

    def test_distributes(self):
        buckets = {_bucket(f"word{i}", 8) for i in range(100)}
        assert len(buckets) == 8


class TestWordCount:
    def expected(self):
        counts = {}
        for t in TEXTS:
            for w in t.split():
                counts[w] = counts.get(w, 0) + 1
        return counts

    @pytest.mark.parametrize("coded,r", [(False, 1), (False, 2), (True, 2), (True, 1)])
    def test_schemes_agree(self, coded, r):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), WordCountJob(), TEXTS,
            redundancy=r, coded=coded,
        )
        assert merged_outputs(run) == self.expected()

    def test_multiple_buckets_per_node(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), WordCountJob(buckets_per_node=2),
            TEXTS, redundancy=2, coded=True,
        )
        assert len(run.outputs) == 6  # Q = 3 * 2 functions
        assert merged_outputs(run) == self.expected()

    def test_coded_load_smaller_than_uncoded(self):
        # The r-fold load cut is asymptotic: coded packets carry a ~54-byte
        # header and are zero-padded to the longest segment in the group, so
        # the win only shows once intermediate values dwarf that overhead.
        # Word-count intermediates are {word: count} dicts, so the payload
        # grows with *distinct* words — give each file 400 unique ones.
        texts = [
            " ".join(f"file{i}word{j}" for j in range(400)) for i in range(6)
        ]
        base = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), WordCountJob(), texts,
            redundancy=2, coded=False,
        )
        coded = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), WordCountJob(), texts,
            redundancy=2, coded=True,
        )
        assert (
            coded.traffic.load_bytes("shuffle")
            < base.traffic.load_bytes("shuffle")
        )

    def test_tiny_payload_overhead_documented(self):
        """At byte-scale payloads headers + padding can exceed the saving —
        the engine must still deliver correct outputs in that regime."""
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), WordCountJob(), TEXTS,
            redundancy=2, coded=True,
        )
        assert merged_outputs(run) == self.expected()

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            WordCountJob(buckets_per_node=0)


class TestGrep:
    def test_finds_all_matches(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), GrepJob(r"qu"), TEXTS,
            redundancy=2, coded=True,
        )
        matches = [m for v in run.outputs.values() for m in v]
        expected = [
            (i, 0, t) for i, t in enumerate(TEXTS) if "qu" in t
        ]
        assert sorted(matches) == sorted(expected)

    def test_no_matches(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), GrepJob(r"zzzzzz"), TEXTS,
            redundancy=2, coded=True,
        )
        assert all(v == [] for v in run.outputs.values())

    def test_regex_anchors(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), GrepJob(r"^the"), TEXTS,
            redundancy=1, coded=False,
        )
        matches = [m for v in run.outputs.values() for m in v]
        assert {m[0] for m in matches} == {0, 2}


class TestSelfJoin:
    def test_join_pairs(self):
        files = [
            [("k1", 1), ("k2", 10)],
            [("k1", 2), ("k3", 30)],
            [("k1", 3), ("k2", 20)],
        ]
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), SelfJoinJob(), files,
            redundancy=2, coded=True,
        )
        joined = merged_outputs(run)
        assert joined["k1"] == [(1, 2), (1, 3), (2, 3)]
        assert joined["k2"] == [(10, 20)]
        assert "k3" not in joined  # single value: no pair

    def test_schemes_agree(self):
        files = [[(f"k{i % 4}", i)] for i in range(6)]
        runs = [
            run_mapreduce(ThreadCluster(3, recv_timeout=30), SelfJoinJob(),
                          files, redundancy=r, coded=c)
            for c, r in [(False, 1), (True, 2)]
        ]
        assert merged_outputs(runs[0]) == merged_outputs(runs[1])


class TestInvertedIndex:
    def test_postings(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), InvertedIndexJob(), TEXTS,
            redundancy=2, coded=True,
        )
        idx = merged_outputs(run)
        assert idx["five"] == [1, 2, 3, 4]
        assert idx["the"] == [0, 2, 3, 5]

    def test_each_word_once_per_file(self):
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), InvertedIndexJob(),
            ["dup dup dup", "dup other", "x y"],
            redundancy=1, coded=False,
        )
        idx = merged_outputs(run)
        assert idx["dup"] == [0, 1]


class TestEngineValidation:
    def test_file_count_must_divide(self):
        with pytest.raises(ValueError, match="multiple"):
            run_mapreduce(
                ThreadCluster(3, recv_timeout=30), WordCountJob(),
                TEXTS[:4], redundancy=2, coded=True,
            )

    def test_zero_files_rejected(self):
        with pytest.raises(ValueError):
            run_mapreduce(
                ThreadCluster(3, recv_timeout=30), WordCountJob(), [],
                redundancy=1,
            )


class TestRankedInvertedIndex:
    def expected(self):
        from collections import Counter

        postings = {}
        for i, text in enumerate(TEXTS):
            for word, n in Counter(text.split()).items():
                postings.setdefault(word, []).append((i, n))
        return {
            w: sorted(entries, key=lambda e: (-e[1], e[0]))
            for w, entries in postings.items()
        }

    @pytest.mark.parametrize("coded,r", [(False, 1), (False, 2), (True, 2)])
    def test_schemes_agree(self, coded, r):
        from repro.core.jobs import RankedInvertedIndexJob

        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), RankedInvertedIndexJob(),
            TEXTS, redundancy=r, coded=coded,
        )
        assert merged_outputs(run) == self.expected()

    def test_ranking_order(self):
        from repro.core.jobs import RankedInvertedIndexJob

        texts = [
            "apple apple apple banana",   # file 0: apple x3
            "apple banana banana",        # file 1: apple x1, banana x2
            "apple apple cherry",         # file 2: apple x2
        ]
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), RankedInvertedIndexJob(),
            texts, redundancy=1, coded=False,
        )
        merged = merged_outputs(run)
        # apple ranked by term frequency: file 0 (3) > file 2 (2) > file 1.
        assert merged["apple"] == [(0, 3), (2, 2), (1, 1)]
        assert merged["banana"] == [(1, 2), (0, 1)]
        assert merged["cherry"] == [(2, 1)]

    def test_tie_broken_by_file_id(self):
        from repro.core.jobs import RankedInvertedIndexJob

        texts = ["tie word", "tie word", "other text"]
        run = run_mapreduce(
            ThreadCluster(3, recv_timeout=30), RankedInvertedIndexJob(),
            texts, redundancy=1, coded=False,
        )
        merged = merged_outputs(run)
        assert merged["tie"] == [(0, 1), (1, 1)]
