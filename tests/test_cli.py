"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "coded"
        assert args.nodes == 6 and args.redundancy == 2
        assert args.schedule == "serial"

    def test_sort_schedule_choices(self):
        args = build_parser().parse_args(["sort", "--schedule", "parallel"])
        assert args.schedule == "parallel"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--schedule", "warp"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_sort_coded(self, capsys):
        rc = main(["sort", "-K", "4", "-r", "2", "-n", "2000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output valid" in out
        assert "shuffle payload" in out

    def test_sort_terasort(self, capsys):
        rc = main(["sort", "--algorithm", "terasort", "-K", "3", "-n", "1500"])
        assert rc == 0
        assert "output valid" in capsys.readouterr().out

    def test_sort_coded_parallel_schedule(self, capsys):
        rc = main(["sort", "-K", "4", "-r", "2", "-n", "2000",
                   "--schedule", "parallel"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output valid" in out
        assert "rounds" in out  # turns-into-rounds summary line

    def test_simulate(self, capsys):
        rc = main(["simulate", "-K", "8", "-r", "3", "-n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "codegen" in out and "total" in out

    def test_simulate_terasort(self, capsys):
        rc = main(["simulate", "--algorithm", "terasort", "-K", "8",
                   "-n", "1000000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shuffle" in out

    def test_theory(self, capsys):
        rc = main(["theory", "-K", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "L_CMR" in out

    def test_theory_with_times(self, capsys):
        rc = main([
            "theory", "-K", "16", "--t-map", "1.86",
            "--t-shuffle", "945.72", "--t-reduce", "10.47",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "r* = 16" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        rc = main(["report", "--fast", "-o", str(target)])
        assert rc == 0
        content = target.read_text()
        assert "Table II" in content
        assert "Fig. 2" in content

    def test_stragglers(self, capsys):
        rc = main(["stragglers", "-t", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "coded" in out and "saving" in out

    def test_scalable(self, capsys):
        rc = main(["scalable", "-K", "8", "-g", "4", "-r", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Grouped g=4" in out and "CodeGen" in out

    def test_wireless(self, capsys):
        rc = main(["wireless", "-K", "4", "-r", "2", "-n", "3000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "d2d" in out and "uncoded" in out
