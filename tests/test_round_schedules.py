"""Tests for the conflict-free parallel shuffle schedules (§VI)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import (
    build_coding_plan,
    round_schedule,
    unicast_round_schedule,
)
from repro.sim.runner import simulate_coded_terasort, simulate_terasort


class TestCodedRoundSchedule:
    def test_covers_schedule_exactly_once(self):
        plan = build_coding_plan(8, 2)
        rounds = round_schedule(plan)
        flat = [item for rnd in rounds for item in rnd]
        assert sorted(flat) == sorted(plan.schedule)

    def test_rounds_are_node_disjoint(self):
        plan = build_coding_plan(10, 3)
        for rnd in round_schedule(plan):
            nodes = set()
            for gidx, _sender in rnd:
                members = set(plan.groups[gidx])
                assert not (nodes & members)
                nodes |= members

    def test_packing_quality(self):
        """Greedy packing should realize most of the K/(r+1) cap."""
        plan = build_coding_plan(16, 3)
        rounds = round_schedule(plan)
        avg = plan.total_multicasts / len(rounds)
        assert avg > 0.7 * (16 // 4)

    def test_deterministic(self):
        plan = build_coding_plan(8, 2)
        assert round_schedule(plan) == round_schedule(plan)

    def test_window_validation(self):
        plan = build_coding_plan(6, 2)
        with pytest.raises(ValueError):
            round_schedule(plan, window=0)

    def test_degenerate_single_slot(self):
        """K < 2(r+1): no two groups ever disjoint, one item per round."""
        plan = build_coding_plan(4, 2)  # groups of 3 from 4 nodes
        rounds = round_schedule(plan)
        assert all(len(rnd) == 1 for rnd in rounds)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_property_valid_packing(self, data):
        k = data.draw(st.integers(3, 10))
        r = data.draw(st.integers(1, min(k - 1, 4)))
        plan = build_coding_plan(k, r)
        rounds = round_schedule(plan)
        flat = [item for rnd in rounds for item in rnd]
        assert sorted(flat) == sorted(plan.schedule)
        for rnd in rounds:
            nodes = set()
            for gidx, sender in rnd:
                members = set(plan.groups[gidx])
                assert sender in members
                assert not (nodes & members)
                nodes |= members


class TestUnicastRoundSchedule:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8, 9, 16, 17])
    def test_exact_all_to_all(self, k):
        rounds = unicast_round_schedule(k)
        pairs = [p for rnd in rounds for p in rnd]
        expected = {(a, b) for a in range(k) for b in range(k) if a != b}
        assert set(pairs) == expected
        assert len(pairs) == len(expected)  # no duplicates

    @pytest.mark.parametrize("k", [2, 4, 6, 16])
    def test_even_k_is_optimal(self, k):
        """Even K: 2(K-1) half-duplex sub-rounds, each a perfect matching."""
        rounds = unicast_round_schedule(k)
        assert len(rounds) == 2 * (k - 1)
        for rnd in rounds:
            assert len(rnd) == k // 2

    @pytest.mark.parametrize("k", [3, 5, 9])
    def test_odd_k_near_optimal(self, k):
        rounds = unicast_round_schedule(k)
        assert len(rounds) == 2 * k
        for rnd in rounds:
            assert len(rnd) == (k - 1) // 2

    def test_rounds_node_disjoint(self):
        for k in (4, 7, 12):
            for rnd in unicast_round_schedule(k):
                nodes = set()
                for a, b in rnd:
                    assert a != b
                    assert not ({a, b} & nodes)
                    nodes |= {a, b}

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            unicast_round_schedule(1)


class TestScheduleModesInSimulator:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            simulate_terasort(4, n_records=1000, schedule="quantum")

    def test_rounds_requires_transfer_granularity(self):
        with pytest.raises(ValueError):
            simulate_terasort(
                4, n_records=1000, schedule="rounds", granularity="turn"
            )

    def test_legacy_serial_flag_maps(self):
        rep = simulate_terasort(4, n_records=100_000, serial=False)
        assert rep.meta["schedule"] == "parallel"
        rep = simulate_terasort(4, n_records=100_000, serial=True)
        assert rep.meta["schedule"] == "serial"

    def test_schedule_overrides_serial_flag(self):
        rep = simulate_terasort(
            4, n_records=100_000, serial=True, schedule="rounds"
        )
        assert rep.meta["schedule"] == "rounds"

    def test_payload_identical_across_schedules(self):
        """Scheduling changes time, never bytes."""
        reps = [
            simulate_terasort(6, n_records=1_000_000, schedule=s)
            for s in ("serial", "parallel", "rounds")
        ]
        payloads = {r.shuffle_payload_bytes for r in reps}
        assert len(payloads) == 1

    def test_coded_payload_identical_across_schedules(self):
        reps = [
            simulate_coded_terasort(6, 2, n_records=1_000_000, schedule=s)
            for s in ("serial", "parallel", "rounds")
        ]
        payloads = {r.shuffle_payload_bytes for r in reps}
        assert len(payloads) == 1

    def test_rounds_beat_serial_wall_clock(self):
        serial = simulate_terasort(8, n_records=2_000_000, schedule="serial")
        rounds = simulate_terasort(8, n_records=2_000_000, schedule="rounds")
        assert (
            rounds.stage_times["shuffle"]
            < serial.stage_times["shuffle"] / 3
        )

    def test_coded_rounds_beat_serial_wall_clock(self):
        serial = simulate_coded_terasort(
            8, 2, n_records=2_000_000, schedule="serial"
        )
        rounds = simulate_coded_terasort(
            8, 2, n_records=2_000_000, schedule="rounds"
        )
        assert rounds.stage_times["shuffle"] < serial.stage_times["shuffle"]
