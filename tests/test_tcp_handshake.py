"""TCP rendezvous failure paths: clean errors, never hangs.

Covers the four required failure modes of the handshake: a wrong
protocol version, a duplicate rank request, a worker that dies
mid-handshake, and connect timeouts on both sides.  Every scenario must
surface a descriptive error within its configured timeout — a silent
hang is the failure being guarded against.

All sockets use ephemeral 127.0.0.1 ports (xdist-safe).
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.terasort import prepare_terasort
from repro.kvpairs.teragen import teragen
from repro.runtime import tcp
from repro.runtime.tcp import (
    PROTOCOL_VERSION,
    TcpCluster,
    TcpClusterError,
    TcpHandshakeError,
    parse_address,
    run_worker,
)
from repro.runtime.transport import send_frame


def _raw_client(address: str, version: int, rank: int) -> socket.socket:
    """Dial the rendezvous and send one HELLO frame, returning the socket."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.settimeout(10.0)
    send_frame(
        sock, tcp._TAG_HELLO, tcp._HELLO.pack(tcp._MAGIC, version, rank)
    )
    return sock


class TestParseAddress:
    def test_accepts_scheme_and_bare_forms(self):
        assert parse_address("tcp://10.0.0.7:4000") == ("10.0.0.7", 4000)
        assert parse_address("localhost:0") == ("localhost", 0)
        assert parse_address("tcp://[::1]:4000") == ("::1", 4000)

    @pytest.mark.parametrize("bad", ["tcp://nohost", "1234", ":80", "h:x"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="tcp://HOST:PORT"):
            parse_address(bad)


class TestCoordinatorRejections:
    def test_wrong_version_rejected_with_reason(self):
        """A mismatched protocol version gets a reject frame, and the
        rendezvous keeps serving valid workers afterwards."""
        with TcpCluster(
            1, "tcp://127.0.0.1:0", connect_timeout=30, handshake_timeout=10
        ) as cluster:
            pool = cluster.create_pool()
            with ThreadPoolExecutor(1) as pool_exec:
                starting = pool_exec.submit(pool._start)
                bad = _raw_client(cluster.address, PROTOCOL_VERSION + 7, -1)
                msg = tcp._recv_msg(bad)
                bad.close()
                assert msg[0] == "reject"
                assert "version" in msg[1]
                # The rendezvous survived the bad client: a real worker
                # still completes the handshake.
                worker = threading.Thread(
                    target=run_worker,
                    kwargs=dict(join=cluster.address, quiet=True),
                    daemon=True,
                )
                worker.start()
                starting.result(timeout=30)
                worker_sockets = pool._ctrl
                assert len(worker_sockets) == 1
                pool.close()
                worker.join(timeout=15)
                assert not worker.is_alive()

    def test_duplicate_rank_rejected_and_midhandshake_death_detected(self):
        """Second claimant of a rank is rejected with a reason; a worker
        dying after admission surfaces as a clean coordinator error."""
        with TcpCluster(
            2, "tcp://127.0.0.1:0", connect_timeout=30, handshake_timeout=5
        ) as cluster:
            pool = cluster.create_pool()
            with ThreadPoolExecutor(1) as pool_exec:
                starting = pool_exec.submit(pool._start)
                first = _raw_client(cluster.address, PROTOCOL_VERSION, 0)
                assert tcp._recv_msg(first)[0] == "welcome"

                dup = _raw_client(cluster.address, PROTOCOL_VERSION, 0)
                msg = tcp._recv_msg(dup)
                dup.close()
                assert msg[0] == "reject"
                assert "duplicate rank" in msg[1]

                # Kill the admitted rank-0 claimant mid-handshake, then
                # fill rank 1 so the coordinator reaches the next phase
                # and must notice the death — with a named rank, fast.
                first.close()
                second = _raw_client(cluster.address, PROTOCOL_VERSION, 1)
                assert tcp._recv_msg(second)[0] == "welcome"
                with pytest.raises(
                    TcpClusterError,
                    match="worker 0 died before announcing",
                ):
                    starting.result(timeout=30)
                second.close()

    def test_out_of_range_rank_rejected(self):
        with TcpCluster(
            2, "tcp://127.0.0.1:0", connect_timeout=2, handshake_timeout=5
        ) as cluster:
            pool = cluster.create_pool()
            with ThreadPoolExecutor(1) as pool_exec:
                starting = pool_exec.submit(pool._start)
                client = _raw_client(cluster.address, PROTOCOL_VERSION, 9)
                msg = tcp._recv_msg(client)
                client.close()
                assert msg[0] == "reject"
                assert "out of range" in msg[1]
                # No valid worker ever joins: the rendezvous gives up at
                # connect_timeout with the actionable message.
                with pytest.raises(TcpClusterError, match="timed out"):
                    starting.result(timeout=30)


class TestWorkerSideErrors:
    def test_worker_raises_on_reject(self):
        """A rejected worker exits with the coordinator's reason."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        addr = f"127.0.0.1:{listener.getsockname()[1]}"

        def fake_coordinator():
            # The hello payload is a struct, not a pickle: drain it raw.
            conn, _ = listener.accept()
            conn.settimeout(10.0)
            from repro.runtime.transport import recv_frame

            recv_frame(conn)
            tcp._send_msg(conn, ("reject", "protocol version mismatch: nope"))
            conn.close()

        server = threading.Thread(target=fake_coordinator, daemon=True)
        server.start()
        try:
            with pytest.raises(
                TcpHandshakeError, match="version mismatch: nope"
            ):
                run_worker(addr, quiet=True, connect_timeout=10,
                           handshake_timeout=10)
        finally:
            server.join(timeout=10)
            listener.close()

    def test_worker_connect_timeout_is_bounded(self):
        """Dialing a dead address errors out at connect_timeout, no hang."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead = f"tcp://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()  # nothing listens here anymore
        with pytest.raises(TcpClusterError, match="could not connect"):
            run_worker(dead, quiet=True, connect_timeout=0.5)


def test_coordinator_times_out_waiting_for_workers():
    """A pool start with no workers fails with an actionable message."""
    data = teragen(200, seed=1)
    with TcpCluster(2, "tcp://127.0.0.1:0", connect_timeout=0.4) as cluster:
        pool = cluster.create_pool()
        with pytest.raises(
            TcpClusterError, match=r"0/2 joined.*repro worker --join"
        ):
            pool.run_job(prepare_terasort(2, data))
