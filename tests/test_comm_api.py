"""Tests for the Comm interface: validation, bcast algorithms, traffic."""

from __future__ import annotations

import pytest

from repro.runtime.api import Comm, CommError, MulticastMode, RESERVED_TAG_BASE
from repro.runtime.inproc import ThreadCluster
from repro.runtime.program import NodeProgram


class _EchoProgram(NodeProgram):
    """Every root broadcasts; everyone collects all payloads."""

    STAGES = ["talk"]

    def __init__(self, comm, group=None):
        super().__init__(comm)
        self.group = group or tuple(range(comm.size))

    def run(self):
        out = {}
        with self.stage("talk"):
            for root in self.group:
                if self.rank in self.group:
                    payload = (
                        f"msg-{root}".encode() if self.rank == root else None
                    )
                    out[root] = self.comm.bcast(
                        self.group, root, tag=root, payload=payload
                    )
        return out


class TestBcastModes:
    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_all_members_receive(self, mode, size):
        res = ThreadCluster(size, multicast_mode=mode, recv_timeout=20).run(
            _EchoProgram
        )
        for got in res.results:
            assert got == {r: f"msg-{r}".encode() for r in range(size)}

    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    def test_subgroup_bcast(self, mode):
        group = (0, 2, 3)

        def factory(comm):
            return _EchoProgram(comm, group=group)

        res = ThreadCluster(5, multicast_mode=mode, recv_timeout=20).run(factory)
        for rank, got in enumerate(res.results):
            if rank in group:
                assert got == {r: f"msg-{r}".encode() for r in group}
            else:
                assert got == {}

    def test_modes_produce_identical_traffic_load(self):
        loads = {}
        for mode in (MulticastMode.LINEAR, MulticastMode.TREE):
            res = ThreadCluster(6, multicast_mode=mode, recv_timeout=20).run(
                _EchoProgram
            )
            loads[mode] = res.traffic.load_bytes()
        assert loads[MulticastMode.LINEAR] == loads[MulticastMode.TREE]


class _ValidationProgram(NodeProgram):
    STAGES = ["check"]

    def run(self):
        errors = []
        with self.stage("check"):
            for fn, kwargs in [
                (self.comm.send, dict(dst=self.rank, tag=1, payload=b"")),
                (self.comm.send, dict(dst=99, tag=1, payload=b"")),
                (self.comm.send, dict(dst=(self.rank + 1) % self.size,
                                      tag=RESERVED_TAG_BASE, payload=b"")),
                (self.comm.recv, dict(src=self.rank, tag=1)),
            ]:
                try:
                    fn(**kwargs)
                    errors.append("no error")
                except CommError:
                    errors.append("ok")
            # bcast misuse
            try:
                self.comm.bcast((0, 0, 1), 0, 1, b"x")
                errors.append("no error")
            except CommError:
                errors.append("ok")
            try:
                self.comm.bcast((0, 1), 2, 1, b"x")
                errors.append("no error")
            except CommError:
                errors.append("ok")
            if self.rank == 0:
                try:
                    self.comm.bcast((0, 1), 0, 1, None)  # root w/o payload
                    errors.append("no error")
                except CommError:
                    errors.append("ok")
        return errors


class TestValidation:
    def test_all_misuses_raise_commerror(self):
        res = ThreadCluster(2, recv_timeout=10).run(_ValidationProgram)
        for errs in res.results:
            assert all(e == "ok" for e in errs)

    def test_comm_rank_bounds(self):
        class Dummy(Comm):
            def _send_raw(self, *a): ...
            def _recv_raw(self, *a): ...
            def _barrier_raw(self): ...

        with pytest.raises(CommError):
            Dummy(5, 3)


class _SingletonBcast(NodeProgram):
    STAGES = ["s"]

    def run(self):
        with self.stage("s"):
            return self.comm.bcast((self.rank,), self.rank, 1, b"self")


class TestEdgeGroups:
    def test_singleton_group_returns_payload(self):
        res = ThreadCluster(3, recv_timeout=10).run(_SingletonBcast)
        assert all(r == b"self" for r in res.results)

    def test_singleton_group_logs_nothing(self):
        res = ThreadCluster(3, recv_timeout=10).run(_SingletonBcast)
        assert res.traffic.message_count() == 0
