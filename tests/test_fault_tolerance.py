"""Fault tolerance on the process backend (forked workers, real sockets).

End-to-end chaos coverage driven by ``$REPRO_FAULT_PLAN``:

* a worker crash (hard ``os._exit(137)``, simulating SIGKILL) mid-job is
  detected, typed as :class:`WorkerFailure`, and — with
  ``Session(max_retries=...)`` — transparently retried on a re-forked
  pool with **byte-identical** output and a full per-attempt record;
* a retry storm (worker dies every attempt) exhausts ``max_retries``,
  fails only that handle, and leaves the session serving the next job;
* a worker silenced with SIGSTOP misses heartbeats and is declared dead
  after ``failure_timeout`` instead of stalling the job forever;
* speculative map re-execution backs up an injected 5x map straggler on
  a finished worker, keeps the output byte-identical either way the race
  resolves, and reports who backed up / who abandoned in ``run.meta``;
* a SIGKILLed worker's leaked spill dir is reaped by the next pool
  start, and concurrent sweeps (every worker of a re-forked pool sweeps
  at startup) race safely — exactly one reaper wins each orphan.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.kvpairs.datasource import TeragenSource
from repro.kvpairs.spill import SPILL_DIR_PREFIX, SpillDir
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.errors import WorkerFailure
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.session import Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

K = 4


def _bytes(run):
    return [p.to_bytes() for p in run.partitions]


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def test_crash_mid_shuffle_retried_byte_identical(no_plan):
    """One injected crash, one automatic retry, identical bytes, full
    attempt history with the typed infrastructure cause."""
    data = teragen(2000, seed=41)
    with Session(ProcessCluster(K, timeout=60)) as s:
        reference = _bytes(s.submit(TeraSortSpec(data=data)).result())

    no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=shuffle,job_lt=1")
    with Session(
        ProcessCluster(K, timeout=60), max_retries=2, retry_backoff=0.05
    ) as s:
        handle = s.submit(TeraSortSpec(data=data))
        run = handle.result(timeout=60)
    assert _bytes(run) == reference
    assert len(handle.attempts) == 2
    first, second = handle.attempts
    assert isinstance(first.error, WorkerFailure)
    assert first.error.rank == 1
    assert "ProcessCluster" in str(first.error)
    assert second.error is None


def test_retry_storm_exhausts_and_session_survives(no_plan):
    """A worker that dies on every attempt: the handle fails with the
    whole attempt history, the next submit on the same session works."""
    data = teragen(1500, seed=42)
    no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=map,times=100")
    with Session(
        ProcessCluster(K, timeout=60), max_retries=1, retry_backoff=0.05
    ) as s:
        doomed = s.submit(TeraSortSpec(data=data))
        err = doomed.exception(timeout=60)
        assert isinstance(err, WorkerFailure)
        assert len(doomed.attempts) == 2  # initial + 1 retry, all fatal
        assert all(
            isinstance(a.error, WorkerFailure) for a in doomed.attempts
        )
        # Lift the fault: the same session serves the next job.
        no_plan.setenv(ENV_VAR, "")
        ok = s.submit(TeraSortSpec(data=data))
        validate_sorted_permutation(data, ok.result(timeout=60).partitions)
        assert ok.exception() is None


def test_sigstopped_worker_times_out_as_worker_failure(no_plan):
    """A silent (not dead) worker misses heartbeats past failure_timeout
    and the job fails typed instead of hanging to the job timeout."""
    data = teragen(1500, seed=43)
    cluster = ProcessCluster(
        K, timeout=120, heartbeat_interval=0.1, failure_timeout=1.5
    )
    with Session(cluster) as s:
        # First job forks the pool and proves it healthy.
        validate_sorted_permutation(
            data, s.submit(TeraSortSpec(data=data)).result().partitions
        )
        victim = s._pool._procs[2]
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            t0 = time.monotonic()
            err = s.submit(TeraSortSpec(data=data)).exception(timeout=60)
            elapsed = time.monotonic() - t0
        finally:
            try:
                os.kill(victim.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass  # the pool teardown already SIGKILLed it
        assert isinstance(err, WorkerFailure)
        assert err.rank == 2
        assert "heartbeat" in str(err) or "silent" in str(err)
        assert elapsed < 30.0  # failure_timeout, not the 120s job timeout


def test_speculation_backs_up_straggler_byte_identical(no_plan):
    """5x map straggler: with speculation a finished worker runs the
    backup copy, output matches the speculation-off run byte for byte,
    and meta names the backup and the abandoning straggler."""
    source = TeragenSource(12000, seed=44)

    def sort(speculation: bool):
        with Session(ProcessCluster(
            K, timeout=120, heartbeat_interval=0.05
        )) as s:
            return s.submit(TeraSortSpec(
                input=source,
                speculation=speculation,
                speculation_wait_factor=1.5,
                speculation_min_wait=0.1,
            )).result(timeout=120)

    no_plan.setenv(ENV_VAR, "stage.slow,rank=1,stage=map,factor=5")
    run_on = sort(True)
    run_off = sort(False)
    assert _bytes(run_on) == _bytes(run_off)
    validate_sorted_permutation(source.load(), run_on.partitions)
    spec_meta = run_on.meta["speculation"]
    assert spec_meta["backups"], spec_meta
    assert 1 not in spec_meta["backups"]  # the straggler can't back itself up
    assert run_off.meta.get("speculation") is None


def test_speculation_noop_without_straggler_stays_identical(no_plan):
    """No straggler: speculation never triggers (meta shows no backups)
    and the output still matches the plain path."""
    source = TeragenSource(4000, seed=45)
    with Session(ProcessCluster(K, timeout=60, heartbeat_interval=0.05)) as s:
        run = s.submit(
            TeraSortSpec(input=source, speculation=True)
        ).result(timeout=60)
        plain = s.submit(TeraSortSpec(input=source)).result(timeout=60)
    assert _bytes(run) == _bytes(plain)
    assert run.meta["speculation"] == {"backups": [], "abandoned": []}


def test_speculation_degrades_to_plain_path_on_thread_backend(no_plan):
    """ThreadCluster has no job control channel: speculation is silently
    a no-op and output matches the process backend."""
    source = TeragenSource(3000, seed=46)
    with Session(ThreadCluster(K)) as s:
        run = s.submit(
            TeraSortSpec(input=source, speculation=True)
        ).result(timeout=60)
    with Session(ProcessCluster(K, timeout=60)) as s:
        ref = s.submit(TeraSortSpec(input=source)).result(timeout=60)
    assert _bytes(run) == _bytes(ref)


def test_speculation_spec_validation():
    spec = TeraSortSpec(data=teragen(100, seed=1), speculation=True)
    with pytest.raises(ValueError, match="speculation requires input="):
        spec.validate(2)
    spec = TeraSortSpec(
        input=TeragenSource(100), speculation=True, memory_budget=1 << 20
    )
    with pytest.raises(ValueError, match="in-memory path"):
        spec.validate(2)
    spec = TeraSortSpec(
        input=TeragenSource(100), speculation=True,
        speculation_wait_factor=0.5,
    )
    with pytest.raises(ValueError, match="wait_factor"):
        spec.validate(2)


def test_crashed_workers_spill_dir_reaped_on_next_pool_start(
    no_plan, tmp_path
):
    """SIGKILL-style crash leaks the spill dir (atexit skipped); the
    retry's re-forked workers sweep it at startup."""
    no_plan.setenv("REPRO_SPILL_DIR", str(tmp_path))
    data = teragen(3000, seed=47)
    budget = 12_000  # small enough to force spilling
    no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=reduce,job_lt=1")
    with Session(
        ProcessCluster(K, timeout=120), max_retries=1, retry_backoff=0.05
    ) as s:
        handle = s.submit(TeraSortSpec(data=data, memory_budget=budget))
        run = handle.result(timeout=120)
    validate_sorted_permutation(data, run.partitions)
    assert len(handle.attempts) == 2
    # By reduce-time the crashed attempt had spilled; after the retry's
    # sweep nothing from a dead pid remains.
    leftovers = [
        name for name in os.listdir(tmp_path)
        if name.startswith(SPILL_DIR_PREFIX)
    ]
    assert leftovers == [], leftovers


def test_concurrent_sweeps_race_safely(tmp_path):
    """Many sweepers, one orphan each: the rename-claim protocol gives
    every dir exactly one reaper and no sweeper errors out."""
    base = str(tmp_path)
    for i in range(8):
        os.makedirs(os.path.join(base, f"{SPILL_DIR_PREFIX}-4194305-j{i}-x"))
    results = {}

    def sweep(idx):
        results[idx] = SpillDir.sweep_stale(base)

    threads = [
        threading.Thread(target=sweep, args=(i,)) for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    reaped = [path for removed in results.values() for path in removed]
    assert len(reaped) == len(set(reaped)) == 8  # each orphan reaped once
    assert not [
        n for n in os.listdir(base) if n.startswith(SPILL_DIR_PREFIX)
    ]
