"""Reproduction of the paper's Fig. 1 example — exactly.

K = 3 nodes, Q = 3 functions, N = 6 files.  The paper's counts, in units of
one intermediate value:

* uncoded, r = 1 (Fig. 1(a)): every node needs 4 remote values -> load 12;
* uncoded, r = 2 (Fig. 1(b), no coding): each node needs 2      -> load  6;
* coded,   r = 2 (Fig. 1(b)):   3 XOR multicasts of half+half   -> load  3.

Uses :class:`repro.core.jobs.FixedSizeProbeJob`, whose intermediate values
serialize to a fixed unit size, so measured payload bytes divide exactly
into intermediate-value units.
"""

from __future__ import annotations

import pytest

from repro.core.cmr import run_mapreduce
from repro.core.jobs import PROBE_UNIT as UNIT
from repro.core.jobs import FixedSizeProbeJob
from repro.runtime.inproc import ThreadCluster


def expected_outputs():
    return {
        q: sorted((f, f"f{f}q{q}") for f in range(6)) for q in range(3)
    }


def run(scheme_coded: bool, r: int):
    files = [f"file-{i}" for i in range(6)]
    return run_mapreduce(
        ThreadCluster(3, recv_timeout=30),
        FixedSizeProbeJob(),
        files,
        redundancy=r,
        coded=scheme_coded,
    )


class TestFig1:
    def test_uncoded_r1_load_is_12_units(self):
        res = run(False, 1)
        assert res.outputs == expected_outputs()
        assert res.traffic.load_bytes("shuffle") == 12 * UNIT

    def test_uncoded_r2_load_is_6_units(self):
        res = run(False, 2)
        assert res.outputs == expected_outputs()
        assert res.traffic.load_bytes("shuffle") == 6 * UNIT

    def test_coded_r2_load_is_3_units_plus_headers(self):
        res = run(True, 2)
        assert res.outputs == expected_outputs()
        records = [r for r in res.traffic.records if r.stage == "shuffle"]
        # Exactly 3 multicasts (one per node in the single group {0,1,2}).
        assert len(records) == 3
        header = 4 + 2 + 4 + 4 * 3 + 12 * 2 + 8  # CodedPacket wire header
        payload_units = sum(r.payload_bytes - header for r in records)
        assert payload_units == 3 * UNIT

    def test_coding_gain_is_exactly_two(self):
        uncoded = run(False, 2)
        coded = run(True, 2)
        header = 4 + 2 + 4 + 4 * 3 + 12 * 2 + 8
        coded_payload = sum(
            r.payload_bytes - header
            for r in coded.traffic.records
            if r.stage == "shuffle"
        )
        assert uncoded.traffic.load_bytes("shuffle") == 2 * coded_payload

    def test_every_node_multicasts_once(self):
        res = run(True, 2)
        senders = sorted(
            r.src for r in res.traffic.records if r.stage == "shuffle"
        )
        assert senders == [0, 1, 2]

    def test_multicast_reaches_both_other_nodes(self):
        res = run(True, 2)
        for rec in res.traffic.records:
            if rec.stage == "shuffle":
                assert len(rec.dsts) == 2

    def test_probe_job_serialization_is_fixed_size(self):
        job = FixedSizeProbeJob()
        job.num_functions(3)
        value = [(0, 1, "f0q1"), (5, 2, "f5q2")]
        buf = job.serialize(value)
        assert len(buf) == 2 * UNIT
        assert job.deserialize(buf) == value
