"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.kvpairs.teragen import teragen

# Profiles: 'ci' keeps the suite fast; heavier e2e property tests override
# max_examples locally where the default is too slow.
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture(scope="session")
def small_batch():
    """10k deterministic TeraGen records shared by read-only tests."""
    return teragen(10_000, seed=42)


@pytest.fixture(scope="session")
def tiny_batch():
    """500 records for cheap per-test copies."""
    return teragen(500, seed=7)


@pytest.fixture
def thread_cluster_factory():
    """Factory for thread clusters with a test-friendly recv timeout."""
    from repro.runtime.inproc import ThreadCluster

    def make(size: int, **kwargs):
        kwargs.setdefault("recv_timeout", 60.0)
        return ThreadCluster(size, **kwargs)

    return make
