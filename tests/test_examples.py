"""Smoke tests: every shipped example must run clean end to end.

Each example is executed as a subprocess with arguments scaled down so
the whole module stays fast; the examples' own internal assertions
(validated sorts, load checks) make these more than exit-code checks.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "-K", "4", "-r", "2", "-n", "8000")
    assert "output valid" in out


def test_cmr_wordcount():
    out = run_example("cmr_wordcount.py")
    assert "count" in out.lower() or "word" in out.lower()


def test_reproduce_tables_fast():
    out = run_example("reproduce_tables.py", "--fast")
    assert "TeraSort" in out


def test_straggler_regression():
    out = run_example(
        "straggler_regression.py", "-t", "20", "-n", "8", "-k", "6"
    )
    assert "saved" in out
    assert "identical trajectories" in out


def test_scalable_sort():
    out = run_example(
        "scalable_sort.py", "-K", "6", "-g", "3", "-r", "2", "-n", "6000"
    )
    assert "output valid" in out
    assert "Grouped" in out


def test_wireless_computing():
    out = run_example(
        "wireless_computing.py", "-K", "4", "-r", "2", "-n", "4000"
    )
    assert "d2d" in out
    assert "less" in out


def test_examples_all_covered():
    """Every example script has a smoke test in this module."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {
        "quickstart.py",
        "cmr_wordcount.py",
        "reproduce_tables.py",
        "straggler_regression.py",
        "scalable_sort.py",
        "wireless_computing.py",
    }
    assert scripts == tested, scripts ^ tested
