"""Tests for output validation (TeraValidate equivalent)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import (
    batch_checksum,
    validate_permutation,
    validate_sorted,
    validate_sorted_permutation,
)


class TestChecksum:
    def test_order_independent(self, tiny_batch):
        shuffled = tiny_batch.take(
            np.random.default_rng(0).permutation(len(tiny_batch))
        )
        assert batch_checksum(tiny_batch) == batch_checksum(shuffled)

    def test_detects_corruption(self, tiny_batch):
        corrupted = tiny_batch.copy()
        raw = corrupted.raw_view()
        raw[0, 50] ^= 0xFF
        assert batch_checksum(tiny_batch) != batch_checksum(corrupted)

    def test_empty_is_zero(self):
        assert batch_checksum(RecordBatch.empty()) == 0

    def test_additive_over_splits(self, tiny_batch):
        a = tiny_batch.slice(0, 200)
        b = tiny_batch.slice(200, 500)
        mod = 1 << 128
        assert (batch_checksum(a) + batch_checksum(b)) % mod == batch_checksum(
            tiny_batch
        )


class TestPermutation:
    def test_accepts_true_permutation(self, tiny_batch):
        parts = [tiny_batch.slice(100, 500), tiny_batch.slice(0, 100)]
        validate_permutation(tiny_batch, parts)

    def test_rejects_count_mismatch(self, tiny_batch):
        with pytest.raises(AssertionError, match="count"):
            validate_permutation(tiny_batch, [tiny_batch.slice(0, 499)])

    def test_rejects_content_mismatch(self, tiny_batch):
        other = teragen(500, seed=999)
        with pytest.raises(AssertionError, match="permutation"):
            validate_permutation(tiny_batch, [other])


class TestSorted:
    def test_accepts_sorted_parts(self, tiny_batch):
        s = sort_batch(tiny_batch)
        parts = [s.slice(0, 250), s.slice(250, 500)]
        validate_sorted(parts)

    def test_rejects_locally_unsorted(self, tiny_batch):
        with pytest.raises(AssertionError, match="locally"):
            validate_sorted([tiny_batch])

    def test_rejects_boundary_violation(self, tiny_batch):
        s = sort_batch(tiny_batch)
        # Swap the two halves: each sorted, boundary broken.
        parts = [s.slice(250, 500), s.slice(0, 250)]
        with pytest.raises(AssertionError, match="boundary"):
            validate_sorted(parts)

    def test_empty_parts_skipped(self, tiny_batch):
        s = sort_batch(tiny_batch)
        validate_sorted([RecordBatch.empty(), s, RecordBatch.empty()])

    def test_full_validation(self, tiny_batch):
        s = sort_batch(tiny_batch)
        validate_sorted_permutation(tiny_batch, [s.slice(0, 100), s.slice(100, 500)])
