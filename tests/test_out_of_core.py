"""Out-of-core end-to-end: bounded-memory sorts byte-identical to in-RAM.

The acceptance criteria of the out-of-core data plane:

* a (Coded)TeraSort of a dataset ~8x the memory budget completes with
  output byte-identical to the in-memory path, on both schedules;
* peak per-worker record-buffer residency (the ResidencyMeter readout
  shipped home in ``SortRun.meta``) stays within the budget;
* ``output_dir`` streams partitions to part files (``FileSource``
  results) that validate with the streaming validator;
* per-job spill dirs are removed on success *and* on failure;
* the CMR engine honors ``memory_budget`` (disk-backed store) and
  ``DataSource`` file payloads with unchanged outputs.
"""

from __future__ import annotations

import glob
import os
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np
import pytest

from repro.core.cmr import MapReduceJob
from repro.kvpairs.datasource import FileSource, TeragenSource
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.spill import spill_base_dir
from repro.kvpairs.validation import validate_sorted_iter
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.session import (
    CodedTeraSortSpec,
    MapReduceSpec,
    Session,
    TeraSortSpec,
)

N_RECORDS = 60_000  # 6 MB dataset
BUDGET = 750_000  # dataset = 8x budget


@pytest.fixture(autouse=True)
def _isolated_spill_base(tmp_path, monkeypatch):
    """Own spill base per test: the `_spill_dirs()` before/after checks
    must not race other xdist workers' concurrent spill activity."""
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill-base"))


def _spill_dirs():
    return set(glob.glob(os.path.join(spill_base_dir(), "repro-spill-*")))


def _materialize(part) -> RecordBatch:
    return part.load() if isinstance(part, FileSource) else part


def _assert_identical(ref_run, oc_run):
    assert len(ref_run.partitions) == len(oc_run.partitions)
    for rank, (a, b) in enumerate(
        zip(ref_run.partitions, oc_run.partitions)
    ):
        assert np.array_equal(
            _materialize(a).array, _materialize(b).array
        ), f"rank {rank} output diverged"


@pytest.fixture(scope="module")
def source():
    return TeragenSource(N_RECORDS, seed=42)


@pytest.fixture(scope="module")
def reference(source):
    """In-memory runs to compare against (per algorithm/schedule)."""
    with Session(ThreadCluster(4)) as session:
        return {
            "terasort": session.run(TeraSortSpec(input=source)),
            "serial": session.run(
                CodedTeraSortSpec(input=source, redundancy=2)
            ),
            "parallel": session.run(
                CodedTeraSortSpec(
                    input=source, redundancy=2, schedule="parallel"
                )
            ),
        }


class TestBoundedMemorySorts:
    def test_terasort_8x_budget(self, source, reference, tmp_path):
        before = _spill_dirs()
        with Session(ThreadCluster(4)) as session:
            run = session.run(
                TeraSortSpec(
                    input=source,
                    memory_budget=BUDGET,
                    output_dir=str(tmp_path / "out"),
                )
            )
        _assert_identical(reference["terasort"], run)
        assert all(isinstance(p, FileSource) for p in run.partitions)
        assert run.meta["memory_budget"] == BUDGET
        assert 0 < run.meta["oc_peak_resident_bytes"] <= BUDGET
        assert run.meta["oc_spilled_bytes"] > source.nbytes  # map + recv
        assert _spill_dirs() == before  # per-job dirs removed on success
        n = validate_sorted_iter(
            b for p in run.partitions for b in p.iter_batches()
        )
        assert n == N_RECORDS

    @pytest.mark.parametrize("schedule", ["serial", "parallel"])
    def test_coded_8x_budget_both_schedules(
        self, source, reference, schedule, tmp_path
    ):
        before = _spill_dirs()
        with Session(ThreadCluster(4)) as session:
            run = session.run(
                CodedTeraSortSpec(
                    input=source,
                    redundancy=2,
                    schedule=schedule,
                    memory_budget=BUDGET,
                    output_dir=str(tmp_path / "out"),
                )
            )
        _assert_identical(reference[schedule], run)
        assert 0 < run.meta["oc_peak_resident_bytes"] <= BUDGET
        assert run.meta["oc_spill_runs"] > 0
        assert _spill_dirs() == before

    def test_materialized_output_without_output_dir(self, source, reference):
        # No output_dir: partitions come back resident (and are charged,
        # so the peak may legitimately exceed tiny budgets).
        with Session(ThreadCluster(4)) as session:
            run = session.run(
                TeraSortSpec(input=source, memory_budget=BUDGET * 2)
            )
        assert all(isinstance(p, RecordBatch) for p in run.partitions)
        _assert_identical(reference["terasort"], run)

    def test_process_backend_byte_identity(self, source, reference, tmp_path):
        with Session(ProcessCluster(4, timeout=120.0)) as session:
            run = session.run(
                CodedTeraSortSpec(
                    input=source,
                    redundancy=2,
                    schedule="parallel",
                    memory_budget=BUDGET,
                    output_dir=str(tmp_path / "out"),
                )
            )
        _assert_identical(reference["parallel"], run)
        assert 0 < run.meta["oc_peak_resident_bytes"] <= BUDGET
        # Residency was measured per forked worker, one meter each.
        assert len(run.meta["oc_per_node_peak_resident_bytes"]) == 4

    def test_spill_dirs_removed_on_failure(self, tmp_path):
        # A file source whose path exists on the driver but whose records
        # lie about the range -> workers fail mid-Map, after their spill
        # dir exists.  The dir must still be gone afterwards.
        path = str(tmp_path / "short.bin")
        from repro.kvpairs.teragen import teragen_to_file

        teragen_to_file(path, 1_000, seed=0)
        bad = FileSource(path, 0, 50_000)  # claims 50k records, has 1k
        before = _spill_dirs()
        with Session(ThreadCluster(4)) as session:
            handle = session.submit(
                TeraSortSpec(input=bad, memory_budget=BUDGET)
            )
            assert handle.exception() is not None
        assert _spill_dirs() == before


class TestSpecValidation:
    def test_exactly_one_input(self, source):
        data = TeragenSource(100, seed=0).load()
        with Session(ThreadCluster(2)) as session:
            with pytest.raises(ValueError, match="exactly one"):
                session.submit(TeraSortSpec())
            with pytest.raises(ValueError, match="exactly one"):
                session.submit(TeraSortSpec(data=data, input=source))
            with pytest.raises(ValueError, match="DataSource"):
                session.submit(TeraSortSpec(input=data))
            with pytest.raises(ValueError, match="RecordBatch"):
                session.submit(CodedTeraSortSpec(data=source, redundancy=1))
            with pytest.raises(ValueError, match="memory_budget"):
                session.submit(
                    TeraSortSpec(data=data, memory_budget=100)
                )
            with pytest.raises(ValueError, match="output_dir"):
                session.submit(TeraSortSpec(data=data, output_dir="/tmp/x"))


class _RecordCountJob(MapReduceJob):
    """Counts records per key prefix; payloads are RecordBatches."""

    name = "record-count"

    def map_file(self, file_id: int, payload: Any) -> Mapping[int, Any]:
        assert isinstance(payload, RecordBatch), type(payload)
        prefix = payload.raw_view()[:, 0] % 4
        return {
            int(q): int((prefix == q).sum())
            for q in range(4)
        }

    def reduce(self, q: int, values: Sequence[Tuple[int, Any]]) -> Any:
        return sum(v for _, v in values)


class TestCMROutOfCore:
    @pytest.mark.parametrize("scheme", ["uncoded", "coded"])
    def test_budget_and_datasource_payloads(self, scheme):
        src = TeragenSource(12_000, seed=9)
        files = [src.subrange(i * 2_000, 2_000) for i in range(6)]
        job = _RecordCountJob()
        before = _spill_dirs()
        with Session(ThreadCluster(4)) as session:
            plain = session.run(
                MapReduceSpec(
                    job=job, files=files, redundancy=2, scheme=scheme
                )
            )
            budgeted = session.run(
                MapReduceSpec(
                    job=job,
                    files=files,
                    redundancy=2,
                    scheme=scheme,
                    memory_budget=1,  # force every blob to disk
                )
            )
        assert plain.outputs == budgeted.outputs
        assert sum(budgeted.outputs.values()) == 12_000
        assert _spill_dirs() == before
