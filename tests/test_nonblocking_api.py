"""Tests for the non-blocking Comm API: isend/irecv/ibcast + chunking."""

from __future__ import annotations

import random

import pytest

from repro.runtime.api import CommError, MulticastMode, wait_all
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.program import NodeProgram


def _clusters(size, **kwargs):
    """Both backends with test-friendly timeouts."""
    return [
        ThreadCluster(size, recv_timeout=30, **kwargs),
        ProcessCluster(size, timeout=60, **kwargs),
    ]


class _IPingPong(NodeProgram):
    STAGES = ["play"]

    def run(self):
        with self.stage("play"):
            other = 1 - self.rank
            if self.rank == 0:
                req = self.comm.isend(other, 5, b"ping")
                reply = self.comm.irecv(other, 6)
                req.wait()
                return reply.wait()
            msg = self.comm.irecv(other, 5).wait()
            self.comm.isend(other, 6, b"pong-" + msg).wait()
            return msg


class TestNonblockingUnicast:
    @pytest.mark.parametrize("cluster_idx", [0, 1])
    def test_iping_pong(self, cluster_idx):
        res = _clusters(2)[cluster_idx].run(_IPingPong)
        assert res.results[0] == b"pong-ping"
        assert res.results[1] == b"ping"

    @pytest.mark.parametrize("cluster_idx", [0, 1])
    def test_isend_traffic_matches_blocking_send(self, cluster_idx):
        res = _clusters(2)[cluster_idx].run(_IPingPong)
        assert res.traffic.message_count() == 2
        assert res.traffic.load_bytes() == len(b"ping") + len(b"pong-ping")

    def test_isend_validation_at_post_time(self):
        class Bad(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    try:
                        self.comm.isend(self.rank, 1, b"x")
                        return "no error"
                    except CommError:
                        return "ok"

        res = ThreadCluster(2, recv_timeout=10).run(Bad)
        assert res.results == ["ok", "ok"]


class _ChunkedExchange(NodeProgram):
    """Mixed small/large messages on one tag: order and bytes must hold."""

    STAGES = ["x"]

    PAYLOADS = [
        b"tiny",
        bytes(random.Random(1).randbytes(10_000)),
        b"",
        bytes(random.Random(2).randbytes(4097)),
        b"mid" * 100,
    ]

    def run(self):
        with self.stage("x"):
            other = 1 - self.rank
            if self.rank == 0:
                reqs = [
                    self.comm.isend(other, 9, p) for p in self.PAYLOADS
                ]
                wait_all(reqs)
                return None
            reqs = [self.comm.irecv(other, 9) for _ in self.PAYLOADS]
            return wait_all(reqs)


class TestChunkedTransfers:
    @pytest.mark.parametrize("cluster_idx", [0, 1])
    def test_roundtrip_across_chunk_boundary(self, cluster_idx):
        """chunk_bytes=1024 forces multi-frame transfers for big payloads."""
        cluster = _clusters(2, chunk_bytes=1024)[cluster_idx]
        res = cluster.run(_ChunkedExchange)
        assert res.results[1] == _ChunkedExchange.PAYLOADS

    def test_blocking_send_recv_also_chunked(self):
        payload = random.Random(3).randbytes(50_000)

        class Big(NodeProgram):
            STAGES = ["x"]

            def run(self):
                with self.stage("x"):
                    if self.rank == 0:
                        self.comm.send(1, 2, payload)
                        return None
                    return self.comm.recv(0, 2)

        res = ThreadCluster(2, recv_timeout=10, chunk_bytes=512).run(Big)
        assert res.results[1] == payload

    def test_chunking_invisible_to_traffic(self):
        cluster = ThreadCluster(2, recv_timeout=10, chunk_bytes=128)
        res = cluster.run(_ChunkedExchange)
        assert res.traffic.message_count() == len(_ChunkedExchange.PAYLOADS)
        assert res.traffic.load_bytes() == sum(
            len(p) for p in _ChunkedExchange.PAYLOADS
        )

    def test_invalid_chunk_bytes(self):
        # Comm validation runs in the node threads; the cluster wraps it.
        with pytest.raises(RuntimeError, match="chunk_bytes"):
            ThreadCluster(2, chunk_bytes=0).run(_IPingPong)


class _ProbeProgression(NodeProgram):
    """``test()`` is False before the send and True after it."""

    STAGES = ["probe"]

    def run(self):
        with self.stage("probe"):
            if self.rank == 1:
                req = self.comm.irecv(0, 7)
                before = req.test()
                self.comm.barrier()  # releases node 0's send
                self.comm.barrier()  # node 0 sent before entering this one
                # Data frames precede node 0's barrier token on the same
                # channel, so they are demultiplexed by now.
                after = req.test()
                return before, after, req.wait()
            self.comm.barrier()
            self.comm.send(1, 7, b"payload")
            self.comm.barrier()
            return None


class TestRequestSemantics:
    @pytest.mark.parametrize("cluster_idx", [0, 1])
    def test_test_tracks_arrival(self, cluster_idx):
        res = _clusters(2)[cluster_idx].run(_ProbeProgression)
        before, after, payload = res.results[1]
        assert before is False
        assert after is True
        assert payload == b"payload"

    def test_wait_timeout_bounds_lazy_receive(self):
        """wait(timeout) on a never-sent message raises promptly, not after
        the backend's 60s default."""
        import time

        # Rank 1 idles at the barrier while rank 0 waits out its bound.
        class Program(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    if self.rank == 0:
                        req = self.comm.irecv(1, 3)
                        t0 = time.monotonic()
                        try:
                            req.wait(timeout=0.2)
                            elapsed = None
                        except CommError:
                            elapsed = time.monotonic() - t0
                        self.comm.barrier()
                        return elapsed
                    self.comm.barrier()
                    return None

        res = ThreadCluster(2, recv_timeout=60).run(Program)
        assert res.results[0] is not None
        assert res.results[0] < 5.0  # bounded by the 0.2s argument, not 60s

    def test_test_observes_peer_death(self):
        """A test()-polling receiver must see a dead peer as an error, not
        spin forever (process backend: EOF closes the source)."""
        import time

        class Poller(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    if self.rank == 1:
                        return None  # exits immediately, closing channels
                    req = self.comm.irecv(1, 4)  # never sent
                    deadline = time.monotonic() + 20.0
                    while time.monotonic() < deadline:
                        try:
                            if req.test():
                                return "completed?"
                        except CommError:
                            return "observed death"
                        time.sleep(0.01)
                    return "spun forever"

        res = ProcessCluster(2, timeout=40).run(Poller)
        assert res.results[0] == "observed death"


class _IBcastAllRoots(NodeProgram):
    """Every member roots one ibcast; all posted before any wait."""

    STAGES = ["talk"]

    def __init__(self, comm, group=None):
        super().__init__(comm)
        self.group = group or tuple(range(comm.size))

    def run(self):
        out = {}
        with self.stage("talk"):
            if self.rank not in self.group:
                return out
            reqs = {}
            for root in self.group:
                payload = (
                    f"msg-{root}".encode() if self.rank == root else None
                )
                reqs[root] = self.comm.ibcast(
                    self.group, root, tag=root, payload=payload
                )
            for root, req in reqs.items():
                out[root] = req.wait()
        return out


class TestIBcast:
    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_matches_bcast_contract_inproc(self, mode, size):
        res = ThreadCluster(size, multicast_mode=mode, recv_timeout=30).run(
            _IBcastAllRoots
        )
        expected = {r: f"msg-{r}".encode() for r in range(size)}
        assert all(got == expected for got in res.results)

    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    def test_matches_bcast_contract_process(self, mode):
        res = ProcessCluster(4, multicast_mode=mode, timeout=60).run(
            _IBcastAllRoots
        )
        expected = {r: f"msg-{r}".encode() for r in range(4)}
        assert all(got == expected for got in res.results)

    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    def test_subgroup_ibcast(self, mode):
        group = (0, 2, 3)

        def factory(comm):
            return _IBcastAllRoots(comm, group=group)

        res = ThreadCluster(5, multicast_mode=mode, recv_timeout=30).run(factory)
        expected = {r: f"msg-{r}".encode() for r in group}
        for rank, got in enumerate(res.results):
            assert got == (expected if rank in group else {})

    def test_ibcast_traffic_equals_bcast(self):
        loads = {}
        for mode in (MulticastMode.LINEAR, MulticastMode.TREE):
            res = ThreadCluster(6, multicast_mode=mode, recv_timeout=30).run(
                _IBcastAllRoots
            )
            loads[mode] = res.traffic.load_bytes()
        assert loads[MulticastMode.LINEAR] == loads[MulticastMode.TREE]

    def test_singleton_group(self):
        class Solo(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    return self.comm.ibcast(
                        (self.rank,), self.rank, 1, b"self"
                    ).wait()

        res = ThreadCluster(3, recv_timeout=10).run(Solo)
        assert all(r == b"self" for r in res.results)

    def test_tree_relay_outlives_recv_timeout(self):
        """An interior relay posted long before its packet is due must not
        trip the per-receive timeout (its wait is unbounded)."""
        import time

        class LateBcast(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    group = tuple(range(self.size))
                    if self.rank == 0:
                        time.sleep(1.0)  # > recv_timeout below
                        return self.comm.ibcast(group, 0, 1, b"late").wait()
                    req = self.comm.ibcast(group, 0, 1)  # relay spawns now
                    time.sleep(1.2)  # wait only after the payload landed
                    return req.wait()

        res = ThreadCluster(
            4, multicast_mode=MulticastMode.TREE, recv_timeout=0.3
        ).run(LateBcast)
        assert all(r == b"late" for r in res.results)

    def test_root_without_payload_raises_at_post(self):
        class Bad(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    if self.rank == 0:
                        try:
                            self.comm.ibcast((0, 1), 0, 1, None)
                            return "no error"
                        except CommError:
                            return "ok"
                    # Peer must not wait for a broadcast that never starts.
                    return "ok"

        res = ThreadCluster(2, recv_timeout=10).run(Bad)
        assert res.results == ["ok", "ok"]
