"""Tests for the closed-form loads and run-time model (Eqs. (2)-(5))."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.theory import (
    TimeModel,
    coded_comm_load,
    coded_multicast_count,
    coded_packet_bytes,
    coded_shuffle_bytes,
    load_series,
    optimal_r,
    optimal_total_time,
    predicted_speedup,
    predicted_total_time,
    uncoded_comm_load,
    uncoded_shuffle_bytes,
    uncoded_shuffle_messages,
)


class TestLoads:
    def test_eq2_values(self):
        # Fig. 1 example: K = 3, r = 2.
        assert uncoded_comm_load(1, 3) == pytest.approx(2 / 3)
        assert uncoded_comm_load(2, 3) == pytest.approx(1 / 3)
        assert coded_comm_load(2, 3) == pytest.approx(1 / 6)

    def test_coded_is_uncoded_over_r(self):
        for k in (4, 10, 16):
            for r in range(1, k + 1):
                assert coded_comm_load(r, k) == pytest.approx(
                    uncoded_comm_load(r, k) / r
                )

    def test_r_equals_k_no_communication(self):
        assert uncoded_comm_load(16, 16) == 0.0
        assert coded_comm_load(16, 16) == 0.0

    def test_load_series_shape(self):
        series = load_series(10)
        assert len(series) == 10
        rs = [r for r, _, _ in series]
        assert rs == list(range(1, 11))
        # Both loads decrease in r.
        unc = [u for _, u, _ in series]
        cod = [c for _, _, c in series]
        assert unc == sorted(unc, reverse=True)
        assert cod == sorted(cod, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uncoded_comm_load(0, 4)
        with pytest.raises(ValueError):
            coded_comm_load(5, 4)

    @given(st.integers(2, 30), st.data())
    def test_coded_gain_is_exactly_r(self, k, data):
        r = data.draw(st.integers(1, k))
        u = uncoded_comm_load(r, k)
        c = coded_comm_load(r, k)
        if u > 0:
            assert u / c == pytest.approx(r)


class TestTimeModel:
    MODEL = TimeModel(t_map=1.86, t_shuffle=945.72, t_reduce=10.47)

    def test_eq3_total(self):
        assert self.MODEL.total_uncoded == pytest.approx(958.05)

    def test_eq4_prediction(self):
        t = predicted_total_time(self.MODEL, 3, 16)
        assert t == pytest.approx(3 * 1.86 + 945.72 / 3 + 10.47)

    def test_paper_r_star_23_unclamped(self):
        """§III-B: r* = ceil(sqrt(945.72 / 1.86)) = 23 before clamping."""
        cont = math.sqrt(self.MODEL.t_shuffle / self.MODEL.t_map)
        assert math.ceil(cont) == 23

    def test_r_star_clamped_to_k(self):
        assert optimal_r(self.MODEL, 16) == 16

    def test_r_star_interior(self):
        model = TimeModel(t_map=10.0, t_shuffle=90.0, t_reduce=1.0)
        # sqrt(9) = 3 exactly.
        assert optimal_r(model, 16) == 3

    def test_r_star_picks_better_neighbor(self):
        model = TimeModel(t_map=10.0, t_shuffle=125.0, t_reduce=0.0)
        # cont = sqrt(12.5) ~ 3.54; T(3) = 71.67, T(4) = 71.25 -> 4.
        assert optimal_r(model, 16) == 4

    def test_eq5_bound_below_any_integer_r(self):
        bound = optimal_total_time(self.MODEL)
        for r in range(1, 17):
            assert predicted_total_time(self.MODEL, r, 16) >= bound - 1e-9

    def test_speedup_at_r1_is_near_one(self):
        s = predicted_speedup(self.MODEL, 1, 16)
        assert s == pytest.approx(1.0)

    def test_zero_map_time_returns_k(self):
        model = TimeModel(t_map=0.0, t_shuffle=10.0, t_reduce=0.0)
        assert optimal_r(model, 8) == 8


class TestExactCounts:
    def test_uncoded_messages(self):
        assert uncoded_shuffle_messages(16) == 240
        assert uncoded_shuffle_messages(20) == 380

    def test_uncoded_bytes(self):
        assert uncoded_shuffle_bytes(12e9, 16) == pytest.approx(11.25e9)

    def test_multicast_counts_match_paper_scale(self):
        assert coded_multicast_count(3, 16) == 1820 * 4
        assert coded_multicast_count(5, 20) == 38760 * 6

    def test_packet_bytes(self):
        # K=16, r=3: D/(N K r) with N = 560.
        assert coded_packet_bytes(12e9, 3, 16) == pytest.approx(
            12e9 / (560 * 16 * 3)
        )

    def test_shuffle_bytes_equals_load_times_data(self):
        for k, r in ((16, 3), (16, 5), (20, 3), (20, 5), (8, 2)):
            assert coded_shuffle_bytes(12e9, r, k) == pytest.approx(
                coded_comm_load(r, k) * 12e9
            )
