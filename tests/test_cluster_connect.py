"""The unified cluster factory: ``repro.connect`` URL routing.

One address scheme per backend, every other knob passed through to the
constructor unchanged, and typed errors for every way the URL can be
wrong — so the CLI, the benchmarks, and user code share one entry point
while the old constructors remain importable aliases.
"""

from __future__ import annotations

import pytest

import repro
from repro.cluster import connect
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster


class TestLocalSchemes:
    def test_inproc_builds_a_thread_cluster(self):
        cluster = connect("inproc://4")
        assert isinstance(cluster, ThreadCluster)
        assert cluster.size == 4

    def test_thread_is_an_alias_for_inproc(self):
        assert isinstance(connect("thread://2"), ThreadCluster)

    def test_proc_builds_a_process_cluster(self):
        cluster = connect("proc://3")
        assert isinstance(cluster, ProcessCluster)
        assert cluster.size == 3

    def test_process_is_an_alias_for_proc(self):
        assert isinstance(connect("process://2"), ProcessCluster)

    def test_options_pass_through_to_the_constructor(self):
        cluster = connect("proc://2", rate_bytes_per_s=12.5e6, timeout=7.0)
        assert cluster.rate_bytes_per_s == 12.5e6
        assert cluster.timeout == 7.0

    def test_redundant_size_kwarg_must_agree(self):
        assert connect("inproc://4", size=4).size == 4
        with pytest.raises(ValueError, match="conflicting worker counts"):
            connect("inproc://4", size=5)


class TestTcpScheme:
    def test_tcp_builds_a_cluster_on_the_given_address(self):
        with connect("tcp://127.0.0.1:0", size=3) as cluster:
            assert isinstance(cluster, TcpCluster)
            assert cluster.size == 3
            # Port 0 resolved at bind: the address is dialable now.
            assert not cluster.address.endswith(":0")

    def test_tcp_without_size_is_a_typed_error(self):
        with pytest.raises(ValueError, match="needs size="):
            connect("tcp://127.0.0.1:4000")


class TestBadAddresses:
    def test_unknown_scheme_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="inproc"):
            connect("carrier-pigeon://4")

    def test_missing_scheme_separator(self):
        with pytest.raises(ValueError, match="cluster address"):
            connect("inproc:4")

    def test_non_integer_worker_count(self):
        with pytest.raises(ValueError, match="worker count"):
            connect("proc://many")


def test_connect_is_exported_from_the_package_root():
    assert repro.connect is connect
