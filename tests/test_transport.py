"""Tests for socket framing."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.runtime.ratelimit import TokenBucket
from repro.runtime.transport import (
    TransportError,
    recv_exact,
    recv_frame,
    send_frame,
)


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, sock_pair):
        a, b = sock_pair
        send_frame(a, 42, b"hello world")
        tag, payload = recv_frame(b)
        assert tag == 42 and payload == b"hello world"

    def test_empty_payload(self, sock_pair):
        a, b = sock_pair
        send_frame(a, 7, b"")
        assert recv_frame(b) == (7, b"")

    def test_multiple_frames_in_order(self, sock_pair):
        a, b = sock_pair
        for i in range(5):
            send_frame(a, i, bytes([i]) * 10)
        for i in range(5):
            tag, payload = recv_frame(b)
            assert tag == i and payload == bytes([i]) * 10

    def test_large_payload_threaded(self, sock_pair):
        """Payload larger than socket buffers needs a concurrent reader."""
        a, b = sock_pair
        payload = bytes(range(256)) * 4096  # 1 MiB
        result = {}

        def reader():
            result["frame"] = recv_frame(b)

        t = threading.Thread(target=reader)
        t.start()
        send_frame(a, 9, payload)
        t.join(timeout=10)
        assert result["frame"] == (9, payload)

    def test_eof_mid_header(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x01\x02")
        a.close()
        with pytest.raises(TransportError, match="closed"):
            recv_frame(b)

    def test_eof_mid_payload(self, sock_pair):
        a, b = sock_pair
        import struct

        a.sendall(struct.pack("<QQ", 1, 100) + b"short")
        a.close()
        with pytest.raises(TransportError, match="closed"):
            recv_frame(b)

    def test_recv_exact_zero(self, sock_pair):
        _, b = sock_pair
        assert recv_exact(b, 0) == b""


class TestPacedSend:
    def test_paced_send_delivers_and_takes_time(self, sock_pair):
        import time

        a, b = sock_pair
        payload = b"x" * 200_000
        pacer = TokenBucket(1e6, burst_bytes=50_000)  # 1 MB/s
        result = {}

        def reader():
            result["frame"] = recv_frame(b)

        t = threading.Thread(target=reader)
        t.start()
        start = time.monotonic()
        send_frame(a, 3, payload, pacer=pacer)
        elapsed = time.monotonic() - start
        t.join(timeout=10)
        assert result["frame"] == (3, payload)
        # 200 KB at 1 MB/s with a 50 KB burst: at least ~0.1 s of pacing.
        assert elapsed > 0.1
