"""Graceful worker drain: SIGTERM finishes the in-flight job first.

The service deployment mode rolls workers by sending SIGTERM; a
mid-shuffle kill would cascade ``WorkerFailure`` across the whole subset
and force a retry, so ``repro worker`` instead *drains*: the first
SIGTERM lets an in-flight job finish and report before the agent exits
(exit code 0, not 143), and an idle worker exits promptly.  Verified
against real ``run_worker`` processes with a ``$REPRO_FAULT_PLAN``
map-stage delay holding the job open across the signal.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.tcp import TcpCluster, run_worker
from repro.session import Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

_CTX = multiprocessing.get_context("fork")
K = 2


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def _spawn_workers(address, n):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address, quiet=True,
                connect_timeout=60.0, handshake_timeout=60.0,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _reap(procs, timeout=15.0):
    for p in procs:
        p.join(timeout)
        if p.is_alive():  # pragma: no cover - defensive cleanup
            p.terminate()
            p.join()


def test_sigterm_mid_job_finishes_then_exits(no_plan):
    """SIGTERM lands while both workers sit in a delayed map stage: the
    job must still complete (byte-correct), and both workers must exit
    cleanly with code 0 ("drained"), not die with 143."""
    no_plan.setenv(ENV_VAR, "stage.delay,stage=map,secs=1.5,job_lt=1")
    data = teragen(1500, seed=81)
    with TcpCluster(
        K, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, K)
        try:
            with Session(cluster) as session:
                handle = session.submit(TeraSortSpec(data=data))
                # Give dispatch time to reach the workers' delayed map
                # stage, then signal both mid-job.
                time.sleep(0.6)
                for p in procs:
                    os.kill(p.pid, signal.SIGTERM)
                run = handle.result(timeout=60)
            validate_sorted_permutation(data, run.partitions)
            _reap(procs)
            assert [p.exitcode for p in procs] == [0, 0]
        finally:
            _reap(procs)


def test_sigterm_idle_worker_exits_promptly(no_plan):
    """An idle worker (no in-flight job) drains immediately on SIGTERM."""
    data = teragen(800, seed=82)
    with TcpCluster(
        K, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, K)
        try:
            # Run one job to completion so both workers are provably
            # connected and back to their idle control loop.
            with Session(cluster) as session:
                run = session.submit(TeraSortSpec(data=data)).result(
                    timeout=60
                )
                validate_sorted_permutation(data, run.partitions)
                start = time.monotonic()
                for p in procs:
                    os.kill(p.pid, signal.SIGTERM)
                _reap(procs)
                elapsed = time.monotonic() - start
            assert [p.exitcode for p in procs] == [0, 0]
            assert elapsed < 10.0, f"idle drain took {elapsed:.1f}s"
        finally:
            _reap(procs)


def test_second_sigterm_kills_immediately(no_plan):
    """Escalation: a second SIGTERM during a drain exits now (143)."""
    no_plan.setenv(ENV_VAR, "stage.delay,stage=map,secs=8,job_lt=1")
    data = teragen(800, seed=83)
    with TcpCluster(
        K, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, K)
        try:
            with Session(cluster, max_retries=0) as session:
                handle = session.submit(TeraSortSpec(data=data))
                time.sleep(0.6)
                victim = procs[0]
                os.kill(victim.pid, signal.SIGTERM)  # drain (job held open)
                time.sleep(0.3)
                os.kill(victim.pid, signal.SIGTERM)  # serious: exit now
                victim.join(10)
                assert victim.exitcode is not None
                assert victim.exitcode != 0
                # The killed worker fails the job; the session survives.
                assert handle.exception(timeout=60) is not None
        finally:
            _reap(procs, timeout=5.0)
