"""End-to-end CodedTeraSort tests: correctness, equivalence, and loads."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coded_terasort import run_coded_terasort
from repro.core.terasort import run_terasort
from repro.core.theory import coded_shuffle_bytes
from repro.kvpairs.teragen import teragen, teragen_skewed
from repro.kvpairs.validation import validate_sorted_permutation


class TestCodedCorrectness:
    @pytest.mark.parametrize(
        "k,r",
        [(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 4), (6, 3), (8, 2)],
    )
    def test_sorts_across_k_r_grid(self, k, r, thread_cluster_factory):
        data = teragen(3000 + 97 * k + r, seed=k * 10 + r)
        run = run_coded_terasort(thread_cluster_factory(k), data, redundancy=r)
        validate_sorted_permutation(data, run.partitions)

    def test_output_identical_to_terasort(self, thread_cluster_factory):
        """Both algorithms must produce the exact same partitions."""
        data = teragen(5000, seed=1)
        plain = run_terasort(thread_cluster_factory(5), data)
        coded = run_coded_terasort(thread_cluster_factory(5), data, redundancy=2)
        assert len(plain.partitions) == len(coded.partitions)
        for p, c in zip(plain.partitions, coded.partitions):
            assert p == c

    def test_batched_placement(self, thread_cluster_factory):
        data = teragen(4000, seed=2)
        run = run_coded_terasort(
            thread_cluster_factory(4), data, redundancy=2, batches_per_subset=3
        )
        validate_sorted_permutation(data, run.partitions)
        assert run.meta["num_files"] == 18  # 3 * C(4,2)

    def test_empty_input(self, thread_cluster_factory):
        run = run_coded_terasort(
            thread_cluster_factory(4), teragen(0), redundancy=2
        )
        assert run.total_records == 0

    def test_tiny_input_many_files(self, thread_cluster_factory):
        """More files than records: most files empty, still correct."""
        data = teragen(5, seed=3)
        run = run_coded_terasort(thread_cluster_factory(5), data, redundancy=3)
        validate_sorted_permutation(data, run.partitions)

    def test_skewed_keys(self, thread_cluster_factory):
        data = teragen_skewed(6000, seed=4, zipf_a=1.4)
        run = run_coded_terasort(
            thread_cluster_factory(4), data, redundancy=2,
            sampled_partitioner=True,
        )
        validate_sorted_permutation(data, run.partitions)

    def test_invalid_redundancy(self, thread_cluster_factory):
        with pytest.raises(ValueError):
            run_coded_terasort(
                thread_cluster_factory(4), teragen(100), redundancy=4
            )

    # The factory fixture builds a fresh cluster per call, so reusing it
    # across generated examples is safe.
    @settings(
        max_examples=8,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        k=st.integers(2, 6),
        seed=st.integers(0, 100),
        n=st.integers(0, 2000),
        data_obj=st.data(),
    )
    def test_sort_property(self, k, seed, n, data_obj, thread_cluster_factory):
        r = data_obj.draw(st.integers(1, k - 1))
        data = teragen(n, seed=seed)
        run = run_coded_terasort(thread_cluster_factory(k), data, redundancy=r)
        validate_sorted_permutation(data, run.partitions)


class TestCodedAccounting:
    def test_multicast_count_matches_plan(self, thread_cluster_factory):
        k, r = 5, 2
        data = teragen(3000, seed=5)
        run = run_coded_terasort(thread_cluster_factory(k), data, redundancy=r)
        assert (
            run.traffic.message_count("shuffle") == run.meta["total_multicasts"]
        )

    def test_shuffle_load_near_theory(self, thread_cluster_factory):
        """Measured multicast payload converges to Eq. (2)'s load."""
        k, r = 6, 2
        n = 30000
        data = teragen(n, seed=6)
        run = run_coded_terasort(thread_cluster_factory(k), data, redundancy=r)
        payload = run.traffic.load_bytes("shuffle")
        ideal = coded_shuffle_bytes(n * 100, r, k)
        # Headers + size imbalance put measured a few % above the ideal.
        assert payload >= ideal
        assert (payload - ideal) / ideal < 0.10

    def test_coded_beats_uncoded_load(self, thread_cluster_factory):
        """The headline claim at the traffic level: load cut by ~r."""
        k, r = 6, 3
        n = 30000
        data = teragen(n, seed=7)
        uncoded = run_terasort(thread_cluster_factory(k), data)
        coded = run_coded_terasort(thread_cluster_factory(k), data, redundancy=r)
        u = uncoded.traffic.load_bytes("shuffle")
        c = coded.traffic.load_bytes("shuffle")
        # Theoretical ratio is 2r/... precisely r vs (1-1/k)/((1/r)(1-r/k)).
        expected_ratio = (1 - 1 / k) / ((1 / r) * (1 - r / k))
        assert u / c == pytest.approx(expected_ratio, rel=0.10)

    def test_meta_plan_statistics(self, thread_cluster_factory):
        from repro.utils.subsets import binomial

        k, r = 5, 2
        run = run_coded_terasort(
            thread_cluster_factory(k), teragen(500, seed=8), redundancy=r
        )
        assert run.meta["num_groups"] == binomial(k, r + 1)
        assert run.meta["files_per_node"] == binomial(k - 1, r - 1)

    def test_stage_breakdown_has_six_stages(self, thread_cluster_factory):
        run = run_coded_terasort(
            thread_cluster_factory(4), teragen(500, seed=9), redundancy=2
        )
        assert run.stage_times.stages == [
            "codegen", "map", "encode", "shuffle", "decode", "reduce",
        ]
