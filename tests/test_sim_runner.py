"""Tests for the full simulator runs: closed-form checks and paper targets."""

from __future__ import annotations

import pytest

from repro.core.theory import (
    coded_multicast_count,
    coded_shuffle_bytes,
    uncoded_shuffle_bytes,
    uncoded_shuffle_messages,
)
from repro.sim.costmodel import EC2CostModel
from repro.sim.runner import simulate_coded_terasort, simulate_terasort

SMALL = 1_000_000  # records; keeps per-test sims fast


class TestTeraSortSim:
    def test_stage_order(self):
        rep = simulate_terasort(8, n_records=SMALL)
        assert rep.stage_times.stages == ["map", "pack", "shuffle", "unpack", "reduce"]

    def test_shuffle_matches_closed_form(self):
        """The DES result equals the analytic serial-shuffle sum exactly."""
        k = 8
        cost = EC2CostModel.paper_calibrated()
        rep = simulate_terasort(k, n_records=SMALL, cost=cost)
        per = cost.unicast_time(SMALL * 100 / k**2)
        expected = uncoded_shuffle_messages(k) * per
        assert rep.stage_times["shuffle"] == pytest.approx(expected, rel=1e-9)

    def test_payload_telemetry(self):
        k = 8
        rep = simulate_terasort(k, n_records=SMALL)
        assert rep.shuffle_payload_bytes == pytest.approx(
            uncoded_shuffle_bytes(SMALL * 100, k)
        )

    def test_transfer_count(self):
        k = 6
        rep = simulate_terasort(k, n_records=SMALL)
        assert rep.transfers == uncoded_shuffle_messages(k)

    def test_granularities_agree(self):
        fine = simulate_terasort(8, n_records=SMALL, granularity="transfer")
        coarse = simulate_terasort(8, n_records=SMALL, granularity="turn")
        assert fine.total_time == pytest.approx(coarse.total_time, rel=1e-9)
        assert fine.shuffle_payload_bytes == pytest.approx(
            coarse.shuffle_payload_bytes
        )

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            simulate_terasort(4, n_records=SMALL, granularity="weird")


class TestCodedSim:
    def test_stage_order(self):
        rep = simulate_coded_terasort(8, 3, n_records=SMALL)
        assert rep.stage_times.stages == [
            "codegen", "map", "encode", "shuffle", "decode", "reduce",
        ]

    def test_shuffle_matches_closed_form(self):
        k, r = 8, 3
        cost = EC2CostModel.paper_calibrated()
        rep = simulate_coded_terasort(k, r, n_records=SMALL, cost=cost)
        from repro.sim.workload import CodedWorkload

        w = CodedWorkload(num_nodes=k, redundancy=r, n_records=SMALL)
        expected = w.total_multicasts * cost.multicast_time(w.packet_bytes, r)
        assert rep.stage_times["shuffle"] == pytest.approx(expected, rel=1e-9)

    def test_payload_matches_eq2(self):
        k, r = 8, 3
        rep = simulate_coded_terasort(k, r, n_records=SMALL)
        assert rep.shuffle_payload_bytes == pytest.approx(
            coded_shuffle_bytes(SMALL * 100, r, k)
        )

    def test_transfer_count(self):
        k, r = 7, 2
        rep = simulate_coded_terasort(k, r, n_records=SMALL)
        assert rep.transfers == coded_multicast_count(r, k)

    def test_granularities_agree(self):
        fine = simulate_coded_terasort(8, 3, n_records=SMALL)
        coarse = simulate_coded_terasort(8, 3, n_records=SMALL, granularity="turn")
        assert fine.total_time == pytest.approx(coarse.total_time, rel=1e-9)

    def test_parallel_shuffle_faster(self):
        serial = simulate_coded_terasort(8, 2, n_records=SMALL, serial=True)
        parallel = simulate_coded_terasort(8, 2, n_records=SMALL, serial=False)
        assert (
            parallel.stage_times["shuffle"] < serial.stage_times["shuffle"]
        )


class TestPaperTargets:
    """The headline reproduction: stage cells within 10%, speedups in band."""

    @pytest.fixture(scope="class")
    def k16(self):
        ts = simulate_terasort(16, granularity="turn")
        r3 = simulate_coded_terasort(16, 3, granularity="turn")
        r5 = simulate_coded_terasort(16, 5, granularity="turn")
        return ts, r3, r5

    def test_table1_cells(self, k16):
        ts, _, _ = k16
        paper = {"map": 1.86, "pack": 2.35, "shuffle": 945.72,
                 "unpack": 0.85, "reduce": 10.47}
        for stage, val in paper.items():
            assert ts.stage_times[stage] == pytest.approx(val, rel=0.10), stage
        assert ts.total_time == pytest.approx(961.25, rel=0.02)

    def test_table2_speedups_in_band(self, k16):
        ts, r3, r5 = k16
        s3 = ts.total_time / r3.total_time
        s5 = ts.total_time / r5.total_time
        assert s3 == pytest.approx(2.16, abs=0.25)
        assert s5 == pytest.approx(3.39, abs=0.45)
        assert s5 > s3  # r=5 wins at K=16, as in the paper

    def test_table2_shuffle_gain_below_r(self, k16):
        """§V-C: measured shuffle gain is slightly below r."""
        ts, r3, r5 = k16
        gain3 = ts.stage_times["shuffle"] / r3.stage_times["shuffle"]
        gain5 = ts.stage_times["shuffle"] / r5.stage_times["shuffle"]
        assert 1.8 < gain3 < 3.0
        assert 3.0 < gain5 < 5.0

    def test_table3_k20(self):
        ts = simulate_terasort(20, granularity="turn")
        r5 = simulate_coded_terasort(20, 5, granularity="turn")
        assert ts.total_time == pytest.approx(972.45, rel=0.02)
        assert ts.total_time / r5.total_time == pytest.approx(2.20, abs=0.25)

    def test_codegen_grows_with_groups(self):
        r3 = simulate_coded_terasort(20, 3, n_records=SMALL, granularity="turn")
        r5 = simulate_coded_terasort(20, 5, n_records=SMALL, granularity="turn")
        # C(20,6)/C(20,4) = 8x more groups -> ~8x more CodeGen time.
        ratio = r5.stage_times["codegen"] / r3.stage_times["codegen"]
        assert 5.0 < ratio < 9.0

    def test_map_ratio_matches_paper(self):
        """Paper: coded Map is ~3.2x (r=3) and ~5.8x (r=5) the uncoded."""
        ts = simulate_terasort(16, n_records=SMALL, granularity="turn")
        r3 = simulate_coded_terasort(16, 3, n_records=SMALL, granularity="turn")
        r5 = simulate_coded_terasort(16, 5, n_records=SMALL, granularity="turn")
        assert r3.stage_times["map"] / ts.stage_times["map"] == pytest.approx(
            3.2, abs=0.3
        )
        assert r5.stage_times["map"] / ts.stage_times["map"] == pytest.approx(
            5.8, abs=0.4
        )
