"""Binomial-tree broadcast edge cases and per-link relay accounting.

Covers the satellite requirements: group sizes 1-8 with every member as
root (payload equality, exactly one physical receive per non-root), and
byte-for-byte comparison of TREE vs LINEAR multicast via ``"relay"``
traffic records.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.api import MulticastMode
from repro.runtime.inproc import ThreadCluster
from repro.runtime.program import NodeProgram
from repro.runtime.traffic import TrafficLog


class _OneBcast(NodeProgram):
    """A single broadcast from ``root`` within ``group``."""

    STAGES = ["talk"]

    def __init__(self, comm, group, root, payload):
        super().__init__(comm)
        self.group = group
        self.root = root
        self.payload = payload

    def run(self):
        with self.stage("talk"):
            if self.rank not in self.group:
                return None
            payload = self.payload if self.rank == self.root else None
            return self.comm.bcast(self.group, self.root, 3, payload)


def _run_one_bcast(size, group, root, payload, mode):
    def factory(comm):
        return _OneBcast(comm, group, root, payload)

    cluster = ThreadCluster(
        size, multicast_mode=mode, recv_timeout=20, record_relays=True
    )
    return cluster.run(factory)


class TestTreeBcastEdgeCases:
    @pytest.mark.parametrize("size", list(range(1, 9)))
    def test_every_root_every_size(self, size):
        """Sizes 1-8, each member as root: payload equality + one receive
        per non-root (counted from the physical relay records)."""
        group = tuple(range(size))
        for root in group:
            payload = f"tree-{size}-{root}".encode()
            res = _run_one_bcast(
                size, group, root, payload, MulticastMode.TREE
            )
            assert all(r == payload for r in res.results)
            # Exactly one physical delivery per non-root member.
            receives = {}
            for rec in res.traffic.relay_records():
                assert rec.kind == "relay"
                assert len(rec.dsts) == 1
                dst = rec.dsts[0]
                receives[dst] = receives.get(dst, 0) + 1
            expected = {m: 1 for m in group if m != root}
            assert receives == expected

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_subgroups(self, data):
        """Random subgroups of a 9-node cluster, every member as root."""
        size = 9
        members = data.draw(
            st.sets(st.integers(0, size - 1), min_size=1, max_size=8)
        )
        group = tuple(sorted(members))
        root = data.draw(st.sampled_from(group))
        payload = bytes(data.draw(st.binary(min_size=0, max_size=64)))
        res = _run_one_bcast(size, group, root, payload, MulticastMode.TREE)
        for rank, got in enumerate(res.results):
            assert got == (payload if rank in group else None)
        relays = res.traffic.relay_records()
        # One hop per non-root, all hops inside the group, all reached.
        assert len(relays) == len(group) - 1
        for rec in relays:
            assert rec.src in group and rec.dsts[0] in group
        reached = {root} | {r.dsts[0] for r in relays}
        assert reached == set(group)


class TestRelayAccounting:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_tree_and_linear_match_byte_for_byte(self, size):
        """Same total physical bytes; same logical record; different links."""
        group = tuple(range(size))
        payload = b"z" * 997
        logs = {}
        for mode in (MulticastMode.LINEAR, MulticastMode.TREE):
            res = _run_one_bcast(size, group, 0, payload, mode)
            logs[mode] = res.traffic
        lin, tree = logs[MulticastMode.LINEAR], logs[MulticastMode.TREE]
        # Logical accounting identical (one multicast, counted once).
        assert lin.load_bytes() == tree.load_bytes() == len(payload)
        assert lin.wire_bytes() == tree.wire_bytes() == len(payload) * (size - 1)
        # Physical totals identical: every non-root receives exactly once.
        assert lin.relay_bytes() == tree.relay_bytes() == lin.wire_bytes()
        # Per-link distributions differ once the tree has interior nodes.
        lin_links = lin.link_bytes()
        tree_links = tree.link_bytes()
        assert sum(lin_links.values()) == sum(tree_links.values())
        assert all(src == 0 for src, _dst in lin_links)
        # A binomial tree over g <= 3 members is root-sends-to-all; interior
        # forwarding nodes appear from g = 4 on.
        if size > 3:
            assert any(src != 0 for src, _dst in tree_links)

    def test_relays_excluded_from_logical_summaries(self):
        log = TrafficLog()
        log.record("shuffle", "multicast", 0, (1, 2, 3), 100)
        log.record("shuffle", "relay", 0, (1,), 100)
        log.record("shuffle", "relay", 1, (2,), 100)
        log.record("shuffle", "relay", 1, (3,), 100)
        assert log.load_bytes() == 100
        assert log.wire_bytes() == 300
        assert log.message_count() == 1
        assert log.by_stage() == {"shuffle": 100}
        assert log.by_sender() == {0: 100}
        assert log.relay_bytes() == 300
        assert log.link_bytes() == {(0, 1): 100, (1, 2): 100, (1, 3): 100}

    def test_relay_recording_off_by_default(self):
        group = (0, 1, 2, 3)
        cluster = ThreadCluster(
            4, multicast_mode=MulticastMode.TREE, recv_timeout=20
        )
        res = cluster.run(lambda comm: _OneBcast(comm, group, 0, b"quiet"))
        assert res.traffic.relay_records() == []
        assert res.traffic.message_count() == 1
