"""Unit + property tests for the combinatorics substrate."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.subsets import (
    binomial,
    complement,
    k_subsets,
    subset_rank,
    subset_unrank,
    subsets_containing,
    without,
)


class TestBinomial:
    def test_small_values(self):
        assert binomial(4, 2) == 6
        assert binomial(16, 4) == 1820
        assert binomial(20, 6) == 38760

    def test_edges(self):
        assert binomial(5, 0) == 1
        assert binomial(5, 5) == 1
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0
        assert binomial(-1, 0) == 0

    @given(st.integers(0, 25), st.integers(0, 25))
    def test_pascal_identity(self, n, k):
        if n >= 1:
            assert binomial(n, k) == binomial(n - 1, k) + binomial(n - 1, k - 1)


class TestEnumeration:
    def test_lexicographic_order(self):
        subs = list(k_subsets(5, 3))
        assert subs == sorted(subs)
        assert len(subs) == binomial(5, 3)

    def test_matches_itertools(self):
        assert list(k_subsets(7, 4)) == list(itertools.combinations(range(7), 4))

    def test_empty_cases(self):
        assert list(k_subsets(3, 0)) == [()]
        assert list(k_subsets(3, 4)) == []
        assert list(k_subsets(0, 0)) == [()]

    def test_subsets_containing_count(self):
        subs = list(subsets_containing(6, 3, 2))
        assert len(subs) == binomial(5, 2)
        assert all(2 in s for s in subs)
        assert all(len(s) == 3 for s in subs)
        assert subs == sorted(subs)

    def test_subsets_containing_bad_element(self):
        with pytest.raises(ValueError):
            list(subsets_containing(4, 2, 4))


class TestRanking:
    @given(st.integers(1, 12), st.data())
    def test_rank_unrank_roundtrip(self, n, data):
        k = data.draw(st.integers(0, n))
        total = binomial(n, k)
        rank = data.draw(st.integers(0, total - 1))
        subset = subset_unrank(rank, n, k)
        assert subset_rank(subset, n) == rank

    def test_rank_is_enumeration_index(self):
        for i, s in enumerate(k_subsets(8, 3)):
            assert subset_rank(s, 8) == i
            assert subset_unrank(i, 8, 3) == s

    def test_rank_rejects_unsorted(self):
        with pytest.raises(ValueError):
            subset_rank((2, 1), 4)
        with pytest.raises(ValueError):
            subset_rank((1, 1), 4)

    def test_rank_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            subset_rank((0, 5), 5)
        with pytest.raises(ValueError):
            subset_rank((-1, 2), 5)

    def test_unrank_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            subset_unrank(binomial(6, 2), 6, 2)
        with pytest.raises(ValueError):
            subset_unrank(-1, 6, 2)


class TestSetOps:
    def test_complement(self):
        assert complement((1, 3), 5) == (0, 2, 4)
        assert complement((), 3) == (0, 1, 2)
        assert complement((0, 1, 2), 3) == ()

    def test_without(self):
        assert without((1, 3, 5), 3) == (1, 5)

    def test_without_missing_raises(self):
        with pytest.raises(ValueError):
            without((1, 3), 2)

    @given(st.integers(1, 10), st.data())
    def test_complement_partitions(self, n, data):
        k = data.draw(st.integers(0, n))
        idx = data.draw(st.integers(0, binomial(n, k) - 1))
        s = subset_unrank(idx, n, k)
        c = complement(s, n)
        assert sorted(s + c) == list(range(n))
