"""Tests for the stage stopwatch and breakdown merging."""

from __future__ import annotations

import pytest

from repro.utils.timer import StageTimes, Stopwatch


class TestStopwatch:
    def test_stage_accumulates_time(self):
        sw = Stopwatch()
        with sw.stage("work"):
            pass
        assert sw.times()["work"] >= 0.0

    def test_multiple_entries_accumulate(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("a", 2.0)
        sw.add("b", 0.5)
        assert sw.times() == {"a": 3.0, "b": 0.5}

    def test_times_returns_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        t = sw.times()
        t["a"] = 99.0
        assert sw.times()["a"] == 1.0


class TestStageTimes:
    def test_merge_max_takes_slowest_node(self):
        merged = StageTimes.merge_max(
            ["map", "shuffle"],
            [{"map": 1.0, "shuffle": 5.0}, {"map": 2.0, "shuffle": 3.0}],
        )
        assert merged["map"] == 2.0
        assert merged["shuffle"] == 5.0

    def test_missing_stage_counts_as_zero(self):
        merged = StageTimes.merge_max(["map", "reduce"], [{"map": 1.0}])
        assert merged["reduce"] == 0.0

    def test_total_sums_stage_order(self):
        merged = StageTimes.merge_max(
            ["a", "b"], [{"a": 1.0, "b": 2.0, "ignored": 50.0}]
        )
        assert merged.total == 3.0

    def test_as_row_appends_total(self):
        merged = StageTimes.merge_max(["a", "b"], [{"a": 1.0, "b": 2.0}])
        assert merged.as_row() == [1.0, 2.0, 3.0]

    def test_scaled(self):
        merged = StageTimes.merge_max(["a"], [{"a": 2.0}])
        assert merged.scaled(2.5)["a"] == 5.0

    def test_getitem_unknown_stage_raises(self):
        merged = StageTimes.merge_max(["a"], [{"a": 1.0}])
        with pytest.raises(KeyError):
            merged["nope"]
