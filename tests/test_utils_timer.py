"""Tests for the stage stopwatch and breakdown merging."""

from __future__ import annotations

import pytest

from repro.utils.timer import StageTimes, Stopwatch


class TestStopwatch:
    def test_stage_accumulates_time(self):
        sw = Stopwatch()
        with sw.stage("work"):
            pass
        assert sw.times()["work"] >= 0.0

    def test_multiple_entries_accumulate(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("a", 2.0)
        sw.add("b", 0.5)
        assert sw.times() == {"a": 3.0, "b": 0.5}

    def test_times_returns_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        t = sw.times()
        t["a"] = 99.0
        assert sw.times()["a"] == 1.0


class TestStageTimes:
    def test_merge_max_takes_slowest_node(self):
        merged = StageTimes.merge_max(
            ["map", "shuffle"],
            [{"map": 1.0, "shuffle": 5.0}, {"map": 2.0, "shuffle": 3.0}],
        )
        assert merged["map"] == 2.0
        assert merged["shuffle"] == 5.0

    def test_missing_stage_counts_as_zero(self):
        merged = StageTimes.merge_max(["map", "reduce"], [{"map": 1.0}])
        assert merged["reduce"] == 0.0

    def test_total_sums_stage_order(self):
        merged = StageTimes.merge_max(
            ["a", "b"], [{"a": 1.0, "b": 2.0, "ignored": 50.0}]
        )
        assert merged.total == 3.0

    def test_as_row_appends_total(self):
        merged = StageTimes.merge_max(["a", "b"], [{"a": 1.0, "b": 2.0}])
        assert merged.as_row() == [1.0, 2.0, 3.0]

    def test_scaled(self):
        merged = StageTimes.merge_max(["a"], [{"a": 2.0}])
        assert merged.scaled(2.5)["a"] == 5.0

    def test_getitem_unknown_stage_raises(self):
        merged = StageTimes.merge_max(["a"], [{"a": 1.0}])
        with pytest.raises(KeyError):
            merged["nope"]


class TestNestedScopes:
    """Nested stage scopes: exclusive attribution and thread safety."""

    def test_child_time_subtracted_from_parent(self):
        import time

        sw = Stopwatch()
        with sw.stage("outer"):
            time.sleep(0.02)
            with sw.stage("inner"):
                time.sleep(0.02)
        times = sw.times()
        assert times["inner"] >= 0.02
        # The parent was charged only its exclusive share: the inner
        # sleep must not be double-counted.
        assert times["outer"] < times["inner"] + 0.02

    def test_scope_exposes_elapsed_and_exclusive(self):
        import time

        sw = Stopwatch()
        with sw.stage("outer") as scope:
            with sw.stage("inner"):
                time.sleep(0.02)
        assert scope.elapsed >= 0.02
        assert scope.exclusive <= scope.elapsed
        assert scope.elapsed - scope.exclusive >= 0.02

    def test_same_name_nesting(self):
        sw = Stopwatch()
        with sw.stage("reduce"):
            with sw.stage("reduce"):
                pass
        assert sw.times()["reduce"] >= 0.0

    def test_raw_add_bypasses_nesting(self):
        sw = Stopwatch()
        with sw.stage("outer") as scope:
            sw.add("pseudo", 123.0)
        assert sw.times()["pseudo"] == 123.0
        # A raw add is not a child scope: the parent keeps its full span.
        assert scope.exclusive == pytest.approx(scope.elapsed)

    def test_concurrent_threads_do_not_interfere(self):
        import threading
        import time

        sw = Stopwatch()
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with sw.stage(name):
                        with sw.stage(f"{name}-inner"):
                            time.sleep(0.0001)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        times = sw.times()
        for i in range(4):
            assert times[f"t{i}"] >= 0.0
            assert times[f"t{i}-inner"] > 0.0
