"""Tests for node grouping and grouped placement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvpairs.teragen import teragen
from repro.scalable.grouping import NodeGrouping
from repro.scalable.placement import GroupedCodedPlacement
from repro.utils.subsets import binomial


class TestNodeGrouping:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeGrouping(num_nodes=8, group_size=1)
        with pytest.raises(ValueError):
            NodeGrouping(num_nodes=2, group_size=4)
        with pytest.raises(ValueError):
            NodeGrouping(num_nodes=10, group_size=4)  # 4 does not divide 10

    def test_basic_structure(self):
        grouping = NodeGrouping(num_nodes=12, group_size=4)
        assert grouping.num_groups == 3
        assert grouping.members(0) == (0, 1, 2, 3)
        assert grouping.members(2) == (8, 9, 10, 11)
        assert grouping.group_of(5) == 1
        assert grouping.member_index(5) == 1
        assert grouping.groupmates(5) == [4, 5, 6, 7]

    def test_to_global(self):
        grouping = NodeGrouping(num_nodes=8, group_size=4)
        assert grouping.to_global(1, (0, 2)) == (4, 6)
        with pytest.raises(ValueError):
            grouping.to_global(1, (0, 4))  # member index out of range
        with pytest.raises(ValueError):
            grouping.members(2)

    def test_node_range_checks(self):
        grouping = NodeGrouping(num_nodes=6, group_size=3)
        with pytest.raises(ValueError):
            grouping.group_of(6)
        with pytest.raises(ValueError):
            grouping.member_index(-1)

    @settings(max_examples=40)
    @given(g=st.integers(2, 8), num_groups=st.integers(1, 6))
    def test_partition_property(self, g, num_groups):
        """Groups tile the rank space exactly."""
        grouping = NodeGrouping(num_nodes=g * num_groups, group_size=g)
        seen = []
        for j in range(grouping.num_groups):
            seen.extend(grouping.members(j))
        assert seen == list(range(g * num_groups))
        for node in range(g * num_groups):
            assert node in grouping.members(grouping.group_of(node))
            m = grouping.member_index(node)
            assert grouping.members(grouping.group_of(node))[m] == node


class TestGroupedPlacement:
    def test_validation(self):
        grouping = NodeGrouping(num_nodes=8, group_size=4)
        with pytest.raises(ValueError):
            GroupedCodedPlacement(grouping, redundancy=0)
        with pytest.raises(ValueError):
            GroupedCodedPlacement(grouping, redundancy=4)  # r = g invalid

    def test_file_count_and_storage(self):
        grouping = NodeGrouping(num_nodes=12, group_size=4)
        placement = GroupedCodedPlacement(grouping, redundancy=2)
        assert placement.num_files == binomial(4, 2)
        assert placement.files_per_node() == binomial(3, 1)
        assert placement.node_storage_bytes(1000) == pytest.approx(500.0)

    def test_every_group_stores_every_file(self):
        grouping = NodeGrouping(num_nodes=8, group_size=4)
        placement = GroupedCodedPlacement(grouping, redundancy=2)
        data = teragen(600, seed=0)
        assignments = placement.place(data)
        for fa in assignments:
            assert len(fa.global_subsets) == 2
            for j, subset in enumerate(fa.global_subsets):
                assert all(grouping.group_of(n) == j for n in subset)
                assert len(subset) == 2

    def test_views_cover_input_once_per_group(self):
        grouping = NodeGrouping(num_nodes=8, group_size=4)
        placement = GroupedCodedPlacement(grouping, redundancy=2)
        data = teragen(600, seed=1)
        assignments = placement.place(data)
        views = placement.per_node_views(assignments)
        # Within one group, each file appears on exactly r nodes.
        for fa in assignments:
            holders = [n for n in range(8) if fa.file_id in views[n]]
            assert len(holders) == 2 * 2  # r per group x G groups
        # Every node stores files_per_node files.
        for node in range(8):
            assert len(views[node]) == placement.files_per_node()

    def test_placement_covers_all_records(self):
        grouping = NodeGrouping(num_nodes=6, group_size=3)
        placement = GroupedCodedPlacement(grouping, redundancy=2)
        data = teragen(100, seed=2)
        assignments = placement.place(data)
        total = sum(len(fa.data) for fa in assignments)
        assert total == 100

    @settings(max_examples=25, deadline=None)
    @given(
        g=st.integers(2, 6),
        num_groups=st.integers(1, 3),
        data_obj=st.data(),
    )
    def test_subset_structure_property(self, g, num_groups, data_obj):
        r = data_obj.draw(st.integers(1, g - 1))
        grouping = NodeGrouping(num_nodes=g * num_groups, group_size=g)
        placement = GroupedCodedPlacement(grouping, redundancy=r)
        assert placement.num_files == binomial(g, r)
        for f in range(placement.num_files):
            subset = placement.member_subset_of_file(f)
            assert len(subset) == r
            assert all(0 <= m < g for m in subset)
