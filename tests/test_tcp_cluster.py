"""Multi-host TCP backend: byte-identity with ProcessCluster + failures.

The acceptance bar for the third backend: every job kind (TeraSort,
CodedTeraSort, coded MapReduce), submitted through a ``Session`` over a
localhost :class:`~repro.runtime.tcp.TcpCluster`, must produce
byte-identical outputs and identical traffic digests to the same jobs on
:class:`~repro.runtime.process.ProcessCluster` — at both (K, r) = (4, 1)
and (6, 2) — and a worker killed mid-job must fail only that job's
handle while the session survives (and serves again once replacement
workers rejoin the rendezvous).

Workers run as real separate processes (fork) executing
:func:`~repro.runtime.tcp.run_worker`, dialing the coordinator over real
TCP on 127.0.0.1 with ephemeral ports (xdist-safe: nothing shares a
fixed port or path).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core.cmr import MapReduceJob
from repro.core.jobs import WordCountJob
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster, run_worker
from repro.session import (
    CodedTeraSortSpec,
    MapReduceSpec,
    Session,
    TeraSortSpec,
)
from repro.utils.subsets import binomial

_CTX = multiprocessing.get_context("fork")


def _spawn_workers(address: str, n: int, **worker_kwargs):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address,
                quiet=True,
                connect_timeout=30.0,
                handshake_timeout=30.0,
                **worker_kwargs,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _reap(procs, timeout: float = 15.0) -> None:
    for p in procs:
        p.join(timeout)
        if p.is_alive():  # pragma: no cover - defensive cleanup
            p.terminate()
            p.join()


def _traffic_summary(traffic):
    """Order-independent digest of a per-job traffic log."""
    return sorted(
        (r.stage, r.kind, r.src, r.dsts, r.payload_bytes)
        for r in traffic.records
        if r.kind != "relay"
    )


def _corpus(k: int, r: int):
    n = 2 * binomial(k, r)
    return [f"alpha beta gamma file{i % 3} beta" for i in range(n)]


class SlowMapJob(MapReduceJob):
    """Module-level (picklable) job whose map is slow enough to kill into."""

    name = "slowmap"

    def map_file(self, file_id, payload):
        time.sleep(8.0)
        return {0: 1}

    def reduce(self, q, values):
        return len(values)


@pytest.mark.parametrize("k,r", [(4, 1), (6, 2)])
def test_tcp_session_byte_identical_to_process_cluster(k, r):
    """All three job kinds: TCP == process backend, bytes and traffic."""
    data = teragen(3000, seed=21)
    corpus = _corpus(k, r)

    def submit_all(session):
        h = [
            session.submit(TeraSortSpec(data=data)),
            session.submit(CodedTeraSortSpec(data=data, redundancy=r)),
            session.submit(
                MapReduceSpec(
                    job=WordCountJob(),
                    files=corpus,
                    redundancy=r,
                    scheme="coded",
                )
            ),
        ]
        return [handle.result() for handle in h]

    with TcpCluster(
        k, "tcp://127.0.0.1:0", timeout=120, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, k)
        try:
            with Session(cluster) as session:
                tcp_runs = submit_all(session)
        finally:
            _reap(procs)
    with Session(ProcessCluster(k, timeout=120)) as session:
        ref_runs = submit_all(session)

    for tcp_run, ref_run in zip(tcp_runs[:2], ref_runs[:2]):
        validate_sorted_permutation(data, tcp_run.partitions)
        assert [p.to_bytes() for p in tcp_run.partitions] == [
            p.to_bytes() for p in ref_run.partitions
        ]
    assert tcp_runs[2].outputs == ref_runs[2].outputs
    for tcp_run, ref_run in zip(tcp_runs, ref_runs):
        assert _traffic_summary(tcp_run.traffic) == _traffic_summary(
            ref_run.traffic
        )
    # Every worker served every job of the session and exited cleanly.
    assert all(p.exitcode == 0 for p in procs)


def test_killed_worker_fails_only_its_jobs_handle():
    """SIGKILL one worker mid-job: that handle errors, the session
    survives, and fresh workers serve the next job after rejoining."""
    k = 3
    data = teragen(1500, seed=22)
    files = ["x"] * binomial(k, 1)
    with TcpCluster(
        k, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, k)
        replacements = []
        try:
            with Session(cluster) as session:
                ok_before = session.submit(TeraSortSpec(data=data))
                validate_sorted_permutation(
                    data, ok_before.result().partitions
                )

                doomed = session.submit(
                    MapReduceSpec(
                        job=SlowMapJob(), files=files, redundancy=1,
                        scheme="uncoded",
                    )
                )
                time.sleep(1.0)  # let the job reach its slow map stage
                procs[0].kill()

                err = doomed.exception(timeout=45.0)
                assert isinstance(err, RuntimeError)
                assert "worker" in str(err)
                # The earlier job's handle is untouched by the failure.
                assert ok_before.exception() is None

                # Replacement workers rejoin the standing rendezvous and
                # the same session serves the next job.
                replacements = _spawn_workers(cluster.address, k)
                try:
                    ok_after = session.submit(TeraSortSpec(data=data))
                    validate_sorted_permutation(
                        data, ok_after.result().partitions
                    )
                finally:
                    pass  # reaped after the session closes the pool
        finally:
            _reap(procs)
            _reap(replacements)


def test_workers_persist_across_jobs_and_stop_cleanly():
    """One mesh serves back-to-back jobs; close() stops workers with rc 0."""
    k = 4
    data = teragen(1200, seed=23)
    with TcpCluster(
        k, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, k)
        try:
            with Session(cluster) as session:
                runs = [
                    session.submit(TeraSortSpec(data=data)).result()
                    for _ in range(3)
                ]
            first = [p.to_bytes() for p in runs[0].partitions]
            for run in runs[1:]:
                assert [p.to_bytes() for p in run.partitions] == first
        finally:
            _reap(procs)
    assert [p.exitcode for p in procs] == [0] * k
