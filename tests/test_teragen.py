"""Tests for the TeraGen-style data generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvpairs.records import KEY_BYTES, VALUE_BYTES
from repro.kvpairs.teragen import extract_row_ids, teragen, teragen_skewed


class TestTeragen:
    def test_shape_and_size(self):
        b = teragen(1234, seed=0)
        assert len(b) == 1234
        assert b.nbytes == 1234 * 100

    def test_deterministic_by_seed(self):
        assert teragen(100, seed=5) == teragen(100, seed=5)
        assert teragen(100, seed=5) != teragen(100, seed=6)

    def test_zero_records(self):
        assert len(teragen(0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            teragen(-1)

    def test_row_ids_embedded(self):
        b = teragen(50, seed=1, start_row=1000)
        assert (extract_row_ids(b) == np.arange(1000, 1050)).all()

    def test_keys_roughly_uniform(self):
        b = teragen(20000, seed=2)
        hi = b.key_prefix_u64()
        # First byte should hit most of [0, 256) and be roughly flat.
        first = (hi >> np.uint64(56)).astype(np.int64)
        counts = np.bincount(first, minlength=256)
        assert counts.min() > 0
        assert counts.max() < 4 * counts.mean()

    def test_extract_row_ids_rejects_foreign_values(self):
        import numpy as np

        from repro.kvpairs.records import RecordBatch

        keys = np.zeros((2, KEY_BYTES), dtype=np.uint8)
        values = np.full((2, VALUE_BYTES), 0xFF, dtype=np.uint8)
        with pytest.raises(ValueError):
            extract_row_ids(RecordBatch.from_arrays(keys, values))


class TestTeragenSkewed:
    def test_shape(self):
        b = teragen_skewed(500, seed=0)
        assert len(b) == 500

    def test_skew_is_visible(self):
        b = teragen_skewed(20000, seed=3, zipf_a=1.2)
        hi = b.key_prefix_u64()
        first2 = (hi >> np.uint64(48)).astype(np.int64)
        counts = np.bincount(first2, minlength=65536)
        # Zipf: the hottest prefix should dwarf the mean occupancy.
        assert counts.max() > 20 * max(1.0, counts.mean())

    def test_row_ids_still_embedded(self):
        b = teragen_skewed(100, seed=1, start_row=7)
        assert (extract_row_ids(b) == np.arange(7, 107)).all()

    def test_bad_zipf_a(self):
        with pytest.raises(ValueError):
            teragen_skewed(10, zipf_a=1.0)

    def test_deterministic(self):
        assert teragen_skewed(200, seed=9) == teragen_skewed(200, seed=9)
