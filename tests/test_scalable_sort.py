"""End-to-end tests for grouped CodedTeraSort (functional + simulated)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvpairs.records import RecordBatch
from repro.kvpairs.teragen import teragen, teragen_skewed
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.scalable.program import run_grouped_coded_terasort
from repro.scalable.sim import GroupedWorkload, simulate_grouped_coded_terasort
from repro.scalable.theory import (
    grouped_codegen_groups,
    grouped_comm_load,
    grouped_storage_fraction,
    grouped_vs_full,
)
from repro.sim.runner import simulate_coded_terasort, simulate_terasort


def cluster(k):
    return ThreadCluster(k, recv_timeout=60.0)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "k,g,r",
        [(4, 2, 1), (6, 3, 2), (8, 4, 2), (8, 4, 3), (9, 3, 2), (6, 6, 2)],
    )
    def test_sorts_correctly(self, k, g, r):
        data = teragen(4000, seed=k * 10 + r)
        run = run_grouped_coded_terasort(
            cluster(k), data, redundancy=r, group_size=g
        )
        validate_sorted_permutation(data, run.partitions)

    def test_skewed_keys(self):
        data = teragen_skewed(5000, seed=1)
        run = run_grouped_coded_terasort(
            cluster(6), data, redundancy=2, group_size=3
        )
        validate_sorted_permutation(data, run.partitions)

    def test_empty_input(self):
        data = teragen(0)
        run = run_grouped_coded_terasort(
            cluster(4), data, redundancy=1, group_size=2
        )
        assert sum(len(p) for p in run.partitions) == 0

    def test_single_group_equals_plain_coded_load(self):
        """G=1 degenerates to plain CodedTeraSort structure."""
        data = teragen(6000, seed=4)
        run = run_grouped_coded_terasort(
            cluster(5), data, redundancy=2, group_size=5
        )
        validate_sorted_permutation(data, run.partitions)
        assert run.meta["num_groups"] == 1

    def test_invalid_params(self):
        data = teragen(100)
        with pytest.raises(ValueError):
            run_grouped_coded_terasort(
                cluster(6), data, redundancy=2, group_size=4
            )  # 4 does not divide 6
        with pytest.raises(ValueError):
            run_grouped_coded_terasort(
                cluster(6), data, redundancy=3, group_size=3
            )  # r = g

    def test_batched_subsets(self):
        data = teragen(4800, seed=5)
        run = run_grouped_coded_terasort(
            cluster(6), data, redundancy=2, group_size=3,
            batches_per_subset=2,
        )
        validate_sorted_permutation(data, run.partitions)
        assert run.meta["num_files"] == 6  # 2 * C(3,2)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_groups=st.integers(1, 3),
        g=st.integers(2, 4),
        seed=st.integers(0, 50),
        n=st.integers(0, 1500),
        data_obj=st.data(),
    )
    def test_sort_property(self, num_groups, g, seed, n, data_obj):
        r = data_obj.draw(st.integers(1, g - 1))
        data = teragen(n, seed=seed)
        run = run_grouped_coded_terasort(
            cluster(num_groups * g), data, redundancy=r, group_size=g
        )
        validate_sorted_permutation(data, run.partitions)


class TestLoadAccounting:
    def test_load_matches_grouped_theory(self):
        k, g, r, n = 8, 4, 2, 40_000
        data = teragen(n, seed=6)
        run = run_grouped_coded_terasort(
            cluster(k), data, redundancy=r, group_size=g
        )
        payload = run.traffic.load_bytes("shuffle")
        ideal = grouped_comm_load(r, g) * n * 100
        assert payload >= ideal
        assert (payload - ideal) / ideal < 0.10

    def test_grouped_load_above_full_coded_equal_storage(self):
        """At equal per-node storage, grouping pays K/g more load.

        Grouped (g=4, r=2) stores r/g = 1/2 per node, as does plain coded
        r=4 on K=8; the loads are (1/2)(1-1/2) = 0.25 vs (1/4)(1-1/2) =
        0.125 — grouping trades exactly a K/g = 2x load factor for its
        CodeGen/concurrency wins.
        """
        from repro.core.coded_terasort import run_coded_terasort

        n = 30_000
        data = teragen(n, seed=7)
        grouped = run_grouped_coded_terasort(
            cluster(8), data, redundancy=2, group_size=4
        )
        full = run_coded_terasort(cluster(8), data, redundancy=4)
        ratio = grouped.traffic.load_bytes("shuffle") / full.traffic.load_bytes(
            "shuffle"
        )
        assert 1.7 < ratio < 2.3  # theory: exactly 2, headers smear it

    def test_multicast_count(self):
        data = teragen(3000, seed=8)
        run = run_grouped_coded_terasort(
            cluster(8), data, redundancy=2, group_size=4
        )
        assert (
            run.traffic.message_count("shuffle")
            == run.meta["total_multicasts"]
        )


class TestTheory:
    def test_load_formula(self):
        assert grouped_comm_load(2, 4) == pytest.approx(0.25)
        assert grouped_comm_load(5, 10) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            grouped_comm_load(4, 4)

    def test_codegen_groups(self):
        assert grouped_codegen_groups(20, 10, 5) == 2 * 210  # 2 * C(10,6)
        assert grouped_codegen_groups(8, 4, 2) == 2 * 4
        with pytest.raises(ValueError):
            grouped_codegen_groups(10, 4, 2)

    def test_storage_fraction(self):
        assert grouped_storage_fraction(5, 10) == pytest.approx(0.5)

    def test_comparison_equal_storage_default(self):
        cmp = grouped_vs_full(20, 10, 5)
        assert cmp.full_redundancy == 10  # equal storage r K / g
        assert cmp.storage_grouped == pytest.approx(cmp.storage_full)
        assert cmp.load_ratio >= 1.0
        assert cmp.codegen_ratio > 100

    def test_comparison_explicit_r(self):
        cmp = grouped_vs_full(20, 10, 5, full_redundancy=5)
        assert cmp.load_grouped == pytest.approx(0.1)
        assert cmp.load_full == pytest.approx(0.15)
        assert cmp.codegen_full == 38760


class TestSimulator:
    def test_workload_validation(self):
        with pytest.raises(ValueError):
            GroupedWorkload(10, 4, 2, 1000)  # 4 does not divide 10
        with pytest.raises(ValueError):
            GroupedWorkload(8, 4, 4, 1000)  # r = g

    def test_workload_payload_matches_theory(self):
        work = GroupedWorkload(20, 10, 5, 120_000_000)
        assert work.shuffle_payload_total == pytest.approx(
            grouped_comm_load(5, 10) * work.total_bytes
        )

    def test_sim_payload_equals_workload(self):
        rep = simulate_grouped_coded_terasort(8, 4, 2, n_records=1_000_000)
        work = GroupedWorkload(8, 4, 2, 1_000_000)
        assert rep.shuffle_payload_bytes == pytest.approx(
            work.shuffle_payload_total
        )

    def test_groups_shuffle_concurrently(self):
        """Doubling the group count must not slow the shuffle stage."""
        one = simulate_grouped_coded_terasort(8, 8, 3, n_records=4_000_000)
        # Same total data, two concurrent groups, same g is impossible;
        # compare per-group payloads instead: 2 groups of 8 on 16 nodes
        # move half the data each, concurrently -> shuffle halves.
        two = simulate_grouped_coded_terasort(16, 8, 3, n_records=4_000_000)
        assert two.stage_times["shuffle"] == pytest.approx(
            one.stage_times["shuffle"] / 2, rel=0.05
        )

    def test_beats_full_coded_at_k20_r5(self):
        """The §VI scalability claim, quantified at the paper's config."""
        grouped = simulate_grouped_coded_terasort(20, 10, 5)
        full = simulate_coded_terasort(20, 5, granularity="turn")
        base = simulate_terasort(20, granularity="turn")
        assert grouped.total_time < full.total_time
        assert grouped.stage_times["codegen"] < 0.05 * (
            full.stage_times["codegen"]
        )
        # End-to-end speedup over TeraSort well above the paper's 2.2x.
        assert base.total_time / grouped.total_time > 4.0

    def test_map_cost_is_the_price(self):
        """Grouped Map does K/g times more hashing per node."""
        grouped = simulate_grouped_coded_terasort(20, 10, 5)
        full = simulate_coded_terasort(20, 5, granularity="turn")
        assert grouped.stage_times["map"] == pytest.approx(
            2 * full.stage_times["map"], rel=0.01
        )


class TestFunctionalSimCrossCheck:
    """The functional engine and the simulator must agree on bytes."""

    def test_measured_payload_matches_workload_model(self):
        k, g, r, n = 8, 4, 2, 40_000
        data = teragen(n, seed=11)
        run = run_grouped_coded_terasort(
            cluster(k), data, redundancy=r, group_size=g
        )
        work = GroupedWorkload(k, g, r, n)
        measured = run.traffic.load_bytes("shuffle")
        # Functional payload sits within header overhead of the model.
        assert measured >= work.shuffle_payload_total
        assert measured < work.shuffle_payload_total * 1.10

    def test_multicast_counts_agree(self):
        k, g, r = 9, 3, 2
        data = teragen(9000, seed=12)
        run = run_grouped_coded_terasort(
            cluster(k), data, redundancy=r, group_size=g
        )
        work = GroupedWorkload(k, g, r, 9000)
        assert run.traffic.message_count("shuffle") == work.total_multicasts
        sim = simulate_grouped_coded_terasort(k, g, r, n_records=9000)
        assert sim.transfers >= work.total_multicasts  # + barrier-free holds
