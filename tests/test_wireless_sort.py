"""End-to-end tests for wireless distributed sorting ([24]/[25] setting)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvpairs.teragen import teragen, teragen_skewed
from repro.kvpairs.validation import validate_sorted_permutation
from repro.wireless.channel import WirelessChannel
from repro.wireless.theory import (
    wireless_coded_load,
    wireless_edge_load,
    wireless_grouped_load,
    wireless_uncoded_load,
)
from repro.wireless.wdc import run_wireless_sort


class TestValidation:
    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            run_wireless_sort(teragen(100), 4, 2, protocol="csma")

    def test_bad_redundancy(self):
        with pytest.raises(ValueError):
            run_wireless_sort(teragen(100), 4, 4)
        with pytest.raises(ValueError):
            run_wireless_sort(teragen(100), 4, 0)

    def test_channel_size_mismatch(self):
        with pytest.raises(ValueError):
            run_wireless_sort(
                teragen(100), 4, 2, channel=WirelessChannel(6)
            )

    def test_grouped_requires_d2d(self):
        with pytest.raises(ValueError):
            run_wireless_sort(
                teragen(100), 8, 2, protocol="edge", group_size=4
            )

    def test_grouped_bad_r(self):
        with pytest.raises(ValueError):
            run_wireless_sort(teragen(100), 8, 4, group_size=4)


class TestCorrectness:
    @pytest.mark.parametrize("protocol", ["uncoded", "d2d", "edge"])
    def test_sorts_correctly(self, protocol):
        data = teragen(6000, seed=1)
        out = run_wireless_sort(data, 5, 2, protocol=protocol)
        validate_sorted_permutation(data, out.partitions)

    def test_grouped_sorts_correctly(self):
        data = teragen(8000, seed=2)
        out = run_wireless_sort(data, 8, 2, group_size=4)
        validate_sorted_permutation(data, out.partitions)

    def test_skewed_keys(self):
        data = teragen_skewed(5000, seed=3)
        out = run_wireless_sort(data, 4, 2, protocol="d2d")
        validate_sorted_permutation(data, out.partitions)

    def test_empty_input(self):
        out = run_wireless_sort(teragen(0), 4, 2, protocol="d2d")
        assert sum(len(p) for p in out.partitions) == 0
        assert out.shuffle_load() == 0.0

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data_obj=st.data())
    def test_sort_property_all_protocols(self, data_obj):
        k = data_obj.draw(st.integers(2, 6))
        r = data_obj.draw(st.integers(1, k - 1))
        n = data_obj.draw(st.integers(0, 1500))
        protocol = data_obj.draw(st.sampled_from(["uncoded", "d2d", "edge"]))
        data = teragen(n, seed=data_obj.draw(st.integers(0, 50)))
        out = run_wireless_sort(data, k, r, protocol=protocol)
        validate_sorted_permutation(data, out.partitions)


class TestAirtimeLoads:
    def test_d2d_matches_theory(self):
        n = 30_000
        data = teragen(n, seed=4)
        out = run_wireless_sort(data, 6, 2, protocol="d2d")
        ideal = wireless_coded_load(2, 6)
        assert out.shuffle_load() == pytest.approx(ideal, rel=0.10)
        assert out.shuffle_load() >= ideal  # headers only add

    def test_edge_doubles_d2d(self):
        n = 20_000
        data = teragen(n, seed=5)
        d2d = run_wireless_sort(data, 6, 2, protocol="d2d")
        edge = run_wireless_sort(data, 6, 2, protocol="edge")
        assert edge.shuffle_load() == pytest.approx(
            2 * d2d.shuffle_load(), rel=0.01
        )
        # Edge relays every packet through the AP: twice the tx count.
        assert (
            edge.airtime.total_transmissions
            == 2 * d2d.airtime.total_transmissions
        )

    def test_uncoded_matches_theory(self):
        n = 30_000
        data = teragen(n, seed=6)
        out = run_wireless_sort(data, 6, 2, protocol="uncoded")
        assert out.shuffle_load() == pytest.approx(
            wireless_uncoded_load(2, 6), rel=0.05
        )

    def test_coded_gain_is_2r(self):
        """D2D coded airtime ~ uncoded / 2r (the headline saving)."""
        n = 30_000
        data = teragen(n, seed=7)
        uncoded = run_wireless_sort(data, 6, 3, protocol="uncoded")
        coded = run_wireless_sort(data, 6, 3, protocol="d2d")
        gain = uncoded.shuffle_load() / coded.shuffle_load()
        assert gain == pytest.approx(2 * 3, rel=0.10)

    def test_grouped_load_independent_of_k(self):
        """[24]'s scalability: more users, same airtime per byte."""
        n = 24_000
        loads = []
        for k in (4, 8, 12):
            data = teragen(n, seed=8)
            out = run_wireless_sort(data, k, 2, group_size=4)
            loads.append(out.shuffle_load())
        ideal = wireless_grouped_load(2, 4)
        for load in loads:
            assert load == pytest.approx(ideal, rel=0.10)
        # Flat within measurement noise (packet headers shrink with
        # per-cell size, which varies slightly with K).
        assert max(loads) - min(loads) < 0.05 * ideal + 0.02

    def test_plain_coded_load_grows_with_k(self):
        """Contrast: un-grouped D2D load grows toward 1/r as K grows."""
        n = 24_000
        small = run_wireless_sort(teragen(n, seed=9), 4, 2, protocol="d2d")
        large = run_wireless_sort(teragen(n, seed=9), 12, 2, protocol="d2d")
        assert large.shuffle_load() > small.shuffle_load()


class TestTheory:
    def test_closed_forms(self):
        assert wireless_uncoded_load(2, 6) == pytest.approx(4 / 3)
        assert wireless_coded_load(2, 6) == pytest.approx(1 / 3)
        assert wireless_edge_load(2, 6) == pytest.approx(2 / 3)
        assert wireless_grouped_load(2, 4) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            wireless_uncoded_load(0, 4)
        with pytest.raises(ValueError):
            wireless_coded_load(5, 4)
        with pytest.raises(ValueError):
            wireless_grouped_load(4, 4)

    def test_grouped_equals_plain_at_g_equals_k(self):
        assert wireless_grouped_load(2, 6) == pytest.approx(
            wireless_coded_load(2, 6)
        )
