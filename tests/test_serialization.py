"""Tests for the Pack/Unpack wire format."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvpairs.records import RecordBatch
from repro.kvpairs.serialization import (
    HEADER_BYTES,
    SerializationError,
    pack_batch,
    pack_batches,
    packed_size,
    unpack_batch,
    unpack_batches,
    unpack_batches_dict,
)
from repro.kvpairs.teragen import teragen


class TestSingleFrame:
    def test_roundtrip(self, tiny_batch):
        tag, out = unpack_batch(pack_batch(tiny_batch, tag=9))
        assert tag == 9 and out == tiny_batch

    def test_empty_batch(self):
        tag, out = unpack_batch(pack_batch(RecordBatch.empty(), tag=1))
        assert tag == 1 and len(out) == 0

    def test_packed_size(self, tiny_batch):
        buf = pack_batch(tiny_batch)
        assert len(buf) == packed_size(len(tiny_batch))
        assert len(buf) == HEADER_BYTES + tiny_batch.nbytes

    def test_bad_magic(self, tiny_batch):
        buf = bytearray(pack_batch(tiny_batch))
        buf[0] = ord("X")
        with pytest.raises(SerializationError):
            unpack_batch(bytes(buf))

    def test_truncated_header(self):
        with pytest.raises(SerializationError):
            unpack_batch(b"CTS1\x00")

    def test_truncated_payload(self, tiny_batch):
        buf = pack_batch(tiny_batch)
        with pytest.raises(SerializationError):
            unpack_batch(buf[:-1])

    def test_trailing_bytes_rejected(self, tiny_batch):
        buf = pack_batch(tiny_batch) + b"zz"
        with pytest.raises(SerializationError):
            unpack_batch(buf)

    def test_non_record_multiple_payload(self):
        # Header claims 50 bytes (not a multiple of 100).
        import struct

        buf = struct.pack("<4sQQ", b"CTS1", 0, 50) + b"x" * 50
        with pytest.raises(SerializationError):
            unpack_batch(buf)


class TestFrameSequences:
    def test_multi_roundtrip(self):
        batches = [(i, teragen(i * 3, seed=i)) for i in range(4)]
        out = unpack_batches(pack_batches(batches))
        assert len(out) == 4
        for (tag_a, b_a), (tag_b, b_b) in zip(batches, out):
            assert tag_a == tag_b and b_a == b_b

    def test_empty_buffer(self):
        assert unpack_batches(b"") == []

    def test_dict_view(self):
        batches = [(5, teragen(2, seed=0)), (9, teragen(3, seed=1))]
        d = unpack_batches_dict(pack_batches(batches))
        assert set(d) == {5, 9}
        assert len(d[9]) == 3

    def test_dict_duplicate_tag_rejected(self):
        batches = [(5, teragen(2, seed=0)), (5, teragen(3, seed=1))]
        with pytest.raises(SerializationError):
            unpack_batches_dict(pack_batches(batches))

    def test_garbage_mid_sequence(self, tiny_batch):
        buf = pack_batch(tiny_batch) + b"garbage-that-is-not-a-frame!"
        with pytest.raises(SerializationError):
            unpack_batches(buf)

    @given(st.lists(st.integers(0, 20), max_size=6))
    def test_roundtrip_property(self, sizes):
        batches = [
            (i, teragen(n, seed=i * 7 + 1)) for i, n in enumerate(sizes)
        ]
        out = unpack_batches(pack_batches(batches))
        assert [(t, len(b)) for t, b in out] == [
            (i, n) for i, n in enumerate(sizes)
        ]
        for (_, a), (_, b) in zip(batches, out):
            assert a == b
