"""Tests for the multiprocessing backend (real sockets, real processes)."""

from __future__ import annotations

import pytest

from repro.runtime.api import MulticastMode
from repro.runtime.process import ProcessCluster
from repro.runtime.program import NodeProgram


class _AllToAll(NodeProgram):
    STAGES = ["exchange"]

    def run(self):
        with self.stage("exchange"):
            received = {}
            for sender in range(self.size):
                if sender == self.rank:
                    for dst in range(self.size):
                        if dst != self.rank:
                            self.comm.send(
                                dst, 11, f"{self.rank}->{dst}".encode()
                            )
                else:
                    received[sender] = self.comm.recv(sender, 11)
            self.comm.barrier()
        return received


class _BcastRing(NodeProgram):
    STAGES = ["ring"]

    def run(self):
        with self.stage("ring"):
            seen = []
            for root in range(self.size):
                payload = f"from-{root}".encode() if self.rank == root else None
                seen.append(self.comm.bcast(
                    tuple(range(self.size)), root, 30 + root, payload
                ))
        return seen


class _Crasher(NodeProgram):
    STAGES = ["boom"]

    def run(self):
        with self.stage("boom"):
            if self.rank == 0:
                raise RuntimeError("worker zero dies")
            self.comm.barrier()


class TestProcessCluster:
    def test_all_to_all(self):
        res = ProcessCluster(4, timeout=60).run(_AllToAll)
        for rank, received in enumerate(res.results):
            assert set(received) == set(range(4)) - {rank}
            for sender, payload in received.items():
                assert payload == f"{sender}->{rank}".encode()

    @pytest.mark.parametrize("mode", [MulticastMode.LINEAR, MulticastMode.TREE])
    def test_bcast_modes(self, mode):
        res = ProcessCluster(4, multicast_mode=mode, timeout=60).run(_BcastRing)
        expected = [f"from-{r}".encode() for r in range(4)]
        assert all(r == expected for r in res.results)

    def test_traffic_merged_from_workers(self):
        res = ProcessCluster(3, timeout=60).run(_AllToAll)
        assert res.traffic.message_count() == 6  # 3 * 2 unicasts

    def test_stage_times_present(self):
        res = ProcessCluster(2, timeout=60).run(_AllToAll)
        assert res.stage_times.stages == ["exchange"]

    def test_worker_failure_reported(self):
        with pytest.raises(RuntimeError, match="worker 0"):
            ProcessCluster(2, timeout=30).run(_Crasher)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ProcessCluster(0)

    def test_rate_limited_run_is_slower(self):
        """Pacing at 2 MB/s makes a ~1.2 MB shuffle take measurable time."""
        import time

        class BigExchange(NodeProgram):
            STAGES = ["x"]

            def run(self):
                with self.stage("x"):
                    payload = b"z" * 600_000
                    if self.rank == 0:
                        self.comm.send(1, 5, payload)
                        self.comm.send(2, 5, payload)
                    elif self.rank in (1, 2):
                        self.comm.recv(0, 5)
                    self.comm.barrier()
                return None

        start = time.monotonic()
        ProcessCluster(3, rate_bytes_per_s=2e6, timeout=60).run(BigExchange)
        paced = time.monotonic() - start
        assert paced > 0.4  # 1.2 MB at 2 MB/s >= ~0.6 s minus burst
