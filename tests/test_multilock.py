"""Tests for the DES MultiLock (atomic all-or-nothing key acquisition)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.des import Environment, MultiLock, SimError


def make(num_keys=8):
    env = Environment()
    return env, MultiLock(env, num_keys)


class TestValidation:
    def test_bad_construction(self):
        env = Environment()
        with pytest.raises(SimError):
            MultiLock(env, 0)

    def test_bad_keys(self):
        env, lock = make(4)
        with pytest.raises(SimError):
            env.run_process(iter([lock.acquire([0, 9])]))
        with pytest.raises(SimError):
            lock.acquire([])

    def test_release_without_acquire(self):
        env, lock = make(4)
        with pytest.raises(SimError):
            lock.release([0])


class TestSemantics:
    def test_disjoint_requests_overlap(self):
        env, lock = make(6)
        done = {}

        def worker(name, keys, hold):
            yield lock.acquire(keys)
            yield env.timeout(hold)
            lock.release(keys)
            done[name] = env.now

        env.process(worker("a", [0, 1], 1.0))
        env.process(worker("b", [2, 3], 1.0))
        env.run()
        assert done == {"a": 1.0, "b": 1.0}

    def test_conflicting_requests_serialize(self):
        env, lock = make(6)
        done = {}

        def worker(name, keys, hold):
            yield lock.acquire(keys)
            yield env.timeout(hold)
            lock.release(keys)
            done[name] = env.now

        env.process(worker("a", [0, 1], 1.0))
        env.process(worker("b", [1, 2], 1.0))
        env.run()
        assert done["a"] == 1.0
        assert done["b"] == 2.0

    def test_no_hold_and_wait_convoy(self):
        """The bug MultiLock exists to fix: a ring of overlapping
        requests must not serialize into K rounds.

        The optimal coloring is 2 rounds; the no-overtake arrival policy
        (worker 2 queues behind waiting worker 1 even though its keys are
        free at t=0) costs one extra round — still far from the convoy's
        K = 6.
        """
        k = 6
        env, lock = make(k)
        done = {}

        def worker(i):
            keys = [i, (i + 1) % k]
            yield lock.acquire(keys)
            yield env.timeout(1.0)
            lock.release(keys)
            done[i] = env.now

        for i in range(k):
            env.process(worker(i))
        env.run()
        assert max(done.values()) == pytest.approx(3.0)
        assert max(done.values()) < k - 1

    def test_fifo_no_overtake(self):
        """A later request never jumps an earlier queued conflicting one
        sharing its keys; and arrivals never overtake any waiter."""
        env, lock = make(4)
        order = []

        def holder():
            yield lock.acquire([0])
            yield env.timeout(1.0)
            lock.release([0])

        def worker(name, keys, delay):
            yield env.timeout(delay)
            yield lock.acquire(keys)
            order.append((name, env.now))
            lock.release(keys)

        env.process(holder())
        env.process(worker("first", [0, 1], 0.1))
        # 'second' wants only key 1 (free!) but arrives after 'first'
        # queued — the no-overtake policy parks it behind the queue.
        env.process(worker("second", [1], 0.2))
        env.run()
        assert [n for n, _ in order] == ["first", "second"]

    def test_release_scan_grants_multiple(self):
        env, lock = make(6)
        done = []

        def holder():
            yield lock.acquire([0, 1, 2, 3])
            yield env.timeout(1.0)
            lock.release([0, 1, 2, 3])

        def worker(name, keys):
            yield lock.acquire(keys)
            done.append((name, env.now))
            lock.release(keys)

        env.process(holder())
        env.process(worker("x", [0, 1]))
        env.process(worker("y", [2, 3]))
        env.run()
        # Both waiters granted by the same release, at t=1.
        assert done == [("x", 1.0), ("y", 1.0)]

    def test_duplicate_keys_collapse(self):
        env, lock = make(4)

        def worker():
            yield lock.acquire([2, 2, 2])
            lock.release([2])

        env.run_process(worker())  # no double-acquire error

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_mutual_exclusion_property(self, data):
        """Random workloads: no two concurrent holders share a key."""
        num_keys = data.draw(st.integers(2, 6))
        jobs = data.draw(
            st.lists(
                st.tuples(
                    st.lists(
                        st.integers(0, num_keys - 1),
                        min_size=1,
                        max_size=num_keys,
                        unique=True,
                    ),
                    st.floats(0.1, 2.0),
                ),
                min_size=1,
                max_size=12,
            )
        )
        env = Environment()
        lock = MultiLock(env, num_keys)
        active: list = []

        def worker(keys, hold):
            yield lock.acquire(keys)
            for held in active:
                assert not (set(held) & set(keys))
            active.append(keys)
            yield env.timeout(hold)
            active.remove(keys)
            lock.release(keys)

        for keys, hold in jobs:
            env.process(worker(keys, hold))
        env.run()
        assert active == []
