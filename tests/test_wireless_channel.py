"""Tests for the TDMA wireless channel and its accounting."""

from __future__ import annotations

import pytest

from repro.wireless.channel import AirtimeLog, WirelessChannel


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(ValueError):
            WirelessChannel(0)
        with pytest.raises(ValueError):
            WirelessChannel(4, rate_bytes_per_s=0)
        with pytest.raises(ValueError):
            WirelessChannel(4, per_tx_overhead_s=-1)

    def test_bad_parties(self):
        ch = WirelessChannel(4)
        with pytest.raises(ValueError):
            ch.transmit(7, [0], b"x")
        with pytest.raises(ValueError):
            ch.transmit(0, [9], b"x")
        with pytest.raises(ValueError):
            ch.transmit(0, [], b"x")
        with pytest.raises(ValueError):
            ch.transmit(0, [0], b"x")  # self-address


class TestDirectionInference:
    def test_uplink(self):
        ch = WirelessChannel(4)
        ch.transmit(2, [WirelessChannel.AP], b"abc")
        assert ch.log.transmissions == {"uplink": 1}

    def test_downlink(self):
        ch = WirelessChannel(4)
        ch.transmit(WirelessChannel.AP, [0, 1, 2], b"abc")
        assert ch.log.transmissions == {"downlink": 1}

    def test_d2d(self):
        ch = WirelessChannel(4)
        ch.transmit(0, [1, 3], b"abc")
        assert ch.log.transmissions == {"d2d": 1}

    def test_mixed_receivers_count_as_d2d(self):
        """Addressing users (with or without the AP listening) is D2D."""
        ch = WirelessChannel(4)
        ch.transmit(0, [1, WirelessChannel.AP], b"abc")
        assert ch.log.transmissions == {"d2d": 1}


class TestAirtimeAccounting:
    def test_broadcast_charged_once(self):
        """The defining property: receivers don't multiply airtime."""
        one = WirelessChannel(8, per_tx_overhead_s=0.0)
        many = WirelessChannel(8, per_tx_overhead_s=0.0)
        one.transmit(0, [1], b"x" * 1000)
        many.transmit(0, [1, 2, 3, 4, 5, 6, 7], b"x" * 1000)
        assert one.log.total_airtime == many.log.total_airtime
        assert one.log.total_bytes == many.log.total_bytes

    def test_airtime_formula(self):
        ch = WirelessChannel(2, rate_bytes_per_s=1000.0, per_tx_overhead_s=0.5)
        secs = ch.transmit(0, [1], b"x" * 250)
        assert secs == pytest.approx(0.5 + 0.25)
        assert ch.log.airtime_s["d2d"] == pytest.approx(0.75)

    def test_totals_accumulate(self):
        ch = WirelessChannel(3)
        ch.transmit(0, [WirelessChannel.AP], b"a" * 10)
        ch.transmit(WirelessChannel.AP, [1], b"a" * 10)
        ch.transmit(1, [0, 2], b"a" * 20)
        assert ch.log.total_transmissions == 3
        assert ch.log.total_bytes == 40
        assert set(ch.log.transmissions) == {"uplink", "downlink", "d2d"}

    def test_trace_records_chronology(self):
        ch = WirelessChannel(3)
        ch.transmit(0, [1], b"ab")
        ch.transmit(1, [WirelessChannel.AP], b"cde")
        assert ch.trace == [
            (0, (1,), "d2d", 2),
            (1, (WirelessChannel.AP,), "uplink", 3),
        ]

    def test_empty_log(self):
        log = AirtimeLog()
        assert log.total_bytes == 0.0
        assert log.total_airtime == 0.0
        assert log.total_transmissions == 0
