"""Tests for text/markdown table rendering."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_plain_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # Columns align: 'value' header starts at same offset in all rows.
        col = lines[0].index("value")
        assert lines[2][col] in "0123456789"

    def test_float_decimals(self):
        out = format_table(["x"], [[1.23456]], decimals=3)
        assert "1.235" in out

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out

    def test_markdown_pipes_and_separator(self):
        out = format_table(["a", "b"], [[1, 2]], markdown=True)
        lines = out.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_int_not_formatted_as_float(self):
        out = format_table(["x"], [[7]])
        assert "7.00" not in out
        assert "7" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"
