"""Fault-injection harness unit tests (parsing, matching, pacing).

The ``$REPRO_FAULT_PLAN`` grammar and firing semantics that the chaos
tests, the CI chaos smoke, and the straggler bench lanes all depend on:
clause parsing (including every rejection), match-key precedence
(``rank``/``stage``/``peer``/``job``/``job_lt``/``times``), the
env-string cache, and the :class:`Pacer` contract — total injected delay
is ``(factor - 1) x work`` regardless of checkpoint granularity, and a
``poll`` callback preempts the remaining sleep the moment it fires.

Crash actions call ``os._exit`` and are exercised end to end by the
process/TCP integration tests in ``test_fault_tolerance*.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.testing import faults
from repro.testing.faults import ENV_VAR, FaultPlan, FaultSpec, Pacer


class TestParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "stage.slow,rank=2,stage=map,factor=5;"
            "send.delay,rank=1,peer=3,secs=0.05;"
            "recv.crash,rank=0,job=2,times=3;"
            "stage.crash,rank=1,stage=shuffle,job_lt=1"
        )
        slow, delay, crash, crash2 = plan.specs
        assert (slow.point, slow.action, slow.rank, slow.stage, slow.factor) \
            == ("stage", "slow", 2, "map", 5.0)
        assert (delay.peer, delay.secs) == (3, 0.05)
        assert (crash.job, crash.times) == (2, 3)
        assert (crash2.job_lt, crash2.times) == (1, 1)

    def test_crash_defaults_to_one_firing(self):
        (spec,) = FaultPlan.parse("stage.crash,rank=1").specs
        assert spec.times == 1
        (spec,) = FaultPlan.parse("stage.delay,secs=0.1").specs
        assert spec.times is None  # non-crash actions fire every match

    def test_empty_clauses_skipped(self):
        assert FaultPlan.parse(";; stage.delay,secs=1 ;").specs[0].secs == 1.0

    @pytest.mark.parametrize("bad", [
        "stage.explode",                 # unknown action
        "socket.crash",                  # unknown point
        "stagecrash",                    # no dot
        "send.slow,factor=2",            # slow is stage-only
        "stage.delay,secs",              # not key=value
        "stage.delay,wat=1",             # unknown key
        "stage.crash,rank=one",          # non-integer rank
        "stage.slow,factor=fast",        # non-float factor
    ])
    def test_rejected_clauses(self, bad):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse(bad)


class TestMatching:
    def test_match_keys(self):
        spec = FaultSpec(point="send", action="delay", rank=1, stage="shuffle",
                         peer=3, job=2)
        assert spec.matches(1, "shuffle", 2, peer=3)
        assert not spec.matches(0, "shuffle", 2, peer=3)   # rank
        assert not spec.matches(1, "map", 2, peer=3)       # stage
        assert not spec.matches(1, "shuffle", 1, peer=3)   # job
        assert not spec.matches(1, "shuffle", 2, peer=0)   # peer
        # Unconstrained keys match anything.
        assert FaultSpec(point="stage", action="delay").matches(7, "x", None)

    def test_job_lt_gates_retries(self):
        spec = FaultSpec(point="stage", action="crash", job_lt=2)
        assert spec.matches(0, "map", 0) and spec.matches(0, "map", 1)
        assert not spec.matches(0, "map", 2)    # the retry attempt survives
        assert not spec.matches(0, "map", None)  # unknown job never matches

    def test_times_budget(self):
        spec = FaultSpec(point="stage", action="delay", times=2)
        assert spec.matches(0, "map", 0)
        spec.fired = 2
        assert not spec.matches(0, "map", 0)


class TestHooks:
    def test_stage_delay_and_slow(self):
        plan = FaultPlan.parse(
            "stage.delay,rank=0,stage=map,secs=0.03;"
            "stage.slow,rank=0,stage=map,factor=3"
        )
        t0 = time.monotonic()
        pacer = plan.stage_enter(0, "map", job=0)
        assert time.monotonic() - t0 >= 0.03
        assert isinstance(pacer, Pacer) and pacer.factor == 3.0
        assert plan.stage_enter(1, "map", job=0) is None
        assert plan.stage_enter(0, "reduce", job=0) is None

    def test_comm_delay(self):
        plan = FaultPlan.parse("send.delay,rank=1,peer=2,secs=0.03")
        t0 = time.monotonic()
        plan.comm_op("send", 1, 2, "shuffle", 0)
        assert time.monotonic() - t0 >= 0.03
        t0 = time.monotonic()
        plan.comm_op("recv", 1, 2, "shuffle", 0)  # wrong point: no delay
        plan.comm_op("send", 1, 3, "shuffle", 0)  # wrong peer: no delay
        assert time.monotonic() - t0 < 0.02

    def test_env_cache_tracks_value(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert faults.active_plan() is None
        monkeypatch.setenv(ENV_VAR, "stage.delay,secs=0.5")
        plan = faults.active_plan()
        assert plan is not None and plan.specs[0].secs == 0.5
        assert faults.active_plan() is plan  # cached on the string value
        monkeypatch.setenv(ENV_VAR, "")
        assert faults.active_plan() is None

    def test_module_hooks_are_noops_without_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert faults.stage_enter(0, "map", 0) is None
        faults.comm_op("send", 0, 1, "map", 0)  # must not raise


class TestPacer:
    def test_total_delay_independent_of_granularity(self):
        def run(checkpoints: int) -> float:
            pacer = Pacer(factor=3.0)
            t0 = time.monotonic()
            for _ in range(checkpoints):
                time.sleep(0.03 / checkpoints)  # the "real work"
                pacer.checkpoint()
            return time.monotonic() - t0

        coarse, fine = run(1), run(6)
        # Both stretch ~0.03s of work to ~0.09s (plus scheduler noise).
        assert 0.08 <= coarse <= 0.30
        assert 0.08 <= fine <= 0.30

    def test_one_time_extra_paid_once(self):
        pacer = Pacer(factor=1.0, secs=0.04)
        t0 = time.monotonic()
        pacer.checkpoint()
        assert time.monotonic() - t0 >= 0.04
        t0 = time.monotonic()
        pacer.checkpoint()
        assert time.monotonic() - t0 < 0.03

    def test_poll_preempts_remaining_delay(self):
        pacer = Pacer(factor=1.0, secs=5.0)
        calls = []

        def poll():
            calls.append(None)
            return len(calls) >= 2

        t0 = time.monotonic()
        fired = pacer.checkpoint(poll)
        # One 20ms slice, then the poll fires: 5s of delay is dropped.
        assert fired and time.monotonic() - t0 < 1.0

    def test_poll_false_sleeps_full_delay(self):
        pacer = Pacer(factor=1.0, secs=0.05)
        t0 = time.monotonic()
        fired = pacer.checkpoint(lambda: False)
        assert not fired and time.monotonic() - t0 >= 0.05
