"""Tests for local sorting and merging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvpairs.records import KEY_BYTES, VALUE_BYTES, RecordBatch
from repro.kvpairs.sorting import is_sorted, merge_sorted, sort_batch
from repro.kvpairs.teragen import teragen


def batch_from_keys(key_rows):
    n = len(key_rows)
    keys = np.array(key_rows, dtype=np.uint8).reshape(n, KEY_BYTES)
    values = np.zeros((n, VALUE_BYTES), dtype=np.uint8)
    return RecordBatch.from_arrays(keys, values)


class TestSortBatch:
    def test_sorts_random_data(self, small_batch):
        out = sort_batch(small_batch)
        assert is_sorted(out)
        assert len(out) == len(small_batch)

    def test_matches_python_sorted(self):
        b = teragen(300, seed=4)
        out = sort_batch(b)
        expected = sorted(bytes(k) for k in b.keys)
        assert [bytes(k) for k in out.keys] == expected

    def test_tie_break_on_last_two_bytes(self):
        # Same 8-byte prefix, different 2-byte suffix.
        rows = [[1] * 8 + [0, 2], [1] * 8 + [0, 1], [1] * 8 + [0, 3]]
        out = sort_batch(batch_from_keys(rows))
        suffixes = [bytes(k)[-1] for k in out.keys]
        assert suffixes == [1, 2, 3]

    def test_stability_preserves_value_order_for_equal_keys(self):
        keys = np.zeros((3, KEY_BYTES), dtype=np.uint8)
        values = np.zeros((3, VALUE_BYTES), dtype=np.uint8)
        values[:, 0] = [10, 20, 30]
        b = RecordBatch.from_arrays(keys, values)
        out = sort_batch(b)
        assert list(out.raw_view()[:, KEY_BYTES]) == [10, 20, 30]

    def test_empty_and_singleton(self):
        assert len(sort_batch(RecordBatch.empty())) == 0
        one = teragen(1, seed=0)
        assert sort_batch(one) == one

    @given(st.integers(0, 400))
    def test_sort_property(self, n):
        b = teragen(n, seed=n + 1)
        out = sort_batch(b)
        assert is_sorted(out)
        # Permutation: sorted key multisets match.
        assert sorted(bytes(k) for k in b.keys) == [bytes(k) for k in out.keys]


class TestIsSorted:
    def test_detects_unsorted(self):
        rows = [[2] + [0] * 9, [1] + [0] * 9]
        assert not is_sorted(batch_from_keys(rows))

    def test_equal_keys_are_sorted(self):
        rows = [[1] * 10, [1] * 10]
        assert is_sorted(batch_from_keys(rows))

    def test_suffix_violation_detected(self):
        rows = [[1] * 8 + [0, 2], [1] * 8 + [0, 1]]
        assert not is_sorted(batch_from_keys(rows))


class TestMergeSorted:
    def test_merge_equals_global_sort(self):
        b = teragen(600, seed=8)
        runs = [sort_batch(b.slice(0, 200)), sort_batch(b.slice(200, 450)),
                sort_batch(b.slice(450, 600))]
        merged = merge_sorted(runs)
        assert merged == sort_batch(b)

    def test_merge_rejects_unsorted_run(self):
        b = teragen(100, seed=9)
        with pytest.raises(ValueError):
            merge_sorted([b])

    def test_merge_empty_runs(self):
        assert len(merge_sorted([RecordBatch.empty(), RecordBatch.empty()])) == 0
