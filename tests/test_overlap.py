"""Streaming phase overlap: byte-identity, validation, and telemetry.

The overlap execution mode (``overlap=True`` on either sort spec) hides
shuffle communication behind Map and Reduce compute — the acceptance
contract is that it never changes a single output byte:

* uncoded and coded (both schedules), in-memory and out-of-core, on the
  thread, process, and TCP backends, the overlapped output equals the
  staged output byte for byte;
* an injected map crash under ``$REPRO_FAULT_PLAN`` retries an
  overlapped job byte-identically;
* overlap and speculation are mutually exclusive and rejected
  synchronously (spec validation and the CLI);
* the run meta reports the overlap span and the hidden-communication
  seconds, and the ``Comm`` stage listener observes Map genuinely
  re-entered inside the shuffle span (the stages really interleave).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.terasort import _terasort_program, prepare_terasort
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.process import ProcessCluster
from repro.session import CodedTeraSortSpec, Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

_CTX = multiprocessing.get_context("fork")


def _bytes(run):
    return [p.to_bytes() for p in run.partitions]


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def _specs(data, k, r, overlap, memory_budget=None):
    """One spec per lane: uncoded, coded serial, coded parallel."""
    return {
        "uncoded": TeraSortSpec(
            data=data, overlap=overlap, memory_budget=memory_budget
        ),
        "coded-serial": CodedTeraSortSpec(
            data=data,
            redundancy=r,
            schedule="serial",
            overlap=overlap,
            memory_budget=memory_budget,
        ),
        "coded-parallel": CodedTeraSortSpec(
            data=data,
            redundancy=r,
            schedule="parallel",
            overlap=overlap,
            memory_budget=memory_budget,
        ),
    }


class TestByteIdentityInproc:
    """The full (K, r) grid on the thread backend, all three lanes."""

    @pytest.mark.parametrize("k,r", [(4, 1), (6, 2), (8, 3)])
    def test_overlap_matches_staged(self, k, r, thread_cluster_factory):
        data = teragen(4000 * k // 4, seed=100 + k)
        for lane in ["uncoded", "coded-serial", "coded-parallel"]:
            with Session(thread_cluster_factory(k)) as s:
                staged = s.submit(_specs(data, k, r, False)[lane]).result()
            with Session(thread_cluster_factory(k)) as s:
                overlapped = s.submit(_specs(data, k, r, True)[lane]).result()
            assert _bytes(overlapped) == _bytes(staged), lane
            validate_sorted_permutation(data, overlapped.partitions)
            meta = overlapped.meta["overlap"]
            assert meta["span_seconds"] > 0.0
            assert meta["hidden_seconds"] >= 0.0
            assert len(meta["per_node_hidden_seconds"]) == k
            assert "overlap" not in staged.meta

    @pytest.mark.parametrize("k,r", [(4, 1), (6, 2)])
    def test_out_of_core_overlap_under_8mib(
        self, k, r, thread_cluster_factory
    ):
        budget = 8 * 1024 * 1024
        data = teragen(30_000, seed=200 + k)
        for lane in ["uncoded", "coded-serial", "coded-parallel"]:
            with Session(thread_cluster_factory(k)) as s:
                staged = s.submit(
                    _specs(data, k, r, False, budget)[lane]
                ).result()
            with Session(thread_cluster_factory(k)) as s:
                overlapped = s.submit(
                    _specs(data, k, r, True, budget)[lane]
                ).result()
            assert _bytes(overlapped) == _bytes(staged), lane
            assert overlapped.meta["oc_peak_resident_bytes"] <= budget, lane
            assert overlapped.meta["overlap"]["span_seconds"] > 0.0


class TestByteIdentityProcess:
    """Real multiprocessing workers: one (K, r), all three lanes."""

    def test_overlap_matches_staged(self):
        k, r = 4, 1
        data = teragen(4000, seed=300)
        for lane in ["uncoded", "coded-serial", "coded-parallel"]:
            with Session(ProcessCluster(k, timeout=120)) as s:
                staged = s.submit(_specs(data, k, r, False)[lane]).result()
            with Session(ProcessCluster(k, timeout=120)) as s:
                overlapped = s.submit(_specs(data, k, r, True)[lane]).result()
            assert _bytes(overlapped) == _bytes(staged), lane
            assert overlapped.meta["overlap"]["span_seconds"] > 0.0


class TestByteIdentityTcp:
    """Localhost TCP mesh: overlapped == staged for uncoded + coded."""

    def test_overlap_matches_staged(self):
        from repro.runtime.tcp import TcpCluster, run_worker

        k, r = 4, 1
        data = teragen(3000, seed=400)

        def submit_all(session, overlap):
            handles = [
                session.submit(TeraSortSpec(data=data, overlap=overlap)),
                session.submit(
                    CodedTeraSortSpec(
                        data=data,
                        redundancy=r,
                        schedule="parallel",
                        overlap=overlap,
                    )
                ),
            ]
            return [h.result() for h in handles]

        with TcpCluster(
            k, "tcp://127.0.0.1:0", timeout=120, connect_timeout=60
        ) as cluster:
            procs = [
                _CTX.Process(
                    target=run_worker,
                    kwargs=dict(
                        join=cluster.address,
                        quiet=True,
                        connect_timeout=30.0,
                        handshake_timeout=30.0,
                    ),
                    daemon=True,
                )
                for _ in range(k)
            ]
            for p in procs:
                p.start()
            try:
                with Session(cluster) as session:
                    staged = submit_all(session, False)
                    overlapped = submit_all(session, True)
            finally:
                for p in procs:
                    p.join(15.0)
                    if p.is_alive():  # pragma: no cover - defensive
                        p.terminate()
                        p.join()
        for st, ov in zip(staged, overlapped):
            assert _bytes(ov) == _bytes(st)
            assert ov.meta["overlap"]["span_seconds"] > 0.0


class TestOverlapWithFaults:
    """Overlap composes with the fault-tolerant runtime."""

    def test_map_crash_retried_byte_identical(self, no_plan):
        k = 4
        data = teragen(2000, seed=500)
        with Session(ProcessCluster(k, timeout=60)) as s:
            reference = _bytes(
                s.submit(TeraSortSpec(data=data)).result(timeout=60)
            )
        no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=map,job_lt=1")
        with Session(
            ProcessCluster(k, timeout=60), max_retries=2, retry_backoff=0.05
        ) as s:
            handle = s.submit(TeraSortSpec(data=data, overlap=True))
            run = handle.result(timeout=60)
        assert _bytes(run) == reference
        assert len(handle.attempts) == 2
        assert handle.attempts[0].error is not None
        assert handle.attempts[1].error is None


class TestValidation:
    """overlap + speculation is rejected synchronously, everywhere."""

    def test_spec_rejects_overlap_with_speculation(self, tmp_path):
        from repro.kvpairs.datasource import FileSource
        from repro.kvpairs.teragen import teragen_to_file

        path = str(tmp_path / "in.bin")
        teragen_to_file(path, 1000, seed=1)
        with pytest.raises(ValueError, match="mutually exclusive"):
            TeraSortSpec(
                input=FileSource(path), overlap=True, speculation=True
            ).validate(4)

    def test_prepare_rejects_overlap_with_speculation(self, tmp_path):
        from repro.kvpairs.datasource import FileSource
        from repro.kvpairs.teragen import teragen_to_file

        path = str(tmp_path / "in.bin")
        teragen_to_file(path, 1000, seed=2)
        with pytest.raises(ValueError, match="mutually exclusive"):
            prepare_terasort(
                4, FileSource(path), speculation=True, overlap=True
            )

    def test_cli_rejects_overlap_with_speculation(self, tmp_path):
        from repro.cli import main
        from repro.kvpairs.teragen import teragen_to_file

        path = str(tmp_path / "in.bin")
        teragen_to_file(path, 1000, seed=3)
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "sort",
                    "-K",
                    "4",
                    "--input",
                    path,
                    "--overlap",
                    "--speculation",
                ]
            )

    def test_cli_overlap_runs(self):
        from repro.cli import main

        assert main(["sort", "-K", "4", "-n", "2000", "--overlap"]) == 0
        assert (
            main(
                [
                    "sort",
                    "-K",
                    "4",
                    "-r",
                    "2",
                    "-n",
                    "2000",
                    "--schedule",
                    "parallel",
                    "--overlap",
                ]
            )
            == 0
        )


class TestStageInterleaving:
    """The Comm stage listener proves the phases really overlap."""

    def test_listener_sees_map_inside_shuffle(self, thread_cluster_factory):
        k = 4
        data = teragen(4000, seed=600)
        job = prepare_terasort(k, data=data, overlap=True)
        events = {rank: [] for rank in range(k)}

        def factory(comm):
            log = events[comm.rank]
            comm.add_stage_listener(
                lambda prev, cur: log.append((prev, cur))
            )
            return _terasort_program(comm, job.payloads[comm.rank])

        result = thread_cluster_factory(k).run(factory)
        assert len(result.results) == k
        for rank in range(k):
            # Nested map scopes inside the overlapped shuffle loop show up
            # as shuffle -> map transitions; the staged path never emits
            # them (its map fully precedes its shuffle).
            assert ("shuffle", "map") in events[rank], events[rank]

    def test_listener_removal(self, thread_cluster_factory):
        k = 2
        data = teragen(1000, seed=601)
        job = prepare_terasort(k, data=data)
        seen = []

        def factory(comm):
            listener = lambda prev, cur: seen.append((comm.rank, prev, cur))
            comm.add_stage_listener(listener)
            comm.remove_stage_listener(listener)
            comm.remove_stage_listener(listener)  # unknown: ignored
            return _terasort_program(comm, job.payloads[comm.rank])

        thread_cluster_factory(k).run(factory)
        assert seen == []
