"""Equivalence and attribution tests for the pipelined parallel shuffle.

The acceptance bar: ``schedule="parallel"`` must produce byte-identical
output to ``schedule="serial"`` for CodedTeraSort and Coded MapReduce
across (K, r) in {(4, 1), (6, 2), (8, 3)} on both the thread and process
backends.
"""

from __future__ import annotations

import pytest

from repro.core.cmr import run_mapreduce
from repro.core.coded_terasort import run_coded_terasort
from repro.core.jobs import WordCountJob
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.utils.subsets import binomial

GRID = [(4, 1), (6, 2), (8, 3)]

_WORDS = (
    "coded terasort trades redundant map computation for an r fold "
    "reduction of the shuffle bottleneck via structured placement and "
    "xor coded multicasts the groups transmit concurrently when disjoint"
).split()


def _make_cluster(backend: str, k: int):
    if backend == "thread":
        return ThreadCluster(k, recv_timeout=60)
    return ProcessCluster(k, timeout=120)


def _cmr_files(k: int, r: int):
    """One small text per file; N = 2 * C(K, r) (batched placement)."""
    n = 2 * binomial(k, r)
    return [
        " ".join(_WORDS[(i + j) % len(_WORDS)] for j in range(7))
        for i in range(n)
    ]


class TestByteIdenticalOutputs:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("k,r", GRID)
    def test_coded_terasort_serial_vs_parallel(self, backend, k, r):
        data = teragen(2500 + 131 * k, seed=100 * k + r)
        runs = {}
        for schedule in ("serial", "parallel"):
            run = run_coded_terasort(
                _make_cluster(backend, k), data, redundancy=r,
                schedule=schedule,
            )
            validate_sorted_permutation(data, run.partitions)
            runs[schedule] = run
        for a, b in zip(runs["serial"].partitions, runs["parallel"].partitions):
            assert a == b  # byte-identical partitions

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("k,r", GRID)
    def test_cmr_serial_vs_parallel(self, backend, k, r):
        files = _cmr_files(k, r)
        outputs = {}
        for schedule in ("serial", "parallel"):
            run = run_mapreduce(
                _make_cluster(backend, k),
                WordCountJob(),
                files,
                redundancy=r,
                coded=True,
                schedule=schedule,
            )
            outputs[schedule] = run.outputs
        assert outputs["serial"] == outputs["parallel"]

    def test_shuffle_load_identical_across_schedules(self):
        """Scheduling changes time, never bytes (real engine)."""
        data = teragen(4000, seed=9)
        loads = {}
        for schedule in ("serial", "parallel"):
            run = run_coded_terasort(
                ThreadCluster(6, recv_timeout=60), data, redundancy=2,
                schedule=schedule,
            )
            loads[schedule] = run.traffic.load_bytes("shuffle")
        assert loads["serial"] == loads["parallel"] > 0


class TestParallelRunMetadata:
    def test_meta_reports_rounds_and_speedup(self):
        data = teragen(2000, seed=4)
        run = run_coded_terasort(
            ThreadCluster(6, recv_timeout=60), data, redundancy=2,
            schedule="parallel",
        )
        assert run.meta["schedule"] == "parallel"
        assert run.meta["schedule_rounds"] <= run.meta["schedule_turns"]
        assert run.meta["parallel_speedup"] >= 1.0
        assert run.meta["shuffle_span_seconds"] > 0.0

    def test_stage_breakdown_stays_six_stage_and_exclusive(self):
        data = teragen(3000, seed=5)
        run = run_coded_terasort(
            ThreadCluster(4, recv_timeout=60), data, redundancy=2,
            schedule="parallel",
        )
        assert run.stage_times.stages == [
            "codegen", "map", "encode", "shuffle", "decode", "reduce",
        ]
        # Exclusive attribution: the overlapped span is at least the
        # exclusive shuffle time and is reported separately in meta.
        assert (
            run.meta["shuffle_span_seconds"]
            >= run.stage_times["shuffle"] - 1e-9
        )

    def test_cmr_meta_reports_schedule(self):
        files = _cmr_files(4, 1)
        run = run_mapreduce(
            ThreadCluster(4, recv_timeout=60), WordCountJob(), files,
            redundancy=1, coded=True, schedule="parallel",
        )
        assert run.meta["schedule"] == "parallel"
        # Same telemetry surface as CodedTeraSort's parallel runs.
        assert run.meta["schedule_rounds"] <= run.meta["schedule_turns"]
        assert run.meta["parallel_speedup"] >= 1.0
        assert run.meta["shuffle_span_seconds"] > 0.0

    def test_unknown_schedule_rejected(self):
        data = teragen(100, seed=1)
        with pytest.raises(ValueError, match="schedule"):
            run_coded_terasort(
                ThreadCluster(4), data, redundancy=2, schedule="warp"
            )
        with pytest.raises(ValueError, match="schedule"):
            run_mapreduce(
                ThreadCluster(4), WordCountJob(), ["a"] * 4,
                redundancy=1, coded=True, schedule="warp",
            )
