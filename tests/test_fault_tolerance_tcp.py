"""Fault tolerance over the real TCP backend (the acceptance bar).

Workers are genuine ``run_worker`` processes dialing the coordinator
over 127.0.0.1, kept under a supervisor restart loop (the documented
deployment mode: a failed job stops surviving workers cleanly, so every
dead slot must rejoin the standing rendezvous before the session's
automatic retry can re-admit K workers).

Covers the issue's acceptance criterion — ``$REPRO_FAULT_PLAN``
injecting one mid-shuffle worker crash, the submitted TeraSort completes
with byte-identical output via automatic retry and the handle records
>= 2 attempts with the typed failure cause — plus a TCP retry storm that
exhausts ``max_retries`` and leaves the session usable.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.errors import WorkerFailure
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster, run_worker
from repro.session import Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

_CTX = multiprocessing.get_context("fork")
K = 4


class _Supervisor:
    """Restart loop keeping K worker slots alive against one rendezvous."""

    def __init__(self, address: str) -> None:
        self._address = address
        self._procs = [self._spawn() for _ in range(K)]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _spawn(self):
        proc = _CTX.Process(
            target=run_worker,
            kwargs=dict(join=self._address, quiet=True,
                        connect_timeout=60.0, handshake_timeout=60.0),
            daemon=True,
        )
        proc.start()
        return proc

    def _loop(self) -> None:
        while not self._stop.is_set():
            for i, proc in enumerate(self._procs):
                if not proc.is_alive():
                    self._procs[i] = self._spawn()
            time.sleep(0.1)

    def halt(self) -> None:
        """Stop respawning (call before the session stops the workers)."""
        self._stop.set()
        self._thread.join()

    def reap(self) -> None:
        self.halt()
        for proc in self._procs:
            proc.join(10)
            if proc.is_alive():
                proc.terminate()
                proc.join()


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def test_mid_shuffle_crash_retried_byte_identical_over_tcp(no_plan):
    """The acceptance test: one injected mid-shuffle crash on TCP, the
    job completes byte-identically via automatic retry, >= 2 attempts
    recorded with the typed cause."""
    data = teragen(2000, seed=51)
    with Session(ProcessCluster(K, timeout=60)) as s:
        reference = [
            p.to_bytes()
            for p in s.submit(TeraSortSpec(data=data)).result().partitions
        ]

    no_plan.setenv(ENV_VAR, "send.crash,rank=1,stage=shuffle,job_lt=1")
    with TcpCluster(
        K, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60,
        heartbeat_interval=0.1, failure_timeout=15.0,
    ) as cluster:
        supervisor = _Supervisor(cluster.address)
        try:
            with Session(
                cluster, max_retries=2, retry_backoff=0.2
            ) as session:
                handle = session.submit(TeraSortSpec(data=data))
                run = handle.result(timeout=120)
                supervisor.halt()
            validate_sorted_permutation(data, run.partitions)
            assert [p.to_bytes() for p in run.partitions] == reference
            assert len(handle.attempts) >= 2
            assert isinstance(handle.attempts[0].error, WorkerFailure)
            assert "TcpCluster" in str(handle.attempts[0].error)
            assert handle.attempts[-1].error is None
        finally:
            supervisor.reap()


def test_retry_storm_exhausts_then_session_serves_again_over_tcp(no_plan):
    """Crashes on attempts 0 and 1 exhaust max_retries=1; the job after
    (sequence 2, past the plan's job_lt gate) succeeds on the same
    session once replacement workers rejoin."""
    data = teragen(1500, seed=52)
    # job_lt=2 gates the storm: respawned workers inherit the plan, so
    # it must expire by job sequence rather than by environment edits.
    no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=map,job_lt=2")
    with TcpCluster(
        K, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60,
        heartbeat_interval=0.1, failure_timeout=15.0,
    ) as cluster:
        supervisor = _Supervisor(cluster.address)
        try:
            with Session(
                cluster, max_retries=1, retry_backoff=0.2
            ) as session:
                doomed = session.submit(TeraSortSpec(data=data))
                err = doomed.exception(timeout=120)
                assert isinstance(err, WorkerFailure)
                assert len(doomed.attempts) == 2
                assert all(
                    isinstance(a.error, WorkerFailure)
                    for a in doomed.attempts
                )
                ok = session.submit(TeraSortSpec(data=data))
                validate_sorted_permutation(
                    data, ok.result(timeout=120).partitions
                )
                supervisor.halt()
        finally:
            supervisor.reap()
