"""Tests for the token-bucket pacer (uses a fake clock — no sleeping)."""

from __future__ import annotations

import pytest

from repro.runtime.ratelimit import TokenBucket


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def sleep(self, dt):
        assert dt >= 0
        self.t += dt


def make_bucket(rate=1000.0, burst=100):
    clock = FakeClock()
    bucket = TokenBucket(rate, burst_bytes=burst, clock=clock, sleep=clock.sleep)
    return bucket, clock


class TestTokenBucket:
    def test_burst_passes_instantly(self):
        bucket, clock = make_bucket()
        bucket.consume(100)
        assert clock.t == 0.0

    def test_sustained_rate(self):
        bucket, clock = make_bucket(rate=1000.0, burst=100)
        bucket.consume(1100)  # 100 from burst + 1000 at 1000 B/s
        assert clock.t == pytest.approx(1.0, rel=0.01)

    def test_refill_after_idle(self):
        bucket, clock = make_bucket(rate=1000.0, burst=100)
        bucket.consume(100)
        clock.t += 10.0  # long idle: bucket refills to burst only
        bucket.consume(100)
        assert clock.t == pytest.approx(10.0)

    def test_large_message_paced_smoothly(self):
        bucket, clock = make_bucket(rate=500.0, burst=50)
        bucket.consume(5000)
        # 50 free + 4950 at 500 B/s = 9.9 s
        assert clock.t == pytest.approx(9.9, rel=0.01)

    def test_zero_consume_free(self):
        bucket, clock = make_bucket()
        bucket.consume(0)
        assert clock.t == 0.0

    def test_negative_rejected(self):
        bucket, _ = make_bucket()
        with pytest.raises(ValueError):
            bucket.consume(-1)

    def test_try_consume(self):
        bucket, clock = make_bucket(rate=1000.0, burst=100)
        assert bucket.try_consume(60)
        assert not bucket.try_consume(60)  # only 40 left
        clock.t += 0.1  # +100 tokens -> capped at 100... 40+100 -> 100
        assert bucket.try_consume(60)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        with pytest.raises(ValueError):
            TokenBucket(100, burst_bytes=-5)

    def test_default_burst_positive(self):
        assert TokenBucket(5.0).burst >= 1

    def test_real_clock_smoke(self):
        """With the real clock, pacing 30 KB at 1 MB/s takes ~0.02-0.2 s."""
        import time

        bucket = TokenBucket(1e6, burst_bytes=10_000)
        start = time.monotonic()
        bucket.consume(30_000)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.015
