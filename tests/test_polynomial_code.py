"""Tests for polynomial-coded matrix-matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.polynomial import (
    PolynomialCodedMatMul,
    PolynomialCodeError,
)


def problem(rows=30, inner=9, cols=14, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((rows, inner)), rng.standard_normal(
        (inner, cols)
    )


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(PolynomialCodeError):
            PolynomialCodedMatMul(np.zeros((4, 3)), np.zeros((4, 3)), 6)

    def test_one_dimensional_rejected(self):
        with pytest.raises(PolynomialCodeError):
            PolynomialCodedMatMul(np.zeros(4), np.zeros((4, 3)), 6)

    def test_too_few_workers(self):
        a, b = problem()
        with pytest.raises(PolynomialCodeError):
            PolynomialCodedMatMul(a, b, num_workers=3, m=2, n=2)

    def test_bad_block_counts(self):
        a, b = problem()
        with pytest.raises(PolynomialCodeError):
            PolynomialCodedMatMul(a, b, 6, m=0, n=2)
        with pytest.raises(PolynomialCodeError):
            PolynomialCodedMatMul(a, b, 200, m=40, n=2)  # m > rows


class TestCorrectness:
    def test_exact_product(self):
        a, b = problem()
        pm = PolynomialCodedMatMul(a, b, num_workers=8, m=2, n=3)
        out = pm.multiply(np.random.default_rng(1))
        assert out.c.shape == (30, 14)
        assert np.allclose(out.c, a @ b, atol=1e-8)

    def test_recovery_threshold_is_mn(self):
        a, b = problem()
        pm = PolynomialCodedMatMul(a, b, num_workers=10, m=3, n=2)
        assert pm.recovery_threshold == 6
        out = pm.multiply(np.random.default_rng(2))
        assert len(out.waited_for) == 6

    def test_unpadded_dimensions(self):
        """Rows/cols not divisible by m/n exercise the padding path."""
        a, b = problem(rows=31, cols=13)
        pm = PolynomialCodedMatMul(a, b, num_workers=14, m=4, n=3)
        out = pm.multiply(np.random.default_rng(3))
        assert np.allclose(out.c, a @ b, atol=1e-7)

    def test_m_equals_n_equals_one(self):
        """Degenerate 1x1 split: plain replication, any 1 worker decodes."""
        a, b = problem()
        pm = PolynomialCodedMatMul(a, b, num_workers=4, m=1, n=1)
        out = pm.multiply(np.random.default_rng(4))
        assert len(out.waited_for) == 1
        assert np.allclose(out.c, a @ b, atol=1e-10)

    def test_every_worker_subset_decodes(self):
        """The MDS property: whichever mn workers finish first, the
        product is exact (forced by adversarial latency orderings)."""
        a, b = problem(rows=12, inner=5, cols=8)
        pm = PolynomialCodedMatMul(a, b, num_workers=6, m=2, n=2)
        for seed in range(20):
            out = pm.multiply(np.random.default_rng(seed))
            assert np.allclose(out.c, a @ b, atol=1e-7), seed

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_property_exact(self, data):
        m = data.draw(st.integers(1, 3))
        n = data.draw(st.integers(1, 3))
        extra = data.draw(st.integers(0, 3))
        rows = data.draw(st.integers(m, 20))
        cols = data.draw(st.integers(n, 20))
        inner = data.draw(st.integers(1, 10))
        a, b = problem(rows=rows, inner=inner, cols=cols,
                       seed=data.draw(st.integers(0, 99)))
        pm = PolynomialCodedMatMul(a, b, m * n + extra, m=m, n=n)
        out = pm.multiply(np.random.default_rng(data.draw(st.integers(0, 99))))
        assert np.allclose(out.c, a @ b, atol=1e-6)


class TestTiming:
    def test_time_is_kth_order_statistic(self):
        a, b = problem()
        pm = PolynomialCodedMatMul(a, b, num_workers=8, m=2, n=2)
        out = pm.multiply(np.random.default_rng(5))
        assert out.time == pytest.approx(np.sort(out.worker_times)[3])

    def test_expected_time_matches_monte_carlo(self):
        a, b = problem()
        pm = PolynomialCodedMatMul(
            a, b, num_workers=8, m=2, n=2,
            latency=ShiftedExponential(1.0, 0.8),
        )
        rng = np.random.default_rng(6)
        times = [pm.multiply(rng).time for _ in range(2500)]
        assert np.mean(times) == pytest.approx(pm.expected_time(), rel=0.05)

    def test_more_workers_reduce_expected_time(self):
        """Extra workers are pure straggler slack at fixed (m, n)."""
        a, b = problem()
        lat = ShiftedExponential(1.0, 0.5)
        few = PolynomialCodedMatMul(a, b, 4, m=2, n=2, latency=lat)
        many = PolynomialCodedMatMul(a, b, 10, m=2, n=2, latency=lat)
        assert many.expected_time() < few.expected_time()

    def test_work_per_worker(self):
        a, b = problem()
        pm = PolynomialCodedMatMul(a, b, num_workers=9, m=2, n=3)
        assert pm.work_per_worker == pytest.approx(1 / 6)
