"""Tests for coded distributed gradient descent and its harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.regression import coded_least_squares
from repro.stragglers.runner import (
    render_straggler_table,
    straggler_comparison,
)


def problem(rows=120, cols=8, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, cols))
    x_true = rng.standard_normal(cols)
    b = a @ x_true + noise * rng.standard_normal(rows)
    return a, b, x_true


class TestGradientDescent:
    def test_input_validation(self):
        a, b, _ = problem()
        with pytest.raises(ValueError):
            coded_least_squares(a, b[:-1], 4)
        with pytest.raises(ValueError):
            coded_least_squares(a, b, 4, iterations=0)
        with pytest.raises(ValueError):
            coded_least_squares(np.zeros(5), np.zeros(5), 2)

    def test_converges_to_truth_noiseless(self):
        a, b, x_true = problem(noise=0.0)
        run = coded_least_squares(
            a, b, 6, scheme="coded", recovery_threshold=4, iterations=300
        )
        assert np.allclose(run.x, x_true, atol=1e-3)
        assert run.losses[-1] < 1e-5

    def test_loss_monotone_with_default_step(self):
        a, b, _ = problem(noise=0.1)
        run = coded_least_squares(a, b, 5, scheme="uncoded", iterations=60)
        for prev, cur in zip(run.losses, run.losses[1:]):
            assert cur <= prev + 1e-12

    def test_iterates_identical_across_schemes(self):
        """Coding is lossless: every scheme walks the same trajectory."""
        a, b, _ = problem(noise=0.05)
        runs = [
            coded_least_squares(a, b, 6, scheme="uncoded", iterations=25),
            coded_least_squares(
                a, b, 6, scheme="replication", replication=2, iterations=25
            ),
            coded_least_squares(
                a, b, 6, scheme="coded", recovery_threshold=4, iterations=25
            ),
        ]
        for other in runs[1:]:
            assert np.allclose(runs[0].x, other.x, atol=1e-8)
            assert runs[0].losses == pytest.approx(other.losses, abs=1e-9)

    def test_timing_bookkeeping(self):
        a, b, _ = problem()
        run = coded_least_squares(a, b, 4, iterations=10)
        assert len(run.iteration_times) == 10
        assert run.total_time == pytest.approx(sum(run.iteration_times))
        assert run.mean_iteration_time == pytest.approx(run.total_time / 10)
        assert all(t > 0 for t in run.iteration_times)

    def test_custom_step_used(self):
        a, b, _ = problem()
        tiny = coded_least_squares(a, b, 4, iterations=5, step=1e-9)
        # A vanishing step leaves x at (almost) the origin.
        assert np.linalg.norm(tiny.x) < 1e-5


class TestComparison:
    def test_default_band_matches_ref11(self):
        """The headline: coded saves 31.3%-35.7% vs uncoded."""
        results = straggler_comparison(iterations=80, seed=3)
        by_scheme = {r.scheme: r for r in results}
        saving = by_scheme["coded"].reduction_vs_uncoded
        assert 0.25 < saving < 0.45  # simulated; expectation ~0.335
        # Analytic expectation sits inside the quoted band.
        exp_saving = 1.0 - (
            by_scheme["coded"].expected_iteration_time
            / by_scheme["uncoded"].expected_iteration_time
        )
        assert 0.313 <= exp_saving <= 0.357

    def test_coded_beats_replication(self):
        results = straggler_comparison(iterations=60)
        by_scheme = {r.scheme: r for r in results}
        assert (
            by_scheme["coded"].mean_iteration_time
            < by_scheme["replication"].mean_iteration_time
        )

    def test_losses_agree_across_schemes(self):
        results = straggler_comparison(iterations=40)
        losses = [r.final_loss for r in results]
        assert max(losses) - min(losses) < 1e-9

    def test_uncoded_reduction_is_zero(self):
        results = straggler_comparison(iterations=20)
        assert results[0].scheme == "uncoded"
        assert results[0].reduction_vs_uncoded == pytest.approx(0.0)

    def test_render_table(self):
        results = straggler_comparison(iterations=10)
        text = render_straggler_table(results)
        assert "uncoded" in text and "coded" in text and "%" in text
        md = render_straggler_table(results, markdown=True)
        assert "|" in md

    def test_light_tail_shrinks_the_gain(self):
        """With almost no straggling the coded saving collapses."""
        light = ShiftedExponential(shift=1.0, rate=50.0)
        results = straggler_comparison(iterations=30, latency=light)
        by_scheme = {r.scheme: r for r in results}
        assert by_scheme["coded"].reduction_vs_uncoded < 0.1
