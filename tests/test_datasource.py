"""DataSource descriptors: equivalence, splitting, and control-plane size.

The acceptance property under test: for file/teragen inputs the control
plane carries *descriptors*, never record payloads — a prepared job's
per-rank pickles stay ~hundreds of bytes no matter the dataset size —
while every way of reading a source (load, stream, subrange, via a
placement split) yields byte-identical records.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.placement import CodedPlacement, UncodedPlacement, split_even_ranges
from repro.core.terasort import prepare_terasort
from repro.core.coded_terasort import prepare_coded_terasort
from repro.kvpairs.datasource import (
    DEFAULT_BATCH_RECORDS,
    FileSource,
    InlineSource,
    TeragenSource,
    as_source,
)
from repro.kvpairs.records import RECORD_BYTES, RecordBatch
from repro.kvpairs.teragen import teragen, teragen_to_file
from repro.kvpairs.validation import validate_sorted_iter


class TestTeragenSource:
    def test_subrange_alignment_independence(self):
        src = TeragenSource(150_000, seed=21)
        full = src.load()
        assert len(full) == 150_000
        for start, count in ((0, 10), (65_530, 20), (99_999, 50_001)):
            sub = src.subrange(start, count)
            assert isinstance(sub, TeragenSource)
            assert np.array_equal(
                sub.load().array, full.slice(start, start + count).array
            )

    def test_iter_matches_load_any_window(self):
        src = TeragenSource(30_000, seed=2, start_row=123)
        full = src.load()
        for window in (999, DEFAULT_BATCH_RECORDS, 70_000):
            got = RecordBatch.concat(list(src.iter_batches(window)))
            assert np.array_equal(got.array, full.array)

    def test_row_ids_absolute(self):
        from repro.kvpairs.teragen import extract_row_ids

        sub = TeragenSource(100, seed=0, start_row=70_000)
        ids = extract_row_ids(sub.load())
        assert ids.tolist() == list(range(70_000, 70_100))

    def test_sample_bounded(self):
        src = TeragenSource(1_000_000, seed=0)
        assert len(src.sample(500)) == 500
        assert len(TeragenSource(3, seed=0).sample(500)) == 3

    def test_subrange_bounds_checked(self):
        with pytest.raises(ValueError):
            TeragenSource(10, seed=0).subrange(5, 6)


class TestFileSource:
    def test_gen_file_equals_teragen_source(self, tmp_path):
        path = str(tmp_path / "data.bin")
        written = teragen_to_file(path, 20_000, seed=5)
        assert written == 20_000 * RECORD_BYTES
        fs = FileSource(path)
        ts = TeragenSource(20_000, seed=5)
        assert fs.num_records == 20_000
        assert np.array_equal(fs.load().array, ts.load().array)
        sub = fs.subrange(7_000, 6_000)
        assert np.array_equal(
            sub.load().array, ts.subrange(7_000, 6_000).load().array
        )

    def test_ragged_file_rejected(self, tmp_path):
        path = tmp_path / "ragged.bin"
        path.write_bytes(b"x" * 150)
        with pytest.raises(ValueError, match="not a multiple"):
            FileSource(str(path)).num_records

    def test_strided_sample(self, tmp_path):
        path = str(tmp_path / "data.bin")
        teragen_to_file(path, 1_000, seed=6)
        sample = FileSource(path).sample(10)
        assert len(sample) == 10


class TestInlineSource:
    def test_load_is_the_batch(self):
        batch = teragen(100, seed=1)
        src = InlineSource(batch)
        assert src.load() is batch
        assert np.shares_memory(src.subrange(10, 50).load().array, batch.array)

    def test_as_source(self):
        batch = teragen(5, seed=0)
        assert isinstance(as_source(batch), InlineSource)
        src = TeragenSource(5, seed=0)
        assert as_source(src) is src
        with pytest.raises(TypeError):
            as_source([1, 2, 3])


class TestPlacementSplits:
    def test_split_even_ranges_arithmetic(self):
        assert split_even_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_even_ranges(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
        with pytest.raises(ValueError):
            split_even_ranges(5, 0)

    @pytest.mark.parametrize("placement", [
        UncodedPlacement(4),
        CodedPlacement(5, 2),
        CodedPlacement(4, 2, batches_per_subset=3),
    ])
    def test_split_source_matches_place(self, placement):
        data = teragen(1003, seed=7)
        placed = placement.place(data)
        split = placement.split_source(InlineSource(data))
        assert len(split) == placement.num_files
        for fa, sub in zip(placed, split):
            assert np.array_equal(fa.data.array, sub.load().array)


class TestControlPlanePayloads:
    """File/teragen prepared jobs ship descriptors, not record bytes."""

    def _payload_sizes(self, job):
        return [len(pickle.dumps(p)) for p in job.payloads]

    def test_terasort_descriptor_payloads(self, tmp_path):
        n = 50_000  # 5 MB of records
        path = str(tmp_path / "data.bin")
        teragen_to_file(path, n, seed=1)
        for source in (TeragenSource(n, seed=1), FileSource(path)):
            job = prepare_terasort(4, source)
            sizes = self._payload_sizes(job)
            assert max(sizes) < 2_000, sizes  # descriptors only
        inline = prepare_terasort(4, teragen(n, seed=1))
        assert max(self._payload_sizes(inline)) > n * RECORD_BYTES // 8

    def test_coded_descriptor_payloads(self):
        n = 50_000
        job = prepare_coded_terasort(4, TeragenSource(n, seed=1), 2)
        sizes = self._payload_sizes(job)
        # C(3,1)=3 files per node, each a ~100-byte descriptor.
        assert max(sizes) < 4_000, sizes

    def test_file_source_sort_matches_inline(self, tmp_path):
        # Same bytes through both input paths -> identical SortRun output.
        from repro.runtime.inproc import ThreadCluster

        n = 12_000
        path = str(tmp_path / "data.bin")
        teragen_to_file(path, n, seed=3)
        data = FileSource(path).load().copy()
        cluster = ThreadCluster(3)

        def run(job):
            cr = cluster.run(
                lambda comm: job.builder(comm, job.payloads[comm.rank])
            )
            return job.finalize(cr)

        by_file = run(prepare_terasort(3, FileSource(path)))
        by_value = run(prepare_terasort(3, data))
        for a, b in zip(by_file.partitions, by_value.partitions):
            assert np.array_equal(a.array, b.array)
        validate_sorted_iter(by_file.partitions)
