"""Pure-logic tests for the service scheduler: fair share, priority,
admission control, and quota enforcement — no mesh, no threads.

The invariants under test mirror the policy documented in
:mod:`repro.service.scheduler`:

* fair share: among equal priorities, the least-served tenant's job is
  dispatched next (ties FIFO);
* priority moves a job ahead in the *queue* only — running jobs are
  never preempted;
* admission is a hard typed gate (``QueueFull`` / ``QuotaExceeded``),
  and a rejected job changes no scheduler state;
* backfill: a small job behind a too-big head-of-queue job runs now.
"""

from __future__ import annotations

import pytest

from repro.service.scheduler import (
    AdmissionError,
    FairShareScheduler,
    QueueFull,
    QueuedJob,
    QuotaExceeded,
    TenantQuota,
)


def _job(job_id, tenant="a", priority=0, workers=1, est_bytes=0):
    return QueuedJob(
        job_id=job_id,
        tenant=tenant,
        priority=priority,
        workers=workers,
        est_bytes=est_bytes,
    )


def _drain(sched, free_workers):
    """Dispatch-and-finish until the queue is empty; return the job_id
    trace (each job releases its slot before the next pick, so the trace
    isolates the ordering policy)."""
    order = []
    while True:
        job = sched.next_job(free_workers)
        if job is None:
            break
        order.append(job.job_id)
        sched.job_finished(job.tenant)
    return order


class TestFairShare:
    def test_interleaves_tenants_by_least_service(self):
        sched = FairShareScheduler(total_workers=8)
        # Tenant a floods four jobs, then b adds two: fair share should
        # alternate once b arrives instead of draining a's backlog first.
        for jid in range(4):
            sched.submit(_job(jid, tenant="a"))
        sched.submit(_job(4, tenant="b"))
        sched.submit(_job(5, tenant="b"))
        assert _drain(sched, 8) == [0, 4, 1, 5, 2, 3]

    def test_fifo_within_one_tenant(self):
        sched = FairShareScheduler(total_workers=4)
        for jid in (3, 7, 9):
            sched.submit(_job(jid, tenant="solo"))
        assert _drain(sched, 4) == [3, 7, 9]

    def test_running_jobs_count_as_service(self):
        sched = FairShareScheduler(total_workers=8)
        sched.submit(_job(0, tenant="a"))
        sched.submit(_job(1, tenant="a"))
        sched.submit(_job(2, tenant="b"))
        first = sched.next_job(8)
        assert first.job_id == 0
        # a's job is still *running*: b is now the least-served tenant.
        nxt = sched.next_job(8)
        assert nxt.job_id == 2


class TestPriority:
    def test_priority_jumps_the_queue(self):
        sched = FairShareScheduler(total_workers=4)
        sched.submit(_job(0, tenant="a", priority=0))
        sched.submit(_job(1, tenant="b", priority=5))
        sched.submit(_job(2, tenant="a", priority=0))
        assert _drain(sched, 4) == [1, 0, 2]

    def test_priority_never_preempts_running_jobs(self):
        sched = FairShareScheduler(total_workers=4)
        sched.submit(_job(0, tenant="a", workers=4))
        running = sched.next_job(4)
        assert running.job_id == 0
        # A high-priority job arrives while the mesh is fully occupied:
        # it must wait for free workers, not evict the running job.
        sched.submit(_job(1, tenant="b", priority=99, workers=4))
        assert sched.next_job(0) is None
        assert sched.running_count("a") == 1
        assert sched.queue_depth() == 1
        # Only once the running job releases its workers does it run.
        sched.job_finished("a")
        assert sched.next_job(4).job_id == 1

    def test_priority_beats_fair_share(self):
        sched = FairShareScheduler(total_workers=4)
        sched.submit(_job(0, tenant="hog"))
        sched.submit(_job(1, tenant="hog", priority=1))
        sched.submit(_job(2, tenant="fresh"))
        # hog already served once; fair share alone would pick "fresh",
        # but priority is the primary key.
        first = sched.next_job(4)
        sched.job_finished(first.tenant)
        assert first.job_id == 1


class TestAdmission:
    def test_queue_full_is_typed_and_stateless(self):
        sched = FairShareScheduler(total_workers=4, max_queue_depth=2)
        sched.submit(_job(0))
        sched.submit(_job(1))
        with pytest.raises(QueueFull) as exc_info:
            sched.submit(_job(2))
        assert isinstance(exc_info.value, AdmissionError)
        assert exc_info.value.kind == "queue_full"
        assert sched.queue_depth() == 2

    def test_oversized_job_rejected_at_submit(self):
        sched = FairShareScheduler(total_workers=4)
        with pytest.raises(QuotaExceeded):
            sched.submit(_job(0, workers=5))
        with pytest.raises(QuotaExceeded):
            sched.submit(_job(1, workers=0))
        assert sched.queue_depth() == 0

    def test_per_tenant_max_queued(self):
        quota = TenantQuota(max_queued=1)
        sched = FairShareScheduler(total_workers=4, default_quota=quota)
        sched.submit(_job(0, tenant="a"))
        with pytest.raises(QuotaExceeded) as exc_info:
            sched.submit(_job(1, tenant="a"))
        assert exc_info.value.kind == "quota_exceeded"
        # Another tenant is unaffected by a's quota.
        sched.submit(_job(2, tenant="b"))

    def test_per_tenant_queued_bytes(self):
        quota = TenantQuota(max_queued=16, max_queued_bytes=1000)
        sched = FairShareScheduler(
            total_workers=4, quotas={"a": quota}
        )
        sched.submit(_job(0, tenant="a", est_bytes=600))
        with pytest.raises(QuotaExceeded):
            sched.submit(_job(1, tenant="a", est_bytes=600))
        sched.submit(_job(2, tenant="a", est_bytes=300))

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued=-1)
        with pytest.raises(ValueError):
            FairShareScheduler(total_workers=0)


class TestDispatch:
    def test_max_concurrent_holds_jobs_in_queue(self):
        quota = TenantQuota(max_concurrent=1)
        sched = FairShareScheduler(total_workers=8, default_quota=quota)
        sched.submit(_job(0, tenant="a"))
        sched.submit(_job(1, tenant="a"))
        first = sched.next_job(8)
        assert first.job_id == 0
        # Same tenant at max_concurrent: its second job waits even with
        # the whole mesh free ...
        assert sched.next_job(8) is None
        # ... but does not block other tenants.
        sched.submit(_job(2, tenant="b"))
        assert sched.next_job(8).job_id == 2

    def test_backfill_small_job_behind_big_one(self):
        sched = FairShareScheduler(total_workers=8)
        sched.submit(_job(0, tenant="a", workers=6))
        sched.submit(_job(1, tenant="b", workers=3))
        # Only 3 workers free: the 6-worker head job does not fit, the
        # 3-worker job behind it runs now.
        assert sched.next_job(3).job_id == 1

    def test_requeue_bypasses_admission_and_keeps_seniority(self):
        sched = FairShareScheduler(total_workers=4, max_queue_depth=1)
        sched.submit(_job(0, tenant="a"))
        job = sched.next_job(4)
        sched.job_finished(job.tenant)
        # Queue is full again with a younger job; the retry must still
        # get back in, and its older job_id outranks the newcomer at
        # equal priority and service.
        sched.submit(_job(7, tenant="a"))
        sched.requeue(job)
        assert sched.next_job(4).job_id == 0

    def test_job_finished_releases_slot(self):
        quota = TenantQuota(max_concurrent=2)
        sched = FairShareScheduler(total_workers=8, default_quota=quota)
        for jid in range(3):
            sched.submit(_job(jid, tenant="a"))
        assert sched.next_job(8).job_id == 0
        assert sched.next_job(8).job_id == 1
        assert sched.next_job(8) is None
        sched.job_finished("a")
        assert sched.running_count("a") == 1
        assert sched.next_job(8).job_id == 2


def _shrinkable(job_id, workers, floor=2, tenant="a", priority=0):
    """A queued job that (like the sort specs) re-plans to any width in
    ``[floor, free]``."""

    def shrink(free):
        return free if free >= floor else None

    return QueuedJob(
        job_id=job_id,
        tenant=tenant,
        priority=priority,
        workers=workers,
        est_bytes=0,
        shrink=shrink,
    )


class TestShrinkToFit:
    def test_off_by_default_keeps_the_job_queued(self):
        sched = FairShareScheduler(total_workers=6)
        sched.submit(_shrinkable(0, workers=6))
        assert sched.next_job(4) is None
        assert sched.queue_depth() == 1

    def test_replans_a_too_wide_job_onto_the_free_workers(self):
        sched = FairShareScheduler(total_workers=6, shrink_to_fit=True)
        sched.submit(_shrinkable(0, workers=6))
        job = sched.next_job(4)
        assert job is not None and job.job_id == 0
        assert job.planned_workers == 4

    def test_full_width_wins_when_it_fits(self):
        sched = FairShareScheduler(total_workers=6, shrink_to_fit=True)
        sched.submit(_shrinkable(0, workers=6))
        job = sched.next_job(6)
        assert job.planned_workers == 6  # no re-plan recorded

    def test_unshrinkable_job_waits(self):
        sched = FairShareScheduler(total_workers=6, shrink_to_fit=True)
        # No shrink hook at all (e.g. MapReduceSpec) ...
        sched.submit(QueuedJob(
            job_id=0, tenant="a", priority=0, workers=6, est_bytes=0,
        ))
        # ... and a coded-style floor the free workers are below.
        sched.submit(_shrinkable(1, workers=6, floor=4, tenant="b"))
        assert sched.next_job(3) is None
        assert sched.queue_depth() == 2

    def test_full_fit_job_preferred_over_shrinking_the_head(self):
        sched = FairShareScheduler(total_workers=8, shrink_to_fit=True)
        sched.submit(_shrinkable(0, workers=8))
        sched.submit(QueuedJob(
            job_id=1, tenant="b", priority=0, workers=4, est_bytes=0,
        ))
        job = sched.next_job(4)
        assert job.job_id == 1
        assert job.planned_workers == 4

    def test_busy_full_strength_mesh_waits_instead_of_shrinking(self):
        # 4 of 6 live workers are busy: the 6-wide job still fits the
        # live mesh, so it must wait for them, not re-plan onto the 2
        # transiently free ones.
        sched = FairShareScheduler(total_workers=6, shrink_to_fit=True)
        sched.submit(_shrinkable(0, workers=6))
        assert sched.next_job(2, live_workers=6) is None
        assert sched.queue_depth() == 1
        # Once the mesh genuinely shrinks to 2 live, the same call
        # re-plans.
        job = sched.next_job(2, live_workers=2)
        assert job is not None and job.planned_workers == 2

    def test_set_total_workers_grows_elastic_capacity(self):
        sched = FairShareScheduler(total_workers=4)
        with pytest.raises(QuotaExceeded):
            sched.submit(_job(0, workers=6))
        # A replacement worker grew the mesh: wider jobs admit now.
        sched.set_total_workers(6)
        sched.submit(_job(1, workers=6))
        assert sched.next_job(6).job_id == 1
        with pytest.raises(ValueError):
            sched.set_total_workers(0)
