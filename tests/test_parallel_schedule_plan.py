"""Tests for the parallel scheduler exposed on :class:`CodingPlan`."""

from __future__ import annotations

import pytest

from repro.core.groups import SCHEDULE_MODES, build_coding_plan

#: The (K, r) grid the satellite task asks to cover.
GRID = [
    (3, 1), (4, 1), (4, 2), (5, 2), (6, 1), (6, 2), (6, 3),
    (8, 2), (8, 3), (10, 3), (12, 4),
]


class TestParallelRoundsOnPlan:
    @pytest.mark.parametrize("k,r", GRID)
    def test_every_turn_exactly_once(self, k, r):
        plan = build_coding_plan(k, r)
        flat = [turn for rnd in plan.parallel_rounds() for turn in rnd]
        assert sorted(flat) == sorted(plan.schedule)
        assert len(flat) == len(set(flat)) == plan.total_multicasts

    @pytest.mark.parametrize("k,r", GRID)
    def test_no_two_groups_in_a_round_share_a_node(self, k, r):
        plan = build_coding_plan(k, r)
        for rnd in plan.parallel_rounds():
            occupied = set()
            for gidx, sender in rnd:
                members = set(plan.groups[gidx])
                assert sender in members
                assert not (occupied & members)
                occupied |= members

    @pytest.mark.parametrize("k,r", GRID)
    def test_round_count_at_most_serial_turn_count(self, k, r):
        plan = build_coding_plan(k, r)
        assert 1 <= plan.num_rounds <= len(plan.schedule)

    @pytest.mark.parametrize("k,r", GRID)
    def test_speedup_bounded_by_concurrency_cap(self, k, r):
        plan = build_coding_plan(k, r)
        assert 1.0 <= plan.parallel_speedup <= k // (r + 1) + 1e-9

    def test_rounds_cached(self):
        plan = build_coding_plan(8, 2)
        assert plan.parallel_rounds() is plan.parallel_rounds()

    def test_nondefault_window_not_cached(self):
        plan = build_coding_plan(8, 2)
        rounds = plan.parallel_rounds(window=2)
        assert rounds is not plan.parallel_rounds(window=2)
        flat = [turn for rnd in rounds for turn in rnd]
        assert sorted(flat) == sorted(plan.schedule)

    def test_nondefault_window_honored_after_default_cached(self):
        """A cached default-window schedule must not shadow other windows."""
        plan = build_coding_plan(8, 3)
        narrow_fresh = plan.parallel_rounds(window=1)
        plan.parallel_rounds()  # populate the default-window cache
        narrow_after = plan.parallel_rounds(window=1)
        assert len(narrow_after) == len(narrow_fresh)
        assert len(narrow_after) > plan.num_rounds  # window=1 packs worse


class TestRoundsFor:
    def test_serial_is_singleton_rounds(self):
        plan = build_coding_plan(6, 2)
        rounds = plan.rounds_for("serial")
        assert rounds == [[turn] for turn in plan.schedule]

    def test_parallel_is_parallel_rounds(self):
        plan = build_coding_plan(6, 2)
        assert plan.rounds_for("parallel") == plan.parallel_rounds()

    def test_unknown_schedule_rejected(self):
        plan = build_coding_plan(4, 1)
        with pytest.raises(ValueError, match="quantum"):
            plan.rounds_for("quantum")

    def test_mode_list_is_consistent(self):
        assert set(SCHEDULE_MODES) == {"serial", "parallel"}
