"""Tests for the shifted-exponential straggler model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stragglers.latency import ShiftedExponential, harmonic


class TestHarmonic:
    def test_base_cases(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)

    def test_h10(self):
        assert harmonic(10) == pytest.approx(2.9289682539682538)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)

    @given(st.integers(1, 200))
    def test_strictly_increasing(self, m):
        assert harmonic(m) > harmonic(m - 1)

    @given(st.integers(1, 200))
    def test_recurrence(self, m):
        assert harmonic(m) == pytest.approx(harmonic(m - 1) + 1.0 / m)


class TestShiftedExponential:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShiftedExponential(shift=-0.1)
        with pytest.raises(ValueError):
            ShiftedExponential(rate=0)

    def test_mean(self):
        model = ShiftedExponential(shift=2.0, rate=0.5)
        assert model.mean() == pytest.approx(4.0)
        assert model.mean(work=0.5) == pytest.approx(2.0)

    def test_sample_bounds_and_shape(self):
        model = ShiftedExponential(shift=1.0, rate=1.0)
        times = model.sample(1000, np.random.default_rng(0))
        assert times.shape == (1000,)
        assert (times >= 1.0).all()  # shift is a hard lower bound

    def test_sample_scales_with_work(self):
        model = ShiftedExponential(shift=1.0, rate=1.0)
        small = model.sample(5000, np.random.default_rng(1), work=0.5)
        assert (small >= 0.5).all()
        # Mean of work*[shift + Exp(1)] is work*2.
        assert small.mean() == pytest.approx(1.0, rel=0.1)

    def test_sample_validation(self):
        model = ShiftedExponential()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample(0, rng)
        with pytest.raises(ValueError):
            model.sample(3, rng, work=0.0)

    def test_order_statistic_validation(self):
        model = ShiftedExponential()
        with pytest.raises(ValueError):
            model.expected_kth_of_n(0, 5)
        with pytest.raises(ValueError):
            model.expected_kth_of_n(6, 5)

    def test_expected_max_is_full_harmonic(self):
        model = ShiftedExponential(shift=1.0, rate=1.0)
        assert model.expected_max_of_n(10) == pytest.approx(1 + harmonic(10))

    def test_expected_kth_monotone_in_k(self):
        model = ShiftedExponential(shift=0.3, rate=2.0)
        vals = [model.expected_kth_of_n(k, 12) for k in range(1, 13)]
        assert vals == sorted(vals)
        assert all(v > 0.3 for v in vals)

    def test_order_statistic_matches_simulation(self):
        """Closed form vs Monte Carlo for the 7th of 10."""
        model = ShiftedExponential(shift=1.0, rate=0.5)
        rng = np.random.default_rng(42)
        draws = np.sort(
            np.stack([model.sample(10, rng) for _ in range(4000)]), axis=1
        )
        empirical = draws[:, 6].mean()  # 7th order statistic
        assert empirical == pytest.approx(
            model.expected_kth_of_n(7, 10), rel=0.03
        )

    @settings(max_examples=30)
    @given(
        k=st.integers(1, 12),
        n=st.integers(1, 12),
        work=st.floats(0.1, 4.0),
    )
    def test_work_scales_expectation_linearly(self, k, n, work):
        if k > n:
            return
        model = ShiftedExponential(shift=0.7, rate=1.3)
        assert model.expected_kth_of_n(k, n, work=work) == pytest.approx(
            work * model.expected_kth_of_n(k, n)
        )


class TestHeterogeneousLatency:
    def make(self):
        from repro.stragglers.latency import HeterogeneousLatency

        # 8 nominal machines and 2 persistently 3x-slow ones.
        return HeterogeneousLatency(
            speeds=(1.0,) * 8 + (3.0, 3.0),
            base=ShiftedExponential(shift=1.0, rate=1.0),
        )

    def test_validation(self):
        from repro.stragglers.latency import HeterogeneousLatency

        with pytest.raises(ValueError):
            HeterogeneousLatency(speeds=())
        with pytest.raises(ValueError):
            HeterogeneousLatency(speeds=(1.0, 0.0))

    def test_sample_shape_and_worker_count(self):
        model = self.make()
        times = model.sample(10, np.random.default_rng(0))
        assert times.shape == (10,)
        with pytest.raises(ValueError):
            model.sample(4, np.random.default_rng(0))

    def test_slow_workers_are_slower(self):
        model = self.make()
        rng = np.random.default_rng(1)
        draws = np.stack([model.sample(10, rng) for _ in range(2000)])
        fast_mean = draws[:, :8].mean()
        slow_mean = draws[:, 8:].mean()
        assert slow_mean == pytest.approx(3 * fast_mean, rel=0.1)

    def test_fleet_mean(self):
        model = self.make()
        # mean speed factor = (8*1 + 2*3)/10 = 1.4; base mean = 2.
        assert model.mean() == pytest.approx(2.8)

    def test_order_statistic_ignores_slow_tail(self):
        """Waiting for 8 of 10 costs far less than waiting for all."""
        model = self.make()
        k8 = model.expected_kth_of_n(8, 10)
        k10 = model.expected_max_of_n(10)
        assert k10 > 2.0 * k8  # the two 3x machines dominate the max

    def test_validation_of_order_statistic(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.expected_kth_of_n(0, 10)
        with pytest.raises(ValueError):
            model.expected_kth_of_n(3, 4)  # n != num_workers


class TestHeterogeneousSchemes:
    def test_coded_ignores_persistent_stragglers(self):
        """With 2 of 10 machines 3x slow, a (10, 8) code's advantage over
        uncoded far exceeds the homogeneous case."""
        from repro.stragglers.latency import HeterogeneousLatency
        from repro.stragglers.matmul import CodedMatVec, UncodedMatVec

        rng = np.random.default_rng(2)
        a = rng.standard_normal((100, 6))
        hetero = HeterogeneousLatency(
            speeds=(1.0,) * 8 + (3.0, 3.0),
            base=ShiftedExponential(shift=1.0, rate=1.0),
        )
        uncoded = UncodedMatVec(a, 10, latency=hetero)
        coded = CodedMatVec(a, 10, recovery_threshold=8, latency=hetero)
        saving = 1 - coded.expected_time() / uncoded.expected_time()
        homo = ShiftedExponential(shift=1.0, rate=1.0)
        homo_saving = 1 - (
            CodedMatVec(a, 10, recovery_threshold=8, latency=homo).expected_time()
            / UncodedMatVec(a, 10, latency=homo).expected_time()
        )
        assert saving > homo_saving + 0.1

    def test_replication_monte_carlo_fallback(self):
        from repro.stragglers.latency import HeterogeneousLatency
        from repro.stragglers.matmul import ReplicatedMatVec

        rng = np.random.default_rng(3)
        a = rng.standard_normal((60, 5))
        hetero = HeterogeneousLatency(speeds=(1.0, 1.0, 2.0, 2.0))
        scheme = ReplicatedMatVec(a, 4, replication=2, latency=hetero)
        expected = scheme.expected_time()
        times = [
            scheme.multiply(np.ones(5), np.random.default_rng(s)).time
            for s in range(2000)
        ]
        assert expected == pytest.approx(np.mean(times), rel=0.06)

    def test_correctness_unaffected(self):
        from repro.stragglers.latency import HeterogeneousLatency
        from repro.stragglers.matmul import make_scheme

        rng = np.random.default_rng(4)
        a = rng.standard_normal((50, 7))
        x = rng.standard_normal(7)
        hetero = HeterogeneousLatency(speeds=(1.0, 5.0, 1.0, 1.0, 2.0, 1.0))
        for name, kw in (
            ("uncoded", {}),
            ("replication", {"replication": 2}),
            ("coded", {"recovery_threshold": 4}),
        ):
            scheme = make_scheme(name, a, 6, latency=hetero, **kw)
            out = scheme.multiply(x, np.random.default_rng(5))
            assert np.allclose(out.y, a @ x, atol=1e-8), name
