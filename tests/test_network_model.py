"""Tests for the simulated network fabric."""

from __future__ import annotations

import pytest

from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Environment
from repro.sim.network import NetworkModel


def make(serial=True, num_nodes=4):
    env = Environment()
    cost = EC2CostModel.paper_calibrated()
    return env, NetworkModel(env, num_nodes, cost, serial=serial), cost


class TestSerialFabric:
    def test_transfers_never_overlap(self):
        """Serial fabric: completion times are spaced by full durations."""
        env, net, cost = make(serial=True)
        ends = []

        def sender(src, dst, nbytes):
            yield from net.unicast(src, dst, nbytes)
            ends.append(env.now)

        env.process(sender(0, 1, 1e6))
        env.process(sender(2, 3, 1e6))
        env.process(sender(1, 2, 1e6))
        env.run()
        duration = cost.unicast_time(1e6)
        assert sorted(ends) == pytest.approx(
            [duration, 2 * duration, 3 * duration]
        )

    def test_total_time_is_sum_of_durations(self):
        env, net, cost = make(serial=True)

        def sender(src, dst, nbytes):
            yield from net.unicast(src, dst, nbytes)

        env.process(sender(0, 1, 5e5))
        env.process(sender(2, 3, 5e5))
        env.run()
        assert env.now == pytest.approx(2 * cost.unicast_time(5e5))

    def test_telemetry(self):
        env, net, _ = make(serial=True)

        def go():
            yield from net.unicast(0, 1, 100.0)
            yield from net.multicast(1, [0, 2, 3], 50.0)

        env.process(go())
        env.run()
        assert net.transfers == 2
        assert net.unicast_payload == 100.0
        assert net.multicast_payload == 50.0


class TestParallelFabric:
    def test_disjoint_pairs_overlap(self):
        env, net, cost = make(serial=False)
        done = {}

        def sender(name, src, dst, nbytes):
            yield from net.unicast(src, dst, nbytes)
            done[name] = env.now

        env.process(sender("a", 0, 1, 1e6))
        env.process(sender("b", 2, 3, 1e6))
        env.run()
        # Both finish at the single-transfer time: they ran concurrently.
        assert done["a"] == pytest.approx(cost.unicast_time(1e6))
        assert done["b"] == pytest.approx(cost.unicast_time(1e6))

    def test_shared_nic_serializes(self):
        env, net, cost = make(serial=False)
        done = {}

        def sender(name, src, dst, nbytes):
            yield from net.unicast(src, dst, nbytes)
            done[name] = env.now

        env.process(sender("a", 0, 1, 1e6))
        env.process(sender("b", 0, 2, 1e6))  # same sender NIC
        env.run()
        t = cost.unicast_time(1e6)
        assert max(done.values()) == pytest.approx(2 * t)

    def test_parallel_beats_serial_makespan(self):
        durations = {}
        for serial in (True, False):
            env, net, cost = make(serial=serial, num_nodes=6)

            def all_pairs():
                def one(src, dst):
                    yield from net.unicast(src, dst, 1e6)

                procs = [
                    env.process(one(s, (s + 1) % 6)) for s in range(6)
                ]
                for p in procs:
                    yield p

            env.process(all_pairs())
            env.run()
            durations[serial] = env.now
        assert durations[False] < durations[True]


class TestValidation:
    def test_bad_node_rejected(self):
        env, net, _ = make()
        with pytest.raises(ValueError):
            env.run_process(net.unicast(0, 9, 100.0))

    def test_multicast_receiver_validation(self):
        env, net, _ = make()
        with pytest.raises(ValueError):
            env.run_process(net.multicast(0, [1, 99], 100.0))
