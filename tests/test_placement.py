"""Tests for file placement (uncoded and structured redundant)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.placement import CodedPlacement, UncodedPlacement, split_even
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.teragen import teragen
from repro.utils.subsets import binomial, k_subsets


class TestSplitEven:
    def test_sizes_differ_by_at_most_one(self):
        b = teragen(103, seed=0)
        parts = split_even(b, 5)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_concat_restores_input(self):
        b = teragen(100, seed=1)
        assert RecordBatch.concat(split_even(b, 7)) == b

    def test_more_parts_than_records(self):
        b = teragen(3, seed=2)
        parts = split_even(b, 10)
        assert len(parts) == 10
        assert sum(len(p) for p in parts) == 3

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_even(teragen(5), 0)


class TestUncodedPlacement:
    def test_one_file_per_node(self):
        p = UncodedPlacement(4)
        assert p.num_files == 4
        assert p.files_of_node(2) == [2]
        assert p.subsets() == [(0,), (1,), (2,), (3,)]

    def test_place_disjoint_cover(self):
        b = teragen(100, seed=3)
        assignments = UncodedPlacement(4).place(b)
        assert RecordBatch.concat([a.data for a in assignments]) == b
        for a in assignments:
            assert a.subset == (a.file_id,)

    def test_bad_node(self):
        with pytest.raises(ValueError):
            UncodedPlacement(3).files_of_node(3)


class TestCodedPlacementStructure:
    def test_file_count(self):
        p = CodedPlacement(6, 3)
        assert p.num_files == binomial(6, 3) == 20

    def test_files_per_node(self):
        p = CodedPlacement(6, 3)
        for node in range(6):
            files = p.files_of_node(node)
            assert len(files) == binomial(5, 2) == p.files_per_node()
            for f in files:
                assert node in p.subset_of_file(f)

    def test_every_r_subset_has_unique_common_file(self):
        """The key structural property (§IV-A)."""
        k, r = 6, 2
        p = CodedPlacement(k, r)
        for subset in k_subsets(k, r):
            common = set(p.files_of_node(subset[0]))
            for node in subset[1:]:
                common &= set(p.files_of_node(node))
            # Exactly the files whose subset contains all of `subset`:
            # for |subset| = r that is the single file F_subset.
            assert common == {p.file_id(subset)}

    def test_subset_file_id_roundtrip(self):
        p = CodedPlacement(7, 3)
        for f in range(p.num_files):
            assert p.file_id(p.subset_of_file(f), p.batch_of_file(f)) == f

    def test_r_equals_k(self):
        p = CodedPlacement(4, 4)
        assert p.num_files == 1
        assert p.subset_of_file(0) == (0, 1, 2, 3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CodedPlacement(4, 0)
        with pytest.raises(ValueError):
            CodedPlacement(4, 5)
        with pytest.raises(ValueError):
            CodedPlacement(4, 2, 0)

    def test_batching(self):
        p = CodedPlacement(4, 2, batches_per_subset=3)
        assert p.num_files == 3 * 6
        assert p.batch_of_file(7) == 1
        assert p.subset_of_file(1) == p.subset_of_file(7) == p.subset_of_file(13)
        assert len(p.files_of_node(0)) == 3 * binomial(3, 1)

    @given(st.integers(2, 8), st.data())
    def test_placement_invariants_property(self, k, data):
        r = data.draw(st.integers(1, k))
        p = CodedPlacement(k, r)
        # Each file on exactly r nodes; each node holds C(k-1, r-1) files.
        for f in range(p.num_files):
            assert len(p.subset_of_file(f)) == r
        total_replicas = sum(len(p.files_of_node(n)) for n in range(k))
        assert total_replicas == p.num_files * r


class TestCodedPlacementData:
    def test_place_covers_input_disjointly(self):
        b = teragen(210, seed=4)
        p = CodedPlacement(5, 2)
        assignments = p.place(b)
        assert RecordBatch.concat([a.data for a in assignments]) == b
        sizes = [len(a.data) for a in assignments]
        assert max(sizes) - min(sizes) <= 1

    def test_node_storage_grows_with_r(self):
        b = teragen(1000, seed=5)
        for r in (1, 2, 3):
            p = CodedPlacement(5, r)
            stored = sum(
                len(a.data) for a in p.place(b) for _ in a.subset
            )
            assert abs(stored - 1000 * r) <= r  # rounding slack

    def test_node_storage_bytes_formula(self):
        p = CodedPlacement(8, 3)
        assert p.node_storage_bytes(8000) == pytest.approx(3000)
