"""End-to-end sort service: concurrent subset jobs on one real TCP mesh.

The acceptance criteria for the service PR, verified against genuine
``run_worker`` processes and a live :class:`SortService` daemon:

* two jobs submitted by concurrent clients run on *disjoint* worker
  subsets of one mesh with overlapping execution intervals, and each
  output is byte-identical to the same spec run solo on a dedicated
  in-process cluster;
* a worker crash inside one subset retries only that subset's job —
  the neighbouring job completes untouched on its own subset;
* admission control rejects over-quota submissions with a typed
  ``ServiceRejected`` over the control port, and per-tenant stats
  (including queue-wait percentiles) survive the wire.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.runtime.tcp import TcpCluster, run_worker
from repro.service import (
    ServiceClient,
    ServiceRejected,
    SortService,
    TenantQuota,
)
from repro.session import Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

_CTX = multiprocessing.get_context("fork")


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def _spawn_workers(address, n):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address, quiet=True,
                connect_timeout=60.0, handshake_timeout=60.0,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _reap(procs, timeout=15.0):
    for p in procs:
        p.join(timeout)
        if p.is_alive():
            p.terminate()
            p.join()


def _solo_partitions(spec, k):
    """Reference partitions for ``spec`` on a dedicated k-worker cluster."""
    with Session(ThreadCluster(k, recv_timeout=60.0)) as session:
        run = session.submit(spec).result(timeout=60)
    return [p.to_bytes() for p in run.partitions]


def _wait_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        rows = client.status(job_id)
        if rows and rows[0]["state"] == state:
            return rows[0]
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {state!r}: {client.status(job_id)}"
    )


def test_two_jobs_overlap_on_disjoint_subsets_byte_identical(no_plan):
    """K=4 mesh, two 2-worker sorts: disjoint subsets, overlapping
    execution, outputs byte-identical to dedicated solo runs."""
    data_a = teragen(1200, seed=91)
    data_b = teragen(1200, seed=92)
    spec_a = TeraSortSpec(data=data_a)
    spec_b = TeraSortSpec(data=data_b)
    ref_a = _solo_partitions(TeraSortSpec(data=data_a), 2)
    ref_b = _solo_partitions(TeraSortSpec(data=data_b), 2)

    # Hold both jobs' map stages open so their intervals provably overlap.
    no_plan.setenv(ENV_VAR, "stage.delay,stage=map,secs=0.8,job_lt=2")
    with TcpCluster(
        4, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 4)
        try:
            with SortService(cluster) as service:
                service.start()
                client = ServiceClient(service.control_address)
                handle_a = client.submit(spec_a, tenant="alice", workers=2)
                handle_b = client.submit(spec_b, tenant="bob", workers=2)
                run_a = handle_a.result(timeout=120)
                run_b = handle_b.result(timeout=120)

                validate_sorted_permutation(data_a, run_a.partitions)
                validate_sorted_permutation(data_b, run_b.partitions)
                assert [p.to_bytes() for p in run_a.partitions] == ref_a
                assert [p.to_bytes() for p in run_b.partitions] == ref_b

                row_a = client.status(handle_a.job_id)[0]
                row_b = client.status(handle_b.job_id)[0]
                assert row_a["state"] == "done"
                assert row_b["state"] == "done"
                # Disjoint subsets of the one mesh...
                used_a = set(row_a["workers_used"])
                used_b = set(row_b["workers_used"])
                assert len(used_a) == len(used_b) == 2
                assert not (used_a & used_b)
                # ... and genuinely concurrent execution intervals.
                overlap = min(
                    row_a["finished_at"], row_b["finished_at"]
                ) - max(row_a["started_at"], row_b["started_at"])
                assert overlap > 0, (row_a, row_b)

                stats = client.stats()
                assert stats.jobs_done == 2
                assert stats.tenants["alice"].jobs_done == 1
                assert stats.tenants["bob"].jobs_done == 1
        finally:
            _reap(procs)


def test_worker_crash_retries_only_its_subset(no_plan):
    """K=6 mesh, two 3-worker sorts; a worker in job B's subset crashes
    mid-map.  A completes untouched on attempt 1; B retries on the
    survivors and still matches its solo output byte for byte."""
    data_a = teragen(1200, seed=93)
    data_b = teragen(1200, seed=94)
    ref_a = _solo_partitions(TeraSortSpec(data=data_a), 3)
    ref_b = _solo_partitions(TeraSortSpec(data=data_b), 3)

    # Pool seq 1 is job B (dispatched second); its logical rank 1
    # crashes entering map.  The retry is a fresh pool seq, unmatched.
    no_plan.setenv(ENV_VAR, "stage.crash,rank=1,stage=map,job=1")
    with TcpCluster(
        6, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60,
        heartbeat_interval=0.1, failure_timeout=15.0,
    ) as cluster:
        procs = _spawn_workers(cluster.address, 6)
        try:
            with SortService(cluster, max_retries=2) as service:
                service.start()
                client = ServiceClient(service.control_address)
                handle_a = client.submit(TeraSortSpec(data=data_a),
                                         tenant="alice", workers=3)
                handle_b = client.submit(TeraSortSpec(data=data_b),
                                         tenant="bob", workers=3)
                run_a = handle_a.result(timeout=120)
                run_b = handle_b.result(timeout=120)

                assert [p.to_bytes() for p in run_a.partitions] == ref_a
                assert [p.to_bytes() for p in run_b.partitions] == ref_b

                row_a = client.status(handle_a.job_id)[0]
                row_b = client.status(handle_b.job_id)[0]
                # The crash touched only B: one clean attempt for A, a
                # retry recorded for B.
                assert row_a["attempts"] == 1
                assert row_b["attempts"] == 2
                stats = client.stats()
                assert stats.jobs_done == 2
                assert stats.jobs_failed == 0
                # The dead worker shrank capacity; the service carried on.
                assert stats.workers_live == 5
        finally:
            _reap(procs)


def test_quota_rejection_stats_and_shutdown(no_plan):
    """Per-tenant quotas reject a third concurrent submission with a
    typed kind over the wire; stats and shutdown round-trip too."""
    no_plan.setenv(ENV_VAR, "stage.delay,stage=map,secs=1.5,job_lt=1")
    data = teragen(800, seed=95)
    with TcpCluster(
        2, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 2)
        try:
            service = SortService(
                cluster,
                default_quota=TenantQuota(max_concurrent=1, max_queued=1),
            )
            with service:
                service.start()
                client = ServiceClient(service.control_address)
                first = client.submit(TeraSortSpec(data=data), workers=2)
                # The delay plan holds job 1 in map; once it is running,
                # the tenant's next job queues and the one after that
                # must bounce off max_queued=1.
                _wait_state(client, first.job_id, "running")
                second = client.submit(TeraSortSpec(data=data), workers=2)
                with pytest.raises(ServiceRejected) as exc_info:
                    client.submit(TeraSortSpec(data=data), workers=2)
                assert exc_info.value.kind == "quota_exceeded"

                assert first.result(timeout=120) is not None
                assert second.result(timeout=120) is not None
                stats = client.stats()
                assert stats.jobs_done == 2
                assert stats.jobs_rejected == 1
                assert stats.tenants["default"].jobs_rejected == 1
                # The second job waited on the first: its queue delay is
                # in the percentile window.
                assert stats.queue_wait_p95 is not None
                assert stats.queue_wait_p95 > 0.5

                client.shutdown()
                deadline = time.monotonic() + 15.0
                while not service.closed and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert service.closed
        finally:
            _reap(procs)
