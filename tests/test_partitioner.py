"""Tests for key-domain partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partitioner import RangePartitioner
from repro.kvpairs.teragen import teragen, teragen_skewed


class TestUniform:
    def test_boundary_count_and_order(self):
        p = RangePartitioner.uniform(8)
        assert len(p.boundaries) == 7
        assert (np.diff(p.boundaries.astype(object)) > 0).all()

    def test_single_partition(self):
        p = RangePartitioner.uniform(1)
        assert p.num_partitions == 1
        b = teragen(100, seed=0)
        assert (p.partition_indices(b) == 0).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RangePartitioner.uniform(0)

    def test_indices_in_range(self, small_batch):
        p = RangePartitioner.uniform(16)
        idx = p.partition_indices(small_batch)
        assert idx.min() >= 0 and idx.max() < 16

    def test_uniform_keys_balanced(self, small_batch):
        p = RangePartitioner.uniform(4)
        assert p.imbalance(small_batch) < 1.2

    def test_partition_respects_key_order(self, small_batch):
        """Records in partition i all precede records in partition j > i."""
        p = RangePartitioner.uniform(5)
        idx = p.partition_indices(small_batch)
        hi = small_batch.key_prefix_u64()
        for i in range(4):
            left = hi[idx == i]
            right = hi[idx > i]
            if len(left) and len(right):
                assert left.max() <= right.min() or left.max() < right.min() + 1

    def test_partition_of_prefix_consistent(self, small_batch):
        p = RangePartitioner.uniform(7)
        idx = p.partition_indices(small_batch)
        hi = small_batch.key_prefix_u64()
        for i in (0, 17, 533):
            assert p.partition_of_prefix(int(hi[i])) == idx[i]


class TestValidation:
    def test_wrong_boundary_count(self):
        with pytest.raises(ValueError):
            RangePartitioner([1, 2], 4)

    def test_decreasing_boundaries_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner([5, 3], 3)

    def test_equality(self):
        assert RangePartitioner.uniform(4) == RangePartitioner.uniform(4)
        assert RangePartitioner.uniform(4) != RangePartitioner.uniform(5)


class TestSampled:
    def test_balances_skewed_keys(self):
        skewed = teragen_skewed(30000, seed=1, zipf_a=1.3)
        uniform_p = RangePartitioner.uniform(8)
        sampled_p = RangePartitioner.from_sample(
            skewed.take(np.arange(0, 30000, 7)), 8
        )
        # Sampling must beat the uniform splitter substantially on skew.
        assert sampled_p.imbalance(skewed) < uniform_p.imbalance(skewed) / 1.5

    def test_uniform_sample_close_to_uniform(self, small_batch):
        p = RangePartitioner.from_sample(small_batch, 4)
        assert p.imbalance(small_batch) < 1.25

    def test_empty_sample_falls_back(self):
        from repro.kvpairs.records import RecordBatch

        p = RangePartitioner.from_sample(RecordBatch.empty(), 4)
        assert p == RangePartitioner.uniform(4)

    def test_total_coverage(self, small_batch):
        p = RangePartitioner.from_sample(small_batch.slice(0, 100), 6)
        idx = p.partition_indices(small_batch)
        assert idx.min() >= 0 and idx.max() < 6

    @given(st.integers(1, 12))
    def test_counts_sum_to_n(self, k):
        b = teragen(997, seed=k)
        p = RangePartitioner.uniform(k)
        assert p.partition_counts(b).sum() == 997
