"""SubsetComm: logical-rank views over one shared socket mesh.

Builds a real K=4 socketpair mesh *in process* (four ``_SocketComm``
endpoints with live reader threads, one per rank, driven by worker
threads) and exercises the service runtime's isolation mechanisms
directly:

* two subset jobs on disjoint member sets run concurrently over the one
  mesh and each sees only its own frames (per-job tag windows);
* logical ranks map onto arbitrary (even unsorted) global member lists;
* an ``("abort", reason)`` control delivery unblocks a pending receive
  promptly instead of waiting out the receive timeout;
* ``_purge_job_frames`` reclaims exactly the dead job's buffered frames;
* the constructor rejects malformed subsets.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.runtime.api import MulticastMode
from repro.runtime.errors import CommError, WorkerFailure
from repro.runtime.process import (
    SubsetComm,
    _purge_job_frames,
    make_socket_comm,
)
from repro.runtime.program import JobControl

K = 4


@pytest.fixture()
def mesh():
    """Four in-process ``_SocketComm`` endpoints over a socketpair mesh."""
    pairs = {
        (i, j): socket.socketpair()
        for i in range(K)
        for j in range(i + 1, K)
    }
    conns_for = {r: {} for r in range(K)}
    for (i, j), (si, sj) in pairs.items():
        conns_for[i][j] = si
        conns_for[j][i] = sj
    comms = [
        make_socket_comm(
            rank=r,
            size=K,
            conns=conns_for[r],
            multicast_mode=MulticastMode.TREE,
            rate_bytes_per_s=None,
            socket_timeout=30.0,
            chunk_bytes=1 << 20,
            record_relays=False,
        )
        for r in range(K)
    ]
    yield comms
    for comm in comms:
        comm._close_async()
    for si, sj in pairs.values():
        for s in (si, sj):
            try:
                s.close()
            except OSError:
                pass


def _run_members(comms, members, job_seq, body, errors):
    """One thread per subset member running ``body(subset_comm)``."""

    def worker(global_rank):
        try:
            sub = SubsetComm(comms[global_rank], members)
            sub.begin_job(job_seq, None)
            try:
                body(sub)
            finally:
                sub._close_async()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append((global_rank, exc))

    threads = [
        threading.Thread(target=worker, args=(g,), daemon=True)
        for g in members
    ]
    for t in threads:
        t.start()
    return threads


class TestConcurrentSubsets:
    def test_disjoint_jobs_share_one_mesh(self, mesh):
        """Jobs on {0, 2} and {1, 3} overlap without cross-talk."""
        results = {}
        errors = []
        lock = threading.Lock()

        def make_body(label):
            def body(sub):
                # Logical all-to-all: every member sends its label-tagged
                # payload to the other, then a barrier.
                peer = 1 - sub.rank
                payload = f"{label}:{sub.rank}".encode()
                sub.send(peer, tag=7, payload=payload)
                got = bytes(sub.recv(peer, tag=7))
                sub.barrier()
                with lock:
                    results[(label, sub.rank)] = got

            return body

        threads = _run_members(mesh, [0, 2], 5, make_body("even"), errors)
        threads += _run_members(mesh, [1, 3], 6, make_body("odd"), errors)
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        assert results == {
            ("even", 0): b"even:1",
            ("even", 1): b"even:0",
            ("odd", 0): b"odd:1",
            ("odd", 1): b"odd:0",
        }

    def test_logical_ranks_follow_member_order(self, mesh):
        """members=[3, 1]: logical 0 is global 3, logical 1 is global 1."""
        seen = {}
        errors = []

        def body(sub):
            if sub.rank == 0:
                sub.send(1, tag=2, payload=b"from-global-3")
            else:
                seen["payload"] = bytes(sub.recv(0, tag=2))
                seen["global"] = sub.members[sub.rank]

        threads = _run_members(mesh, [3, 1], 9, body, errors)
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        assert seen == {"payload": b"from-global-3", "global": 1}

    def test_bcast_within_subset(self, mesh):
        got = {}
        errors = []
        lock = threading.Lock()

        def body(sub):
            out = sub.bcast([0, 1, 2], root=0, tag=3, payload=(
                b"coded" if sub.rank == 0 else None
            ))
            with lock:
                got[sub.rank] = bytes(out)

        threads = _run_members(mesh, [0, 1, 3], 11, body, errors)
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        assert got == {0: b"coded", 1: b"coded", 2: b"coded"}


class TestAbort:
    def test_abort_unblocks_pending_recv_promptly(self, mesh):
        sub = SubsetComm(mesh[0], [0, 1])
        sub.begin_job(3, None)
        control = JobControl(3)
        sub.job_control = control
        try:
            start = time.monotonic()

            def later():
                time.sleep(0.3)
                control.deliver(("abort", "neighbour died"))

            threading.Thread(target=later, daemon=True).start()
            # Nobody ever sends: only the abort poll can end this recv
            # before the 30 s backend timeout.
            with pytest.raises(WorkerFailure) as exc_info:
                sub.recv(1, tag=1)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0, f"abort took {elapsed:.1f}s to land"
            assert "neighbour died" in str(exc_info.value)
        finally:
            sub.job_control = None
            sub._close_async()


class TestPurge:
    def test_purge_reclaims_only_the_dead_jobs_frames(self, mesh):
        # Worker 1 sends rank 0 one frame in job 5's window and one in
        # job 6's window; purging job 5 must leave job 6 intact.
        sender5 = SubsetComm(mesh[1], [0, 1])
        sender5.begin_job(5, None)
        sender5.send(0, tag=4, payload=b"stale")
        sender6 = SubsetComm(mesh[1], [0, 1])
        sender6.begin_job(6, None)
        sender6.send(0, tag=4, payload=b"live")
        # The marker is sent *last*: rank 0's single reader thread
        # delivers frames from rank 1 in order, so once the marker is
        # receivable both earlier frames are already in the mailbox.
        sender6.send(0, tag=5, payload=b"marker")
        try:
            receiver = SubsetComm(mesh[0], [0, 1])
            receiver.begin_job(6, None)
            assert bytes(receiver.recv(1, tag=5)) == b"marker"

            purged = _purge_job_frames(mesh[0]._mailbox, 5)
            assert purged == 1

            assert bytes(receiver.recv(1, tag=4)) == b"live"
            receiver._close_async()
        finally:
            sender5._close_async()
            sender6._close_async()


class TestValidation:
    def test_duplicate_members_rejected(self, mesh):
        with pytest.raises(CommError):
            SubsetComm(mesh[0], [0, 0, 1])

    def test_base_rank_must_be_member(self, mesh):
        with pytest.raises(CommError):
            SubsetComm(mesh[0], [1, 2])

    def test_members_must_be_mesh_peers(self, mesh):
        with pytest.raises(CommError):
            SubsetComm(mesh[0], [0, K + 3])
