"""Tests for the calibrated cost model."""

from __future__ import annotations

import math

import pytest

from repro.sim.costmodel import EC2CostModel


@pytest.fixture(scope="module")
def cost():
    return EC2CostModel.paper_calibrated()


class TestNetworkCosts:
    def test_unicast_scales_linearly(self, cost):
        t1 = cost.unicast_time(1e6)
        t2 = cost.unicast_time(2e6)
        assert (t2 - cost.unicast_setup) == pytest.approx(
            2 * (t1 - cost.unicast_setup)
        )

    def test_unicast_rate_near_100mbps(self, cost):
        # 12.5 MB at ~100 Mbps ~ 1.05 s (with 5.2% overhead).
        assert cost.unicast_time(12.5e6) == pytest.approx(1.053, rel=0.01)

    def test_multicast_penalty_logarithmic(self, cost):
        b = 1e6
        base = cost.multicast_time(b, 1) - cost.multicast_setup
        for g in (2, 4, 8):
            t = cost.multicast_time(b, g) - cost.multicast_setup
            expected = (b / cost.net_rate) * (
                1 + cost.multicast_gamma * math.log2(g + 1)
            )
            assert t == pytest.approx(expected)
        assert cost.multicast_time(b, 8) > cost.multicast_time(b, 2) > base

    def test_multicast_invalid_receivers(self, cost):
        with pytest.raises(ValueError):
            cost.multicast_time(100, 0)


class TestComputeCosts:
    def test_map_slowdown_with_r(self, cost):
        base = cost.map_time(1e6, 1)
        assert cost.map_time(1e6, 3) == pytest.approx(base * 1.10)
        assert cost.map_time(3e6, 3) / cost.map_time(1e6, 1) == pytest.approx(
            3 * 1.10
        )

    def test_reduce_slowdown_with_r(self, cost):
        base = cost.reduce_time(1e6, 1)
        assert cost.reduce_time(1e6, 5) == pytest.approx(base * 1.48)

    def test_codegen_linear_in_groups(self, cost):
        t1 = cost.codegen_time(1000)
        t2 = cost.codegen_time(2000)
        assert t2 - t1 == pytest.approx(1000 * cost.codegen_per_group)

    def test_decode_has_per_packet_term(self, cost):
        no_packets = cost.decode_time(1e6, 0)
        with_packets = cost.decode_time(1e6, 1000)
        assert with_packets - no_packets == pytest.approx(
            1000 * cost.decode_packet_overhead
        )


class TestCalibrationAgainstPaper:
    """Spot-check the fits that DESIGN.md documents (loose tolerances)."""

    def test_map_k16_uncoded(self, cost):
        assert cost.map_time(7.5e6, 1) == pytest.approx(1.86, rel=0.05)

    def test_map_k16_r5(self, cost):
        assert cost.map_time(37.5e6, 5) == pytest.approx(10.84, rel=0.05)

    def test_reduce_k16_uncoded(self, cost):
        assert cost.reduce_time(7.5e6, 1) == pytest.approx(10.47, rel=0.02)

    def test_pack_k16(self, cost):
        nbytes = 12e9 / 16 * 15 / 16
        assert cost.pack_time(nbytes) == pytest.approx(2.35, rel=0.05)

    def test_codegen_k16_r3(self, cost):
        assert cost.codegen_time(1820) == pytest.approx(6.06, rel=0.05)

    def test_codegen_k20_r5(self, cost):
        assert cost.codegen_time(38760) == pytest.approx(140.91, rel=0.10)


class TestOverrides:
    def test_with_overrides(self, cost):
        tweaked = cost.with_overrides(multicast_gamma=0.0)
        assert tweaked.multicast_gamma == 0.0
        assert tweaked.net_rate == cost.net_rate
        # Original untouched (frozen dataclass).
        assert cost.multicast_gamma == 0.31

    def test_frozen(self, cost):
        with pytest.raises(Exception):
            cost.net_rate = 1.0  # type: ignore[misc]


class TestScheduleShuffleModels:
    """Closed forms for the serial vs round-parallel shuffle (§VI)."""

    def test_serial_is_sum_of_turns(self, cost):
        one = cost.multicast_time(1e6, 3)
        assert cost.serial_multicast_shuffle_time(280, 1e6, 3) == pytest.approx(
            280 * one
        )

    def test_parallel_charges_rounds_plus_sync(self, cost):
        one = cost.multicast_time(1e6, 3)
        t = cost.parallel_multicast_shuffle_time(140, 1e6, 3)
        assert t == pytest.approx(140 * (one + cost.round_sync_overhead))

    def test_parallel_beats_serial_at_plan_round_counts(self, cost):
        """At every grid point the packed rounds give a real speedup."""
        from repro.core.groups import build_coding_plan

        for k, r in ((4, 1), (6, 2), (8, 3), (16, 3)):
            plan = build_coding_plan(k, r)
            packet = 1e6
            serial = cost.serial_multicast_shuffle_time(
                len(plan.schedule), packet, r
            )
            parallel = cost.parallel_multicast_shuffle_time(
                plan.num_rounds, packet, r
            )
            assert parallel < serial
            # The model's gain tracks the plan's theoretical speedup.
            assert serial / parallel == pytest.approx(
                plan.parallel_speedup, rel=0.05
            )

    def test_validation(self, cost):
        with pytest.raises(ValueError):
            cost.serial_multicast_shuffle_time(-1, 1e6, 3)
        with pytest.raises(ValueError):
            cost.parallel_multicast_shuffle_time(-1, 1e6, 3)


class TestOverlappedMakespan:
    def test_staged_limit_at_one_window(self):
        m = EC2CostModel.paper_calibrated()
        assert m.overlapped_makespan(10.0, 4.0, windows=1) == pytest.approx(
            14.0
        )

    def test_compute_bound_hides_communication(self):
        m = EC2CostModel.paper_calibrated()
        # comm hides behind compute except the last window's share.
        assert m.overlapped_makespan(10.0, 4.0, windows=16) == pytest.approx(
            10.0 + 4.0 / 16
        )

    def test_comm_bound_primes_pipeline(self):
        m = EC2CostModel.paper_calibrated()
        assert m.overlapped_makespan(4.0, 10.0, windows=16) == pytest.approx(
            10.0 + 4.0 / 16
        )

    def test_never_better_than_envelope_never_worse_than_staged(self):
        m = EC2CostModel.paper_calibrated()
        for compute, comm in [(1.0, 9.0), (5.0, 5.0), (9.0, 1.0)]:
            got = m.overlapped_makespan(compute, comm, windows=8)
            assert got >= max(compute, comm)
            assert got <= compute + comm

    def test_rejects_bad_args(self):
        m = EC2CostModel.paper_calibrated()
        with pytest.raises(ValueError):
            m.overlapped_makespan(1.0, 1.0, windows=0)
        with pytest.raises(ValueError):
            m.overlapped_makespan(-1.0, 1.0)

    def test_uncoded_overlap_speedup_above_one(self):
        m = EC2CostModel.paper_calibrated()
        # Communication-heavy regime: staged pays compute + shuffle, the
        # overlapped engine pays ~shuffle/K — speedup well above 1.3x.
        speedup = m.uncoded_overlap_speedup(
            compute_time=2.0, serial_shuffle_time=20.0, num_nodes=4
        )
        assert speedup > 1.3
        with pytest.raises(ValueError):
            m.uncoded_overlap_speedup(1.0, 1.0, 0)
