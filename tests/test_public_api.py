"""The top-level package surface: everything advertised must work."""

from __future__ import annotations

import repro


def test_all_exports_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_surface():
    """The README quickstart, miniaturized: one session, three jobs."""
    data = repro.teragen(3000, seed=1)
    with repro.Session(repro.ThreadCluster(4)) as session:
        base = session.submit(repro.TeraSortSpec(data=data))
        coded = session.submit(
            repro.CodedTeraSortSpec(data=data, redundancy=2)
        )
        fast = session.submit(
            repro.CodedTeraSortSpec(
                data=data, redundancy=2, schedule="parallel"
            )
        )
        runs = [h.result() for h in (base, coded, fast)]
    for run in runs:
        repro.validate_sorted_permutation(data, run.partitions)
    assert runs[1].traffic.load_bytes("shuffle") < runs[0].traffic.load_bytes(
        "shuffle"
    )
    assert runs[2].meta["schedule_rounds"] <= runs[2].meta["schedule_turns"]
    assert base.done() and coded.done() and fast.done()


def test_legacy_shim_surface():
    """The one-shot entry points survive as single-job session shims."""
    data = repro.teragen(2000, seed=3)
    base = repro.run_terasort(repro.ThreadCluster(4), data)
    coded = repro.run_coded_terasort(
        repro.ThreadCluster(4), data, redundancy=2
    )
    repro.validate_sorted_permutation(data, base.partitions)
    repro.validate_sorted_permutation(data, coded.partitions)
    assert coded.traffic.load_bytes("shuffle") < base.traffic.load_bytes(
        "shuffle"
    )


def test_session_surface_names():
    """Every advertised session-API name resolves and is exported."""
    for name in (
        "Session",
        "JobSpec",
        "JobHandle",
        "TeraSortSpec",
        "CodedTeraSortSpec",
        "MapReduceSpec",
    ):
        assert hasattr(repro, name)
        assert name in repro.__all__


def test_extension_entry_points():
    data = repro.teragen(2000, seed=2)
    grouped = repro.run_grouped_coded_terasort(
        repro.ThreadCluster(4), data, redundancy=1, group_size=2
    )
    repro.validate_sorted_permutation(data, grouped.partitions)
    wireless = repro.run_wireless_sort(data, 4, 2, protocol="d2d")
    repro.validate_sorted_permutation(data, wireless.partitions)
    results = repro.straggler_comparison(iterations=5)
    assert {r.scheme for r in results} == {
        "uncoded", "replication", "coded",
    }
