"""The top-level package surface: everything advertised must work."""

from __future__ import annotations

import repro


def test_all_exports_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_surface():
    """The README quickstart, miniaturized."""
    data = repro.teragen(3000, seed=1)
    base = repro.run_terasort(repro.ThreadCluster(4), data)
    coded = repro.run_coded_terasort(
        repro.ThreadCluster(4), data, redundancy=2
    )
    repro.validate_sorted_permutation(data, base.partitions)
    repro.validate_sorted_permutation(data, coded.partitions)
    assert coded.traffic.load_bytes("shuffle") < base.traffic.load_bytes(
        "shuffle"
    )


def test_extension_entry_points():
    data = repro.teragen(2000, seed=2)
    grouped = repro.run_grouped_coded_terasort(
        repro.ThreadCluster(4), data, redundancy=1, group_size=2
    )
    repro.validate_sorted_permutation(data, grouped.partitions)
    wireless = repro.run_wireless_sort(data, 4, 2, protocol="d2d")
    repro.validate_sorted_permutation(data, wireless.partitions)
    results = repro.straggler_comparison(iterations=5)
    assert {r.scheme for r in results} == {
        "uncoded", "replication", "coded",
    }
