"""Tests for multicast group enumeration and the CodeGen plan."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.groups import (
    build_coding_plan,
    group_schedule_by_group,
    verify_plan,
)
from repro.utils.subsets import binomial


class TestPlanStructure:
    def test_group_count(self):
        plan = build_coding_plan(6, 2)
        assert plan.num_groups == binomial(6, 3) == 20

    def test_paper_scale_counts(self):
        assert build_coding_plan(16, 3).num_groups == 1820
        assert build_coding_plan(20, 5).num_groups == 38760

    def test_packets_per_node(self):
        plan = build_coding_plan(6, 2)
        assert plan.packets_per_node == binomial(5, 2) == 10
        for node, idxs in plan.groups_of_node.items():
            assert len(idxs) == 10

    def test_total_multicasts(self):
        plan = build_coding_plan(5, 2)
        assert plan.total_multicasts == binomial(5, 3) * 3
        assert len(plan.schedule) == plan.total_multicasts

    def test_invalid_redundancy(self):
        with pytest.raises(ValueError):
            build_coding_plan(4, 0)
        with pytest.raises(ValueError):
            build_coding_plan(4, 4)  # no groups of size 5 exist

    def test_file_subset_for(self):
        plan = build_coding_plan(5, 2)
        idx = plan.groups.index((0, 2, 4))
        assert plan.file_subset_for(idx, 2) == (0, 4)

    @given(st.integers(2, 9), st.data())
    def test_verify_plan_property(self, k, data):
        r = data.draw(st.integers(1, k - 1))
        verify_plan(build_coding_plan(k, r))


class TestSchedule:
    def test_fig9b_sender_order(self):
        """Node 0 sends all its packets, then node 1, etc. (Fig. 9(b))."""
        plan = build_coding_plan(4, 2)
        senders = [s for _, s in plan.schedule]
        assert senders == sorted(senders)

    def test_schedule_covers_each_group_sender_pair_once(self):
        plan = build_coding_plan(5, 3)
        pairs = set()
        for gidx, sender in plan.schedule:
            assert sender in plan.groups[gidx]
            pairs.add((gidx, sender))
        assert len(pairs) == plan.total_multicasts

    def test_by_group_schedule_same_pairs(self):
        plan = build_coding_plan(5, 2)
        a = set(plan.schedule)
        b = set(group_schedule_by_group(plan))
        assert a == b

    def test_within_sender_lexicographic_groups(self):
        plan = build_coding_plan(5, 2)
        for sender in range(5):
            groups = [plan.groups[g] for g, s in plan.schedule if s == sender]
            assert groups == sorted(groups)


class TestVerifyPlanCatchesCorruption:
    def test_duplicate_schedule_entry(self):
        plan = build_coding_plan(4, 2)
        plan.schedule.append(plan.schedule[0])
        with pytest.raises(AssertionError):
            verify_plan(plan)

    def test_wrong_membership(self):
        plan = build_coding_plan(4, 2)
        plan.groups_of_node[0].append(
            next(i for i, g in enumerate(plan.groups) if 0 not in g)
        )
        with pytest.raises(AssertionError):
            verify_plan(plan)

    def test_missing_group(self):
        plan = build_coding_plan(4, 2)
        plan.groups.pop()
        with pytest.raises(AssertionError):
            verify_plan(plan)
