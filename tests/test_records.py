"""Tests for the RecordBatch substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvpairs.records import (
    KEY_BYTES,
    RECORD_BYTES,
    RECORD_DTYPE,
    VALUE_BYTES,
    RecordBatch,
)


def make_batch(keys_bytes):
    """Batch with given key byte rows and zero values."""
    n = len(keys_bytes)
    keys = np.array(keys_bytes, dtype=np.uint8).reshape(n, KEY_BYTES)
    values = np.zeros((n, VALUE_BYTES), dtype=np.uint8)
    return RecordBatch.from_arrays(keys, values)


class TestConstruction:
    def test_record_layout(self):
        assert RECORD_DTYPE.itemsize == RECORD_BYTES == 100
        assert KEY_BYTES == 10 and VALUE_BYTES == 90

    def test_empty(self):
        b = RecordBatch.empty()
        assert len(b) == 0 and b.nbytes == 0

    def test_from_arrays_uint8(self):
        b = make_batch([[i] * KEY_BYTES for i in range(3)])
        assert len(b) == 3
        # raw_view is authoritative: numpy strips trailing NULs when
        # extracting S10 elements, but the stored bytes are intact.
        assert bytes(b.raw_view()[0, :KEY_BYTES]) == bytes([0] * KEY_BYTES)
        assert bytes(b.raw_view()[1, :KEY_BYTES]) == bytes([1] * KEY_BYTES)

    def test_from_arrays_length_mismatch(self):
        keys = np.zeros((2, KEY_BYTES), dtype=np.uint8)
        values = np.zeros((3, VALUE_BYTES), dtype=np.uint8)
        with pytest.raises(ValueError):
            RecordBatch.from_arrays(keys, values)

    def test_from_arrays_bad_width(self):
        with pytest.raises(ValueError):
            RecordBatch.from_arrays(
                np.zeros((2, 9), dtype=np.uint8),
                np.zeros((2, VALUE_BYTES), dtype=np.uint8),
            )

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            RecordBatch(np.zeros(3, dtype=np.int64))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch(np.zeros((2, 2), dtype=RECORD_DTYPE))


class TestKeyDecomposition:
    def test_key_words_values(self):
        # key = 8 bytes of 0x01 then 0x02 0x03
        b = make_batch([[1] * 8 + [2, 3]])
        hi, lo = b.key_words()
        assert hi[0] == int.from_bytes(bytes([1] * 8), "big")
        assert lo[0] == (2 << 8) | 3

    def test_key_words_empty(self):
        hi, lo = RecordBatch.empty().key_words()
        assert len(hi) == 0 and len(lo) == 0

    def test_key_prefix_matches_hi(self):
        b = make_batch([[9] * 10, [1] * 10])
        assert (b.key_prefix_u64() == b.key_words()[0]).all()

    def test_lexsort_matches_python_byte_order(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 256, size=(200, KEY_BYTES), dtype=np.uint8)
        b = RecordBatch.from_arrays(
            keys, np.zeros((200, VALUE_BYTES), dtype=np.uint8)
        )
        hi, lo = b.key_words()
        order = np.lexsort((lo, hi))
        sorted_keys = [bytes(keys[i]) for i in order]
        assert sorted_keys == sorted(bytes(k) for k in keys)


class TestTransforms:
    def test_concat_preserves_order(self, tiny_batch):
        a = tiny_batch.slice(0, 100)
        b = tiny_batch.slice(100, 500)
        assert RecordBatch.concat([a, b]) == tiny_batch

    def test_concat_empty_list(self):
        assert len(RecordBatch.concat([])) == 0

    def test_split_at_roundtrip(self, tiny_batch):
        parts = tiny_batch.split_at([100, 250])
        assert [len(p) for p in parts] == [100, 150, 250]
        assert RecordBatch.concat(parts) == tiny_batch

    def test_take(self, tiny_batch):
        idx = np.array([5, 3, 1])
        taken = tiny_batch.take(idx)
        assert len(taken) == 3
        assert taken.keys[0] == tiny_batch.keys[5]

    def test_equality(self, tiny_batch):
        assert tiny_batch == tiny_batch.copy()
        assert tiny_batch != tiny_batch.slice(0, 10)
        assert (tiny_batch == object()) is False or True  # NotImplemented path

    def test_raw_view_shape(self, tiny_batch):
        raw = tiny_batch.raw_view()
        assert raw.shape == (len(tiny_batch), RECORD_BYTES)


class TestBytesRoundtrip:
    def test_roundtrip(self, tiny_batch):
        assert RecordBatch.from_bytes(tiny_batch.to_bytes()) == tiny_batch

    def test_empty_roundtrip(self):
        assert RecordBatch.from_bytes(b"") == RecordBatch.empty()

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            RecordBatch.from_bytes(b"x" * 150)

    @given(st.integers(0, 50))
    def test_roundtrip_random_sizes(self, n):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 256, size=(n, KEY_BYTES), dtype=np.uint8)
        values = rng.integers(0, 256, size=(n, VALUE_BYTES), dtype=np.uint8)
        b = RecordBatch.from_arrays(keys, values)
        assert RecordBatch.from_bytes(b.to_bytes()) == b
