"""Spill layer: run files, the streaming external merge, spill hygiene.

The external-merge contracts the out-of-core sort's byte-identity rests
on:

* duplicate keys across runs keep stable order (earlier run wins, and
  ties crossing a merge-window boundary are pulled into the same round);
* empty runs contribute nothing and never wedge the merge;
* a single live run takes the no-compare re-chunking fast path;
* mmap-backed run views stay valid after the backing file object is
  closed and even after the file is unlinked (NumPy holds the mapping);
* ``ExternalSorter`` + ``merge_runs`` reproduce one stable in-RAM sort
  byte-for-byte;
* ``StreamStore`` lays out per-key streams in append order regardless of
  flush timing (the XOR-coding determinism requirement);
* spill dirs disappear on cleanup/context-exit and ``sweep_stale`` reaps
  dirs whose creator pid is dead.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.kvpairs.records import RECORD_BYTES, RecordBatch
from repro.kvpairs.sorting import is_sorted, sort_batch
from repro.kvpairs.spill import (
    ExternalSorter,
    Run,
    SpillDir,
    StreamStore,
    merge_runs,
    read_blob,
    read_run_file,
    spill_blob,
    write_run_file,
)
from repro.kvpairs.teragen import teragen
from repro.utils.residency import ResidencyMeter


def _dup_batch(n, key_levels, seed=0):
    """Records with heavily duplicated keys and unique traceable values."""
    rng = np.random.default_rng(seed)
    keys = np.zeros((n, 10), np.uint8)
    keys[:, 0] = rng.integers(0, key_levels, size=n)
    values = np.zeros((n, 90), np.uint8)
    values[:, :8] = (
        np.arange(n, dtype=np.uint64).view(np.uint8).reshape(n, 8)
    )
    return RecordBatch.from_arrays(keys, values)


class TestMergeRuns:
    def test_duplicate_keys_across_runs_stable(self, tmp_path):
        # Three runs full of equal keys: output must equal the stable
        # sort of their concatenation (run order breaks every tie).
        stream = _dup_batch(900, key_levels=2)
        chunks = [
            sort_batch(stream.slice(i, i + 300)) for i in range(0, 900, 300)
        ]
        runs = []
        for i, chunk in enumerate(chunks):
            path = str(tmp_path / f"run-{i}.bin")
            write_run_file(path, [chunk])
            runs.append(Run.from_file(path))
        # Tiny windows force boundary ties to cross window edges.
        merged = RecordBatch.concat(
            list(merge_runs(runs, window_records=7, out_records=11))
        )
        ref = sort_batch(stream)
        assert np.array_equal(merged.array, ref.array)

    def test_window_boundary_ties_pulled_into_round(self, tmp_path):
        # Run 0 ends a window exactly on a duplicated key that continues
        # into its next window; run 1 holds the same key.  Stability
        # requires ALL of run 0's copies before any of run 1's.
        same = np.full((8, 10), 5, np.uint8)
        v0 = np.zeros((8, 90), np.uint8)
        v0[:, 0] = np.arange(8)
        r0 = RecordBatch.from_arrays(same, v0)
        v1 = np.zeros((3, 90), np.uint8)
        v1[:, 0] = 100 + np.arange(3)
        r1 = RecordBatch.from_arrays(same[:3], v1)
        merged = RecordBatch.concat(
            list(merge_runs([r0, r1], window_records=2, out_records=64))
        )
        order = merged.raw_view()[:, 10].tolist()
        assert order == list(range(8)) + [100, 101, 102]

    def test_empty_runs(self, tmp_path):
        data = sort_batch(teragen(500, seed=1))
        empty_path = str(tmp_path / "empty.bin")
        open(empty_path, "wb").close()
        runs = [
            RecordBatch.empty(),
            Run.from_file(empty_path),
            Run.resident(data),
            RecordBatch.empty(),
        ]
        merged = RecordBatch.concat(list(merge_runs(runs, window_records=64)))
        assert np.array_equal(merged.array, data.array)
        assert list(merge_runs([RecordBatch.empty()])) == []
        assert list(merge_runs([])) == []

    def test_single_run_fast_path(self):
        data = sort_batch(teragen(1000, seed=2))
        out = list(merge_runs([data], out_records=300))
        assert [len(b) for b in out] == [300, 300, 300, 100]
        assert np.array_equal(RecordBatch.concat(out).array, data.array)
        # Fast-path chunks alias the run (no merge copies were made).
        assert np.shares_memory(out[0].array, data.array)

    def test_unsorted_run_rejected(self):
        bad = teragen(50, seed=3)  # unsorted with overwhelming probability
        assert not is_sorted(bad)
        with pytest.raises(ValueError, match="not sorted"):
            list(merge_runs([bad, bad], window_records=512))
        # The single-run fast path honors the same contract.
        with pytest.raises(ValueError, match="not sorted"):
            list(merge_runs([bad], out_records=512))
        with pytest.raises(ValueError, match="not sorted"):
            # Sorted windows but a boundary violation between them.
            list(merge_runs([bad], out_records=1))


class TestRunFiles:
    def test_mmap_view_survives_file_close_and_unlink(self, tmp_path):
        data = sort_batch(teragen(200, seed=4))
        path = str(tmp_path / "run.bin")
        write_run_file(path, [data])
        batch = read_run_file(path)  # fd is closed inside
        view = batch.slice(50, 150)
        os.unlink(path)  # mapped pages must remain reachable
        assert np.array_equal(view.array, data.array[50:150])
        assert np.array_equal(batch.array, data.array)
        # Views are read-only: the mapping must not be writable.
        with pytest.raises(ValueError):
            batch.array[0] = batch.array[1]

    def test_append_and_sizes(self, tmp_path):
        a, b = teragen(10, seed=5), teragen(20, seed=6)
        path = str(tmp_path / "run.bin")
        assert write_run_file(path, [a, RecordBatch.empty(), b]) == 3000
        run = Run.from_file(path)
        assert run.num_records == 30 and run.nbytes == 30 * RECORD_BYTES
        whole = run.load()
        assert np.array_equal(
            whole.array, RecordBatch.concat([a, b]).array
        )
        windows = list(run.iter_batches(12))
        assert [len(w) for w in windows] == [12, 12, 6]

    def test_blob_roundtrip(self, tmp_path):
        with SpillDir(base=str(tmp_path)) as spill:
            view = spill_blob(spill, b"hello \x00 world")
            assert bytes(view) == b"hello \x00 world"
            empty = spill_blob(spill, b"")
            assert bytes(empty) == b""


class TestExternalSorter:
    def test_matches_stable_sort_byte_for_byte(self, tmp_path):
        stream = _dup_batch(5000, key_levels=7, seed=9)
        meter = ResidencyMeter()
        with SpillDir(base=str(tmp_path)) as spill:
            sorter = ExternalSorter(
                spill, chunk_bytes=40_000, meter=meter
            )
            for i in range(0, 5000, 617):
                sorter.add(stream.slice(i, min(i + 617, 5000)))
            merged = RecordBatch.concat(
                list(sorter.merge(window_records=100, out_records=500))
            )
        assert np.array_equal(merged.array, sort_batch(stream).array)
        assert meter.spilled_bytes == 5000 * RECORD_BYTES
        assert meter.spill_runs > 1  # small chunks really spilled


class TestStreamStore:
    def test_layout_independent_of_flush_timing(self, tmp_path):
        # The same appends with wildly different flush thresholds must
        # produce byte-identical per-key streams (coding determinism).
        data = teragen(600, seed=10)
        windows = [data.slice(i, i + 100) for i in range(0, 600, 100)]

        def build(flush_bytes):
            spill = SpillDir(base=str(tmp_path))
            store = StreamStore(spill, flush_bytes)
            for i, w in enumerate(windows):
                store.append("a" if i % 2 == 0 else "b", w)
            store.finalize()
            return store, spill

        eager, sd1 = build(flush_bytes=RECORD_BYTES)  # flush every append
        lazy, sd2 = build(flush_bytes=1 << 30)  # never flush until final
        try:
            assert eager.keys() == lazy.keys() == ["a", "b"]
            for key in ("a", "b"):
                assert eager.num_records(key) == lazy.num_records(key) == 300
                assert bytes(eager.get_bytes(key)) == bytes(
                    lazy.get_bytes(key)
                )
            ref = RecordBatch.concat(windows[::2])
            assert np.array_equal(eager.get("a").array, ref.array)
            got = RecordBatch.concat(list(eager.iter_batches("a", 70)))
            assert np.array_equal(got.array, ref.array)
        finally:
            sd1.cleanup()
            sd2.cleanup()

    def test_read_before_finalize_rejected(self, tmp_path):
        with SpillDir(base=str(tmp_path)) as spill:
            store = StreamStore(spill, 1 << 20)
            store.append("k", teragen(5, seed=0))
            with pytest.raises(RuntimeError, match="finalize"):
                store.get("k")


class TestSpillHygiene:
    def test_cleanup_idempotent_and_context_exit(self, tmp_path):
        spill = SpillDir(base=str(tmp_path))
        path = spill.new_path()
        write_run_file(path, [teragen(5, seed=0)])
        assert spill.exists
        spill.cleanup()
        spill.cleanup()
        assert not spill.exists
        with SpillDir(base=str(tmp_path)) as sd:
            inner = sd.path
        assert not os.path.isdir(inner)

    def test_sweep_stale_reaps_dead_pids_only(self, tmp_path):
        base = str(tmp_path)
        live = SpillDir(base=base)
        # Forge a dir from a dead pid (re-using an exited child's pid is
        # racy; pid 2**22+1 is above the default pid_max ceiling).
        dead = os.path.join(base, "repro-spill-4194305-job-x")
        os.makedirs(dead)
        bogus = os.path.join(base, "repro-spill-notapid-job-x")
        os.makedirs(bogus)
        removed = SpillDir.sweep_stale(base)
        assert removed == [dead]
        assert live.exists and os.path.isdir(bogus)
        live.cleanup()


class TestSortedRunWriter:
    """Incremental run writing must match whole-run writing, sidecar too."""

    def test_chunked_write_equals_whole_write(self, tmp_path):
        from repro.kvpairs.spill import SortedRunWriter, write_sorted_run

        whole = sort_batch(teragen(5000, seed=60))
        ref_path = str(tmp_path / "whole.run")
        write_sorted_run(ref_path, whole)

        inc_path = str(tmp_path / "inc.run")
        writer = SortedRunWriter(inc_path)
        for chunk in whole.iter_slices(700):
            writer.write(chunk)
        run = writer.close()
        assert run.num_records == len(whole)
        assert read_run_file(inc_path).to_bytes() == whole.to_bytes()
        with open(ref_path, "rb") as a, open(inc_path, "rb") as b:
            assert a.read() == b.read()
        from repro.kvpairs.spill import ovc_sidecar_path

        ref_ovc, inc_ovc = ovc_sidecar_path(ref_path), ovc_sidecar_path(inc_path)
        assert os.path.exists(ref_ovc) == os.path.exists(inc_ovc)
        if os.path.exists(ref_ovc):
            with open(ref_ovc, "rb") as a, open(inc_ovc, "rb") as b:
                assert a.read() == b.read()

    def test_empty_chunks_skipped(self, tmp_path):
        from repro.kvpairs.spill import SortedRunWriter

        writer = SortedRunWriter(str(tmp_path / "e.run"))
        writer.write(RecordBatch.empty())
        batch = sort_batch(teragen(100, seed=61))
        writer.write(batch)
        writer.write(RecordBatch.empty())
        run = writer.close()
        assert run.num_records == 100


class TestIncrementalMerger:
    """Eager pre-merging never changes the final byte stream."""

    def _reference(self, slot_batches):
        ordered = [b for slot in slot_batches for b in slot if len(b)]
        runs = [Run.resident(b) for b in ordered]
        return b"".join(
            chunk.to_bytes() for chunk in merge_runs(runs)
        )

    def _feed_orders(self, num_slots, counts, seed):
        """A few interleavings of (slot, index-within-slot) feed events."""
        rng = np.random.default_rng(seed)
        events = [
            (slot, i) for slot in range(num_slots)
            for i in range(counts[slot])
        ]
        orders = [list(events)]
        for _ in range(3):
            # Within-slot order must be preserved; shuffle then stable-fix.
            perm = list(events)
            rng.shuffle(perm)
            fixed, seen = [], {s: 0 for s in range(num_slots)}
            pos = {
                s: [e for e in perm if e[0] == s] for s in range(num_slots)
            }
            for slot, _ in perm:
                fixed.append((slot, seen[slot]))
                seen[slot] += 1
            orders.append(fixed)
        return orders

    def test_random_feed_orders_match_merge_runs(self):
        from repro.kvpairs.spill import IncrementalMerger

        num_slots, counts = 3, [4, 3, 5]
        slot_batches = [
            [
                sort_batch(_dup_batch(400, 5, seed=10 * s + i))
                for i in range(counts[s])
            ]
            for s in range(num_slots)
        ]
        reference = self._reference(slot_batches)
        for order in self._feed_orders(num_slots, counts, seed=62):
            merger = IncrementalMerger(num_slots)
            for slot, i in order:
                merger.feed(slot, slot_batches[slot][i])
            out = b"".join(c.to_bytes() for c in merger.finish())
            assert out == reference

    def test_eager_merging_happens(self):
        from repro.kvpairs.spill import IncrementalMerger

        merger = IncrementalMerger(1)
        for i in range(8):
            merger.feed(0, sort_batch(_dup_batch(500, 4, seed=i)))
        assert merger.eager_merges > 0
        assert merger.pending_runs < 8

    def test_spilled_pair_merge_matches_resident(self, tmp_path):
        from repro.kvpairs.spill import IncrementalMerger

        batches = [
            sort_batch(_dup_batch(600, 6, seed=70 + i)) for i in range(6)
        ]
        reference = self._reference([batches])

        spill = SpillDir(tag="im-test")
        try:
            meter = ResidencyMeter()
            merger = IncrementalMerger(
                1,
                spill=spill,
                resident_limit=2 * 600 * RECORD_BYTES,
                window_records=128,
                out_records=128,
                meter=meter,
            )
            for b in batches:
                merger.feed(0, b)
            out = b"".join(c.to_bytes() for c in merger.finish())
            assert out == reference
        finally:
            spill.cleanup()

    def test_empty_runs_ignored(self):
        from repro.kvpairs.spill import IncrementalMerger

        merger = IncrementalMerger(2)
        merger.feed(0, RecordBatch.empty())
        batch = sort_batch(teragen(200, seed=63))
        merger.feed(1, batch)
        out = b"".join(c.to_bytes() for c in merger.finish())
        assert out == batch.to_bytes()
        assert merger.pending_runs == 1


class TestStreamStoreSeal:
    """Per-key sealing: early reads while other keys still append."""

    def test_sealed_key_readable_before_finalize(self):
        spill = SpillDir(tag="seal-test")
        try:
            store = StreamStore(spill, flush_bytes=1 << 20)
            a = teragen(300, seed=64)
            b = teragen(200, seed=65)
            store.append("a", a)
            store.append("b", b.slice(0, 100))
            store.seal("a")
            assert store.get("a").to_bytes() == a.to_bytes()
            # Other keys keep appending after the seal.
            store.append("b", b.slice(100, 200))
            with pytest.raises(RuntimeError, match="sealed"):
                store.append("a", a)
            with pytest.raises(RuntimeError):
                store.get("b")
            store.finalize()
            assert store.get("b").to_bytes() == b.to_bytes()
            assert store.get("a").to_bytes() == a.to_bytes()
        finally:
            spill.cleanup()

    def test_seal_matches_unsealed_bytes(self):
        """Seal timing never changes a key's byte stream."""
        batches = [teragen(150, seed=66 + i) for i in range(4)]

        def build(seal_early):
            spill = SpillDir(tag="seal-eq")
            try:
                store = StreamStore(spill, flush_bytes=200 * RECORD_BYTES)
                for i, b in enumerate(batches):
                    store.append("k", b.slice(0, 75))
                    store.append("other", b)
                store.append("k", batches[0].slice(75, 150))
                if seal_early:
                    store.seal("k")
                    blob = store.get("k").to_bytes()
                    store.append("other", batches[0])
                    store.finalize()
                    return blob
                store.finalize()
                return store.get("k").to_bytes()
            finally:
                spill.cleanup()

        assert build(True) == build(False)

    def test_seal_unknown_key_reads_empty(self):
        spill = SpillDir(tag="seal-unk")
        try:
            store = StreamStore(spill, flush_bytes=1 << 20)
            store.seal("ghost")
            assert len(store.get("ghost")) == 0
        finally:
            spill.cleanup()
