"""Tests for traffic accounting (the paper's load convention)."""

from __future__ import annotations

import pytest

from repro.runtime.traffic import TrafficLog, TrafficRecord


class TestRecordSemantics:
    def test_unicast_load_equals_wire(self):
        r = TrafficRecord("shuffle", "unicast", 0, (1,), 100)
        assert r.load_bytes == 100
        assert r.wire_bytes == 100

    def test_multicast_load_counted_once(self):
        r = TrafficRecord("shuffle", "multicast", 0, (1, 2, 3), 100)
        assert r.load_bytes == 100
        assert r.wire_bytes == 300


class TestLog:
    def make_log(self):
        log = TrafficLog()
        log.record("shuffle", "unicast", 0, (1,), 10)
        log.record("shuffle", "multicast", 1, (0, 2), 20)
        log.record("other", "unicast", 2, (0,), 40)
        return log

    def test_totals(self):
        log = self.make_log()
        assert log.load_bytes() == 70
        assert log.wire_bytes() == 10 + 40 + 40

    def test_stage_filter(self):
        log = self.make_log()
        assert log.load_bytes("shuffle") == 30
        assert log.message_count("shuffle") == 2

    def test_by_stage(self):
        assert self.make_log().by_stage() == {"shuffle": 30, "other": 40}

    def test_by_sender(self):
        log = self.make_log()
        assert log.by_sender() == {0: 10, 1: 20, 2: 40}
        assert log.by_sender("shuffle") == {0: 10, 1: 20}

    def test_normalized_load(self):
        log = self.make_log()
        assert log.normalized_load(300, "shuffle") == pytest.approx(0.1)
        with pytest.raises(ValueError):
            log.normalized_load(0, "shuffle")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TrafficLog().record("s", "broadcastish", 0, (1,), 5)

    def test_extend_merges(self):
        a, b = self.make_log(), self.make_log()
        a.extend(b.records)
        assert a.load_bytes() == 140

    def test_thread_safety_smoke(self):
        import threading

        log = TrafficLog()

        def writer():
            for _ in range(500):
                log.record("s", "unicast", 0, (1,), 1)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.message_count() == 2000
