"""Tests for the balanced-workload closed forms (simulator inputs)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.theory import (
    coded_multicast_count,
    coded_packet_bytes,
    coded_shuffle_bytes,
    uncoded_shuffle_bytes,
    uncoded_shuffle_messages,
)
from repro.sim.workload import CodedWorkload, UncodedWorkload
from repro.utils.subsets import binomial


class TestUncodedWorkload:
    W = UncodedWorkload(num_nodes=16, n_records=120_000_000)

    def test_totals(self):
        assert self.W.total_bytes == 12e9
        assert self.W.pairs_per_node == 7.5e6

    def test_unicast_size_and_count(self):
        assert self.W.unicast_bytes == pytest.approx(12e9 / 256)
        assert self.W.num_unicasts == uncoded_shuffle_messages(16)

    def test_total_shuffle_volume_matches_theory(self):
        total = self.W.unicast_bytes * self.W.num_unicasts
        assert total == pytest.approx(uncoded_shuffle_bytes(12e9, 16))

    def test_pack_equals_unpack(self):
        assert self.W.pack_bytes_per_node == self.W.unpack_bytes_per_node


class TestCodedWorkload:
    W = CodedWorkload(num_nodes=16, redundancy=3, n_records=120_000_000)

    def test_structure_counts(self):
        assert self.W.num_files == binomial(16, 3) == 560
        assert self.W.files_per_node == binomial(15, 2) == 105
        assert self.W.num_groups == binomial(16, 4) == 1820
        assert self.W.groups_per_node == binomial(15, 3) == 455

    def test_packet_bytes_matches_theory(self):
        assert self.W.packet_bytes == pytest.approx(
            coded_packet_bytes(12e9, 3, 16)
        )

    def test_total_multicasts_matches_theory(self):
        assert self.W.total_multicasts == coded_multicast_count(3, 16)

    def test_shuffle_payload_matches_eq2(self):
        assert self.W.shuffle_payload_total == pytest.approx(
            coded_shuffle_bytes(12e9, 3, 16)
        )

    def test_map_pairs_scale_with_r(self):
        assert self.W.map_pairs_per_node == pytest.approx(3 * 7.5e6)

    def test_invalid_redundancy(self):
        with pytest.raises(ValueError):
            CodedWorkload(num_nodes=4, redundancy=4, n_records=100)

    @given(st.integers(2, 24), st.data())
    def test_conservation_properties(self, k, data):
        """Cross-identities hold for all (K, r)."""
        r = data.draw(st.integers(1, k - 1))
        w = CodedWorkload(num_nodes=k, redundancy=r, n_records=1_000_000)
        # Every node's multicasts x K nodes == total multicasts.
        assert w.multicasts_per_node * k == w.total_multicasts * 1
        # Files x replication == per-node files x K.
        assert w.num_files * r == w.files_per_node * k
        # Decode recovers exactly what the node did not map:
        # (N - C(K-1,r-1)) files x one intermediate each.
        missing_files = w.num_files - w.files_per_node
        assert w.groups_per_node == missing_files
        # Shuffle payload == Eq. (2) load x dataset bytes.
        from repro.core.theory import coded_comm_load

        assert w.shuffle_payload_total == pytest.approx(
            coded_comm_load(r, k) * w.total_bytes
        )
