"""Elastic service pools end-to-end: mid-flight rejoin, mesh regrowth,
and shrink-to-fit scheduling on real TCP meshes.

The acceptance criteria for the elastic PR, verified against genuine
``run_worker`` processes and a live :class:`SortService`:

* a replacement worker completes the rendezvous handshake while a job
  is in flight on a disjoint subset — the job is undisturbed and a
  later job spans the joined rank, both byte-identical to solo runs;
* SIGKILLing workers shrinks ``workers_live``; respawned replacements
  recycle the dead ranks, the mesh relinks, and full-width jobs run
  byte-identically again — all observable via ``repro status --json``;
* a joiner requesting a live rank is rejected with a typed reason
  naming the membership epoch, and a peer hello carrying a stale mesh
  nonce (what a worker from a pre-restart pool generation would send)
  is dropped without disturbing the mesh;
* with ``shrink_to_fit`` on, a queued K=4 sort re-plans onto 2 free
  workers (``replanned_k`` reported on the handle) while a coded job
  whose geometry cannot shrink waits for the mesh to regrow and then
  runs at full width.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.kvpairs.teragen import teragen
from repro.runtime.inproc import ThreadCluster
from repro.runtime.tcp import (
    _MAGIC,
    _PEER_HELLO,
    _TAG_PEER,
    TcpCluster,
    TcpHandshakeError,
    run_worker,
)
from repro.runtime.transport import send_frame
from repro.service import ServiceClient, SortService
from repro.session import CodedTeraSortSpec, Session, TeraSortSpec
from repro.testing.faults import ENV_VAR

_CTX = multiprocessing.get_context("fork")
_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def no_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    return monkeypatch


def _spawn_workers(address, n):
    procs = [
        _CTX.Process(
            target=run_worker,
            kwargs=dict(
                join=address, quiet=True,
                connect_timeout=60.0, handshake_timeout=60.0,
            ),
            daemon=True,
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    return procs


def _reap(procs, timeout=15.0):
    for p in procs:
        p.join(timeout)
        if p.is_alive():
            p.terminate()
            p.join()


def _solo_partitions(spec, k):
    with Session(ThreadCluster(k, recv_timeout=60.0)) as session:
        run = session.submit(spec).result(timeout=60)
    return [p.to_bytes() for p in run.partitions]


def _wait_stats(client, predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.stats()
        if predicate(stats):
            return stats
        time.sleep(0.1)
    raise AssertionError(f"stats never converged: {client.stats()}")


def test_worker_joins_mid_flight_and_grows_the_mesh(no_plan):
    """K=3 mesh; while a 2-worker sort is held in map, a 4th worker
    joins (mesh growth).  The in-flight job is untouched and a coded
    job then spans all 4 ranks — both byte-identical to solo runs."""
    data_a = teragen(1200, seed=101)
    data_b = teragen(1200, seed=102)
    ref_a = _solo_partitions(TeraSortSpec(data=data_a), 2)
    ref_b = _solo_partitions(
        CodedTeraSortSpec(data=data_b, redundancy=2), 4
    )

    # Hold job 0's map open so the join provably overlaps it.
    no_plan.setenv(ENV_VAR, "stage.delay,stage=map,secs=1.0,job_lt=1")
    with TcpCluster(
        3, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 3)
        try:
            with SortService(cluster) as service:
                service.start()
                client = ServiceClient(service.control_address)
                handle_a = client.submit(
                    TeraSortSpec(data=data_a), tenant="alice", workers=2
                )
                # The rendezvous listener stays open: one more worker
                # dials in while job A is still mapping.
                procs += _spawn_workers(cluster.address, 1)
                stats = _wait_stats(
                    client, lambda s: s.workers_live == 4
                )
                assert stats.workers_joined == 1
                assert stats.membership_epoch >= 1

                run_a = handle_a.result(timeout=120)
                assert [p.to_bytes() for p in run_a.partitions] == ref_a

                handle_b = client.submit(
                    CodedTeraSortSpec(data=data_b, redundancy=2),
                    tenant="bob",
                    workers=4,
                )
                run_b = handle_b.result(timeout=120)
                assert [p.to_bytes() for p in run_b.partitions] == ref_b
                assert handle_b.replanned_k is None
                row_b = client.status(handle_b.job_id)[0]
                # The joined rank (3) really took part.
                assert sorted(row_b["workers_used"]) == [0, 1, 2, 3]
        finally:
            _reap(procs)


def test_sigkill_two_rejoin_recycles_ranks_and_status_json(no_plan):
    """K=4 mesh: SIGKILL 2 workers, respawn replacements.  The dead
    ranks are recycled, full-width sorts are byte-identical before and
    after, and ``repro status --json`` reports the regrowth."""
    data = teragen(1200, seed=103)
    spec = TeraSortSpec(data=data)
    ref = _solo_partitions(TeraSortSpec(data=data), 4)

    with TcpCluster(
        4, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 4)
        try:
            with SortService(cluster) as service:
                service.start()
                client = ServiceClient(service.control_address)
                run = client.submit(spec, workers=4).result(timeout=120)
                assert [p.to_bytes() for p in run.partitions] == ref

                for p in procs[:2]:
                    os.kill(p.pid, signal.SIGKILL)
                _wait_stats(client, lambda s: s.workers_live == 2)

                procs += _spawn_workers(cluster.address, 2)
                stats = _wait_stats(
                    client, lambda s: s.workers_live == 4
                )
                assert stats.workers_joined == 2
                # 2 deaths + 2 joins, each a membership change.
                assert stats.membership_epoch >= 4

                run = client.submit(spec, workers=4).result(timeout=120)
                assert [p.to_bytes() for p in run.partitions] == ref

                env = dict(os.environ)
                env["PYTHONPATH"] = (
                    os.path.join(_REPO, "src")
                    + os.pathsep + env.get("PYTHONPATH", "")
                )
                out = subprocess.run(
                    [sys.executable, "-m", "repro", "status", "--json",
                     "--connect", service.control_address],
                    env=env, capture_output=True, text=True, timeout=60,
                )
                assert out.returncode == 0, out.stderr
                payload = json.loads(out.stdout)
                assert payload["stats"]["workers_live"] == 4
                assert payload["stats"]["workers_joined"] == 2
                assert payload["stats"]["membership_epoch"] >= 4
        finally:
            _reap(procs)


def test_duplicate_rank_and_stale_nonce_rejected(no_plan):
    """A joiner asking for a live rank bounces with a typed reason
    naming the membership epoch, and a peer hello with a wrong mesh
    nonce — what a worker of a pre-restart pool generation would send,
    the nonce being minted per generation — is dropped.  The standing
    mesh serves jobs undisturbed after both."""
    data = teragen(800, seed=104)
    ref = _solo_partitions(TeraSortSpec(data=data), 2)

    with TcpCluster(
        2, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 2)
        try:
            with SortService(cluster) as service:
                service.start()
                client = ServiceClient(service.control_address)

                # Rank 0 is live: a replacement naming it is rejected.
                with pytest.raises(TcpHandshakeError) as exc_info:
                    run_worker(
                        join=cluster.address, rank=0, quiet=True,
                        connect_timeout=15.0, handshake_timeout=15.0,
                    )
                assert "duplicate rank" in str(exc_info.value)
                assert "membership epoch" in str(exc_info.value)

                # A stale-generation dialer: right magic and rank, wrong
                # nonce.  The worker's join acceptor closes it without
                # touching the live links.
                pool = service._pool
                stale_nonce = (pool._pool._nonce ^ 1) & (2 ** 64 - 1)
                host, port = pool._addrs[0]
                sock = socket.create_connection((host, port), timeout=10)
                try:
                    sock.settimeout(10.0)
                    send_frame(
                        sock,
                        _TAG_PEER,
                        _PEER_HELLO.pack(_MAGIC, stale_nonce, 1, 7),
                    )
                    assert sock.recv(1) == b""  # peer closed: rejected
                finally:
                    sock.close()

                run = client.submit(
                    TeraSortSpec(data=data), workers=2
                ).result(timeout=120)
                assert [p.to_bytes() for p in run.partitions] == ref
                stats = client.stats()
                assert stats.workers_live == 2
                assert stats.workers_joined == 0
        finally:
            _reap(procs)


def test_shrink_to_fit_replans_while_coded_waits_for_regrowth(no_plan):
    """K=4 mesh down to 2 live workers: with ``shrink_to_fit`` on, a
    4-wide uncoded sort re-plans onto the 2 survivors (``replanned_k``
    on the handle), while a coded job whose geometry cannot shrink at
    all (r=3 needs K'=4) waits and runs at full width once the mesh
    regrows."""
    data_u = teragen(1200, seed=105)
    data_c = teragen(1200, seed=106)
    ref_u2 = _solo_partitions(TeraSortSpec(data=data_u), 2)
    ref_c4 = _solo_partitions(
        CodedTeraSortSpec(data=data_c, redundancy=3), 4
    )

    with TcpCluster(
        4, "tcp://127.0.0.1:0", timeout=60, connect_timeout=60
    ) as cluster:
        procs = _spawn_workers(cluster.address, 4)
        try:
            with SortService(cluster, shrink_to_fit=True) as service:
                service.start()
                client = ServiceClient(service.control_address)
                for p in procs[:2]:
                    os.kill(p.pid, signal.SIGKILL)
                _wait_stats(client, lambda s: s.workers_live == 2)

                handle_u = client.submit(
                    TeraSortSpec(data=data_u), tenant="alice", workers=4
                )
                run_u = handle_u.result(timeout=120)
                assert handle_u.replanned_k == 2
                assert [p.to_bytes() for p in run_u.partitions] == ref_u2
                row_u = client.status(handle_u.job_id)[0]
                assert row_u["replanned_k"] == 2
                assert len(row_u["workers_used"]) == 2

                # r=3 needs K' >= 4: this one must wait, not shrink.
                handle_c = client.submit(
                    CodedTeraSortSpec(data=data_c, redundancy=3),
                    tenant="bob",
                    workers=4,
                )
                time.sleep(1.0)
                assert client.status(handle_c.job_id)[0]["state"] == "queued"

                procs += _spawn_workers(cluster.address, 2)
                _wait_stats(client, lambda s: s.workers_live == 4)
                run_c = handle_c.result(timeout=120)
                assert handle_c.replanned_k is None
                assert [p.to_bytes() for p in run_c.partitions] == ref_c4
        finally:
            _reap(procs)
