"""Tests for coded / replicated / uncoded distributed matvec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.matmul import (
    CodedMatVec,
    ReplicatedMatVec,
    UncodedMatVec,
    _split_rows,
    make_scheme,
)


def problem(rows=60, cols=9, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((rows, cols)), rng.standard_normal(cols)


class TestSplitRows:
    def test_even(self):
        assert _split_rows(10, 5) == [slice(i * 2, i * 2 + 2) for i in range(5)]

    def test_uneven_front_loaded(self):
        slices = _split_rows(11, 3)
        sizes = [s.stop - s.start for s in slices]
        assert sizes == [4, 4, 3]
        assert slices[0].start == 0 and slices[-1].stop == 11

    @given(rows=st.integers(1, 500), blocks=st.integers(1, 32))
    def test_partition_property(self, rows, blocks):
        if blocks > rows:
            return
        slices = _split_rows(rows, blocks)
        sizes = [s.stop - s.start for s in slices]
        assert sum(sizes) == rows
        assert max(sizes) - min(sizes) <= 1
        assert slices[0].start == 0
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start


class TestValidation:
    def test_bad_inputs(self):
        a, _ = problem()
        with pytest.raises(ValueError):
            UncodedMatVec(np.zeros(5), 2)  # 1-D A
        with pytest.raises(ValueError):
            UncodedMatVec(a, 0)
        with pytest.raises(ValueError):
            UncodedMatVec(a, 100)  # more workers than rows
        with pytest.raises(ValueError):
            ReplicatedMatVec(a, 10, replication=3)  # 3 does not divide 10
        with pytest.raises(ValueError):
            CodedMatVec(a, 10, recovery_threshold=11)
        with pytest.raises(ValueError):
            make_scheme("raid5", a, 4)


class TestCorrectness:
    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("uncoded", {}),
            ("replication", {"replication": 2}),
            ("coded", {"recovery_threshold": 6}),
            ("coded", {"recovery_threshold": 10}),  # k = n edge case
            ("coded", {"recovery_threshold": 1}),  # k = 1 edge case
        ],
    )
    def test_exact_product(self, name, kwargs):
        a, x = problem()
        scheme = make_scheme(name, a, 10, **kwargs)
        out = scheme.multiply(x, np.random.default_rng(1))
        assert np.allclose(out.y, a @ x, atol=1e-8)

    def test_rows_not_divisible_by_k(self):
        """Padding path: 61 rows, k=7 -> ceil to 63, trim back to 61."""
        a, x = problem(rows=61)
        scheme = CodedMatVec(a, 10, recovery_threshold=7)
        out = scheme.multiply(x, np.random.default_rng(2))
        assert out.y.shape == (61,)
        assert np.allclose(out.y, a @ x, atol=1e-8)

    def test_matrix_rhs(self):
        """x may be a matrix (A^T U in the GD backward pass)."""
        a, _ = problem()
        x = np.random.default_rng(3).standard_normal((9, 4))
        scheme = CodedMatVec(a, 10, recovery_threshold=5)
        out = scheme.multiply(x, np.random.default_rng(4))
        assert out.y.shape == (60, 4)
        assert np.allclose(out.y, a @ x, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_all_schemes_agree(self, data):
        n = data.draw(st.integers(2, 8))
        k = data.draw(st.integers(1, n))
        rows = data.draw(st.integers(n, 50))
        a, x = problem(rows=rows, seed=data.draw(st.integers(0, 99)))
        seed = data.draw(st.integers(0, 99))
        uncoded = UncodedMatVec(a, n).multiply(x, np.random.default_rng(seed))
        coded = CodedMatVec(a, n, recovery_threshold=k).multiply(
            x, np.random.default_rng(seed)
        )
        assert np.allclose(uncoded.y, coded.y, atol=1e-6)


class TestTiming:
    def test_uncoded_waits_for_everyone(self):
        a, x = problem()
        scheme = UncodedMatVec(a, 10)
        out = scheme.multiply(x, np.random.default_rng(5))
        assert out.time == pytest.approx(out.worker_times.max())
        assert out.waited_for == list(range(10))

    def test_coded_waits_for_kth(self):
        a, x = problem()
        scheme = CodedMatVec(a, 10, recovery_threshold=6)
        out = scheme.multiply(x, np.random.default_rng(6))
        assert len(out.waited_for) == 6
        assert out.time == pytest.approx(
            np.sort(out.worker_times)[5]
        )
        # Stragglers beyond the k-th are strictly ignored.
        assert out.time <= out.worker_times.max()

    def test_replication_uses_fastest_replica(self):
        a, x = problem()
        scheme = ReplicatedMatVec(a, 10, replication=5)
        out = scheme.multiply(x, np.random.default_rng(7))
        assert len(out.waited_for) == 2  # 10/5 blocks
        blocks = {scheme.block_of_worker[w] for w in out.waited_for}
        assert blocks == {0, 1}

    def test_expected_time_orders_schemes(self):
        """With a heavy tail, coded < replicated < uncoded in expectation."""
        a, _ = problem(rows=100)
        lat = ShiftedExponential(shift=1.0, rate=0.5)
        uncoded = UncodedMatVec(a, 10, latency=lat).expected_time()
        repl = ReplicatedMatVec(a, 10, replication=2, latency=lat).expected_time()
        coded = CodedMatVec(a, 10, recovery_threshold=7, latency=lat).expected_time()
        assert coded < repl < uncoded

    def test_expected_time_matches_monte_carlo(self):
        a, x = problem(rows=100)
        scheme = CodedMatVec(a, 10, recovery_threshold=7)
        rng = np.random.default_rng(8)
        times = [scheme.multiply(x, rng).time for _ in range(3000)]
        assert np.mean(times) == pytest.approx(scheme.expected_time(), rel=0.05)

    def test_work_scales_with_scheme(self):
        """Coded workers each do 1/k of A; uncoded do 1/n (< 1/k)."""
        a, _ = problem(rows=100)
        assert CodedMatVec(a, 10, recovery_threshold=5).work_per_worker == 0.2
        assert UncodedMatVec(a, 10).work_per_worker == 0.1
