"""Session API: persistent pools, declarative specs, job futures.

The acceptance bar for the redesign: every JobSpec kind, submitted to a
multi-job session on either backend, must return *byte-identical*
results and matching per-job traffic to its legacy one-shot ``run_*``
counterpart — and a failing job must fail only its own handle while the
session keeps serving subsequent jobs.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.cmr import MapReduceJob, run_mapreduce
from repro.core.coded_terasort import run_coded_terasort
from repro.core.jobs import WordCountJob
from repro.core.terasort import run_terasort
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.session import (
    CodedTeraSortSpec,
    JobHandle,
    JobSpec,
    MapReduceSpec,
    Session,
    TeraSortSpec,
)
from repro.utils.subsets import binomial

K = 4
R = 2


def _make_cluster(backend: str, k: int = K):
    if backend == "thread":
        return ThreadCluster(k, recv_timeout=60)
    return ProcessCluster(k, timeout=120)


def _corpus(k: int, r: int):
    n = 2 * binomial(k, r)
    return [f"alpha beta gamma file{i % 3} beta" for i in range(n)]


class FailingJob(MapReduceJob):
    """Module-level (picklable) job whose map raises on one file."""

    name = "failing"

    def map_file(self, file_id, payload):
        if file_id == 0:
            raise RuntimeError("intentional map failure")
        return {0: 1}

    def reduce(self, q, values):
        return len(values)


def _traffic_summary(traffic):
    """Order-independent digest of a per-job traffic log."""
    return sorted(
        (r.stage, r.kind, r.src, r.dsts, r.payload_bytes)
        for r in traffic.records
        if r.kind != "relay"
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestMultiJobSession:
    def test_three_spec_kinds_match_one_shot_byte_identical(self, backend):
        """TeraSort + CodedTeraSort + WordCount on ONE session == one-shot."""
        data = teragen(3000, seed=11)
        corpus = _corpus(K, R)
        with Session(_make_cluster(backend)) as session:
            h_base = session.submit(TeraSortSpec(data=data))
            h_coded = session.submit(
                CodedTeraSortSpec(data=data, redundancy=R)
            )
            h_wc = session.submit(
                MapReduceSpec(
                    job=WordCountJob(),
                    files=corpus,
                    redundancy=R,
                    scheme="coded",
                )
            )
            base, coded, wc = (
                h_base.result(),
                h_coded.result(),
                h_wc.result(),
            )
        assert [h_base.job_id, h_coded.job_id, h_wc.job_id] == [0, 1, 2]

        ref_base = run_terasort(_make_cluster(backend), data)
        ref_coded = run_coded_terasort(
            _make_cluster(backend), data, redundancy=R
        )
        ref_wc = run_mapreduce(
            _make_cluster(backend),
            WordCountJob(),
            corpus,
            redundancy=R,
            coded=True,
        )

        for run, ref in ((base, ref_base), (coded, ref_coded)):
            validate_sorted_permutation(data, run.partitions)
            assert [p.to_bytes() for p in run.partitions] == [
                p.to_bytes() for p in ref.partitions
            ]
        assert wc.outputs == ref_wc.outputs

        # Per-job traffic is isolated per job id and matches one-shot runs.
        assert _traffic_summary(base.traffic) == _traffic_summary(
            ref_base.traffic
        )
        assert _traffic_summary(coded.traffic) == _traffic_summary(
            ref_coded.traffic
        )
        assert _traffic_summary(wc.traffic) == _traffic_summary(
            ref_wc.traffic
        )

    def test_repeated_jobs_reuse_one_pool(self, backend):
        """Back-to-back identical sorts stay byte-identical on one pool."""
        data = teragen(2000, seed=5)
        with Session(_make_cluster(backend)) as session:
            handles = [
                session.submit(TeraSortSpec(data=data)) for _ in range(4)
            ]
            runs = [h.result() for h in handles]
        first = [p.to_bytes() for p in runs[0].partitions]
        for run in runs[1:]:
            assert [p.to_bytes() for p in run.partitions] == first
        summaries = {
            tuple(map(tuple, _traffic_summary(run.traffic))) for run in runs
        }
        assert len(summaries) == 1  # every job logged exactly its own bytes

    def test_failing_job_fails_its_handle_only(self, backend):
        """A raising job reports on its handle; the session survives."""
        data = teragen(1500, seed=6)
        files = ["x"] * binomial(K, R)
        with Session(_make_cluster(backend)) as session:
            ok_before = session.submit(TeraSortSpec(data=data))
            bad = session.submit(
                MapReduceSpec(
                    job=FailingJob(),
                    files=files,
                    redundancy=R,
                    scheme="coded",
                )
            )
            ok_after = session.submit(
                CodedTeraSortSpec(data=data, redundancy=R)
            )

            err = bad.exception()
            assert isinstance(err, RuntimeError)
            assert "intentional map failure" in str(err)
            with pytest.raises(RuntimeError, match="intentional"):
                bad.result()
            assert bad.done()

            validate_sorted_permutation(data, ok_before.result().partitions)
            validate_sorted_permutation(data, ok_after.result().partitions)
            assert ok_after.exception() is None

    def test_cluster_result_isolated_per_job(self, backend):
        """JobHandle.cluster_result carries only that job's stages/bytes."""
        data = teragen(1500, seed=7)
        with Session(_make_cluster(backend)) as session:
            h1 = session.submit(TeraSortSpec(data=data))
            h2 = session.submit(CodedTeraSortSpec(data=data, redundancy=R))
            cr1 = h1.cluster_result()
            cr2 = h2.cluster_result()
        assert cr1.stage_times.stages == [
            "map", "pack", "shuffle", "unpack", "reduce",
        ]
        assert cr2.stage_times.stages == [
            "codegen", "map", "encode", "shuffle", "decode", "reduce",
        ]
        assert cr1.traffic is not cr2.traffic
        assert all(r.kind == "unicast" for r in cr1.traffic.records)


class TestSessionLifecycle:
    def test_submit_validates_synchronously(self):
        data = teragen(500, seed=1)
        with Session(ThreadCluster(4, recv_timeout=30)) as session:
            with pytest.raises(ValueError, match="redundancy"):
                session.submit(CodedTeraSortSpec(data=data, redundancy=9))
            # coded shuffle needs groups of r+1 <= K: r = K must be
            # rejected here, not wrapped in a job failure on the handle.
            with pytest.raises(ValueError, match="redundancy"):
                session.submit(
                    MapReduceSpec(
                        job=WordCountJob(), files=["a"], redundancy=4,
                        scheme="coded",
                    )
                )
            with pytest.raises(ValueError, match="multiple"):
                session.submit(
                    MapReduceSpec(job=WordCountJob(), files=["a"])
                )
            with pytest.raises(ValueError, match="schedule"):
                session.submit(
                    CodedTeraSortSpec(
                        data=data, redundancy=2, schedule="warp"
                    )
                )
            with pytest.raises(TypeError):
                session.submit(lambda comm: None)
            # a failed validation must not poison the session
            run = session.submit(TeraSortSpec(data=data)).result()
            validate_sorted_permutation(data, run.partitions)

    def test_submit_after_close_raises(self):
        data = teragen(400, seed=2)
        session = Session(ThreadCluster(3, recv_timeout=30))
        handle = session.submit(TeraSortSpec(data=data))
        session.close()
        assert handle.done()
        validate_sorted_permutation(data, handle.result().partitions)
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(TeraSortSpec(data=data))
        session.close()  # idempotent

    def test_close_drains_queued_jobs(self):
        data = teragen(600, seed=3)
        session = Session(ThreadCluster(3, recv_timeout=30))
        handles = [session.submit(TeraSortSpec(data=data)) for _ in range(3)]
        session.close()
        for h in handles:
            assert h.done()
            validate_sorted_permutation(data, h.result().partitions)

    def test_unpooled_cluster_rejected(self):
        class NotACluster:
            size = 4

        with pytest.raises(TypeError, match="create_pool"):
            Session(NotACluster())

    def test_handle_timeouts(self):
        data = teragen(400, seed=4)
        with Session(ThreadCluster(3, recv_timeout=30)) as session:
            handle = session.submit(TeraSortSpec(data=data))
            assert handle.wait(30.0)
            handle.result(timeout=1.0)  # already done: returns immediately
        fresh = JobHandle(99, TeraSortSpec(data=data))
        assert not fresh.wait(0.01)
        with pytest.raises(TimeoutError):
            fresh.result(timeout=0.01)
        with pytest.raises(TimeoutError):
            fresh.exception(timeout=0.01)

    def test_specs_are_frozen_jobspecs(self):
        data = teragen(100, seed=5)
        spec = TeraSortSpec(data=data)
        assert isinstance(spec, JobSpec)
        with pytest.raises(Exception):
            spec.sample_size = 1  # frozen dataclass

    def test_session_run_convenience(self):
        data = teragen(500, seed=8)
        with Session(ThreadCluster(3, recv_timeout=30)) as session:
            run = session.run(TeraSortSpec(data=data))
        validate_sorted_permutation(data, run.partitions)


def _oversized_tag_builder(comm, payload):
    """Builder using a tag outside the per-job session window."""
    from repro.runtime.api import JOB_TAG_STRIDE
    from repro.runtime.program import NodeProgram

    class OversizedTag(NodeProgram):
        STAGES = ["x"]

        def run(self):
            with self.stage("x"):
                if self.rank == 0:
                    self.comm.send(1, JOB_TAG_STRIDE, b"hi")
                else:
                    self.comm.recv(0, JOB_TAG_STRIDE)

    return OversizedTag(comm)


def test_session_jobs_enforce_tag_window_from_job_zero():
    """Even job 0 (offset 0) must reject tags that straddle job windows."""
    from repro.runtime.program import PreparedJob

    pool = ThreadCluster(2, recv_timeout=10).create_pool()
    try:
        prepared = PreparedJob(
            builder=_oversized_tag_builder,
            payloads=[None, None],
            finalize=lambda r: r,
        )
        with pytest.raises(RuntimeError, match="job window"):
            pool.run_job(prepared)
    finally:
        pool.close()


class TestProcessPoolReuse:
    """The pool-level contract the session perf win rests on."""

    def test_workers_persist_across_jobs(self):
        """Same worker PIDs serve consecutive jobs (no per-job fork)."""
        data = teragen(1200, seed=9)
        cluster = ProcessCluster(3, timeout=60)
        with Session(cluster) as session:
            session.submit(TeraSortSpec(data=data)).result()
            pool = session._pool
            pids1 = [p.pid for p in pool._procs]
            session.submit(TeraSortSpec(data=data)).result()
            pids2 = [p.pid for p in pool._procs]
        assert pids1 == pids2

    def test_pool_restarts_after_failure(self):
        """A failed job re-forks the mesh; the next job runs clean."""
        data = teragen(1200, seed=10)
        files = ["x"] * binomial(3, 1)
        cluster = ProcessCluster(3, timeout=60)
        with Session(cluster) as session:
            bad = session.submit(
                MapReduceSpec(
                    job=FailingJob(), files=files, redundancy=1,
                    scheme="uncoded",
                )
            )
            assert bad.exception() is not None
            run = session.submit(TeraSortSpec(data=data)).result()
        validate_sorted_permutation(data, run.partitions)


class TestSpecWithAndShrink:
    """The elastic-pool spec surface: validated copies and shrink math."""

    def test_with_overrides_one_field_and_keeps_the_rest(self):
        data = teragen(100, seed=20)
        spec = CodedTeraSortSpec(data=data, redundancy=2)
        wider = spec.with_(schedule="parallel")
        assert wider.schedule == "parallel"
        assert wider.redundancy == 2
        assert wider.data is data
        # The original is untouched (frozen dataclass copy).
        assert spec.schedule == "serial"

    def test_with_unknown_field_is_a_typed_error_naming_it(self):
        spec = TeraSortSpec(data=teragen(100, seed=20))
        with pytest.raises(TypeError) as exc_info:
            spec.with_(nodes=4)
        assert "nodes" in str(exc_info.value)
        assert "memory_budget" in str(exc_info.value)  # lists valid fields

    def test_terasort_shrinks_to_any_k_down_to_two(self):
        spec = TeraSortSpec(data=teragen(100, seed=21))
        assert spec.shrink_to(4) == 4
        assert spec.shrink_to(2) == 2
        assert spec.shrink_to(1) is None

    def test_coded_shrink_respects_the_redundancy_floor(self):
        # (K', r) is valid only while r <= K'-1: with r=2 the smallest
        # re-plan is 3 workers.
        spec = CodedTeraSortSpec(data=teragen(100, seed=22), redundancy=2)
        assert spec.shrink_to(5) == 5
        assert spec.shrink_to(3) == 3
        assert spec.shrink_to(2) is None

    def test_base_spec_is_not_shrinkable(self):
        spec = MapReduceSpec(job=WordCountJob(), files=_corpus(K, R))
        assert spec.shrink_to(3) is None
