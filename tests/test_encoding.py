"""Tests for Algorithm 1 (segmentation, XOR, packet wire format)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    CodedPacket,
    CodingError,
    encode_packet,
    segment_bounds,
    segment_of,
    xor_into,
)


class TestSegmentBounds:
    def test_even_split(self):
        assert segment_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_uneven_split_front_loaded(self):
        assert segment_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_zero_length(self):
        assert segment_bounds(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_single_segment(self):
        assert segment_bounds(7, 1) == [(0, 7)]

    def test_invalid_count(self):
        with pytest.raises(CodingError):
            segment_bounds(5, 0)

    @given(st.integers(0, 1000), st.integers(1, 10))
    def test_partition_property(self, n, parts):
        bounds = segment_bounds(n, parts)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        sizes = [b - a for a, b in bounds]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start


class TestSegmentOf:
    def test_segments_reassemble(self):
        data = bytes(range(20))
        owners = (1, 4, 6)
        segs = [segment_of(data, owners, o) for o in owners]
        assert b"".join(segs) == data

    def test_owner_not_in_owners(self):
        with pytest.raises(CodingError):
            segment_of(b"abc", (0, 1), 2)


class TestXorInto:
    def test_basic_xor(self):
        acc = bytearray(b"\x0f\x0f")
        xor_into(acc, b"\xf0\x00")
        assert acc == bytearray(b"\xff\x0f")

    def test_shorter_data_zero_padded(self):
        acc = bytearray(b"\x01\x02\x03")
        xor_into(acc, b"\x01")
        assert acc == bytearray(b"\x00\x02\x03")

    def test_longer_data_truncated(self):
        acc = bytearray(b"\x01")
        xor_into(acc, b"\x01\xff\xff")
        assert acc == bytearray(b"\x00")

    def test_empty_noop(self):
        acc = bytearray(b"\xaa")
        xor_into(acc, b"")
        assert acc == bytearray(b"\xaa")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_involution(self, a, b):
        acc = bytearray(a)
        xor_into(acc, b)
        xor_into(acc, b)
        assert acc == bytearray(a)


def make_store(group, payload_sizes):
    """Global (subset, target) -> bytes store for one group."""
    from repro.utils.subsets import without

    store = {}
    for i, t in enumerate(group):
        subset = without(group, t)
        size = payload_sizes[i % len(payload_sizes)]
        store[(subset, t)] = bytes((j * 31 + t) % 256 for j in range(size))
    return store


class TestEncodePacket:
    def test_packet_structure(self):
        group = (0, 1, 2)
        store = make_store(group, [12])
        pkt = encode_packet(0, group, lambda s, t: store[(s, t)])
        assert pkt.group == group and pkt.sender == 0
        assert [t for t, _ in pkt.seg_lengths] == [1, 2]
        # 12 bytes split among r=2 owners -> 6-byte segments.
        assert all(length == 6 for _, length in pkt.seg_lengths)
        assert len(pkt.payload) == 6

    def test_payload_is_max_of_true_lengths(self):
        group = (0, 1, 2)
        store = make_store(group, [10, 21, 7])
        pkt = encode_packet(1, group, lambda s, t: store[(s, t)])
        assert len(pkt.payload) == max(l for _, l in pkt.seg_lengths)

    def test_sender_not_in_group(self):
        group = (0, 1, 2)
        store = make_store(group, [6])
        with pytest.raises(CodingError):
            encode_packet(5, group, lambda s, t: store[(s, t)])

    def test_unsorted_group_rejected(self):
        with pytest.raises(CodingError):
            encode_packet(1, (2, 1, 0), lambda s, t: b"")

    def test_zero_length_values(self):
        group = (0, 1, 2)
        store = make_store(group, [0])
        pkt = encode_packet(0, group, lambda s, t: store[(s, t)])
        assert pkt.payload == b""
        assert all(l == 0 for _, l in pkt.seg_lengths)

    def test_length_for(self):
        group = (0, 1, 3)
        store = make_store(group, [9])
        pkt = encode_packet(0, group, lambda s, t: store[(s, t)])
        assert pkt.length_for(1) in (4, 5)
        with pytest.raises(CodingError):
            pkt.length_for(0)  # sender is not a target


class TestPacketWireFormat:
    def roundtrip(self, pkt):
        return CodedPacket.from_bytes(pkt.to_bytes())

    def test_roundtrip(self):
        group = (1, 3, 4, 7)
        store = make_store(group, [33, 5, 0, 17])
        pkt = encode_packet(3, group, lambda s, t: store[(s, t)])
        back = self.roundtrip(pkt)
        assert back == pkt

    def test_bad_magic(self):
        group = (0, 1)
        store = make_store(group, [4])
        buf = bytearray(encode_packet(0, group, lambda s, t: store[(s, t)]).to_bytes())
        buf[0] = 0
        with pytest.raises(CodingError):
            CodedPacket.from_bytes(bytes(buf))

    def test_truncated(self):
        group = (0, 1)
        store = make_store(group, [4])
        buf = encode_packet(0, group, lambda s, t: store[(s, t)]).to_bytes()
        with pytest.raises(CodingError):
            CodedPacket.from_bytes(buf[:-1])

    def test_header_bytes_accounts_wire_size(self):
        group = (0, 1, 2)
        store = make_store(group, [10])
        pkt = encode_packet(0, group, lambda s, t: store[(s, t)])
        assert len(pkt.to_bytes()) == pkt.header_bytes + len(pkt.payload)
