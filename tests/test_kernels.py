"""Property tests for the OVC merge / radix partition kernel layer.

The contract under test is byte-identity: every kernel must produce
exactly the output of the classic implementation it replaces — same
records, same stable tie order — on random TeraGen data, adversarial
shared-prefix keys, and duplicate keys spanning runs and window
boundaries.
"""

import os

import numpy as np
import pytest

from repro.core.mapper import hash_file
from repro.core.partitioner import RangePartitioner
from repro.kvpairs import kernels
from repro.kvpairs.kernels import (
    KERNELS_ENV,
    OVC_DTYPE,
    RadixTable,
    RunColumns,
    group_by_partition,
    merge_sorted_columns,
    merge_two,
    ovc_codes,
)
from repro.kvpairs.records import KEY_BYTES, VALUE_BYTES, RecordBatch
from repro.kvpairs.sorting import merge_sorted, sort_batch
from repro.kvpairs.spill import (
    SpillDir,
    merge_runs,
    read_ovc_file,
    write_ovc_file,
    write_sorted_run,
)
from repro.kvpairs.teragen import teragen


def batch_from_keys(keys):
    """A RecordBatch with the given bytes keys and distinct values."""
    n = len(keys)
    karr = np.array(keys, dtype=f"S{KEY_BYTES}")
    values = np.array(
        [f"v{i:04d}".encode().ljust(VALUE_BYTES, b".") for i in range(n)],
        dtype=f"S{VALUE_BYTES}",
    )
    return RecordBatch.from_arrays(karr, values)


def adversarial_batch(rng, n, prefix=b"SHAREDPR"):
    """Keys sharing an 8-byte prefix: every prefix-word compare ties."""
    tails = rng.integers(0, 4, size=(n, KEY_BYTES - len(prefix)))
    keys = [
        prefix + bytes(row + ord("a")) for row in tails
    ]
    return batch_from_keys(keys)


def duplicate_heavy_batch(rng, n, distinct=5):
    """A few distinct keys repeated many times (skewed/duplicate lane)."""
    pool = [f"DUPKEY{i:02d}xx".encode() for i in range(distinct)]
    keys = [pool[int(j)] for j in rng.integers(0, distinct, size=n)]
    return batch_from_keys(keys)


def split_sorted_runs(batch, rng, k):
    """Split a stream into k chunks and stable-sort each (run priority
    order = chunk order, the external-sort contract)."""
    n = len(batch)
    cuts = sorted(int(c) for c in rng.integers(0, n + 1, size=k - 1))
    out, prev = [], 0
    for c in list(cuts) + [n]:
        out.append(sort_batch(batch.slice(prev, c)))
        prev = c
    return out


def assert_batches_equal(a, b):
    assert len(a) == len(b)
    assert a.array.tobytes() == b.array.tobytes()


# ---------------------------------------------------------------------------
# ovc_codes
# ---------------------------------------------------------------------------


class TestOvcCodes:
    def test_packing_matches_definition(self):
        batch = batch_from_keys([b"AAAAAAAAAA", b"AAAAAAAAAB", b"AAB" + b"A" * 7])
        codes = ovc_codes(batch)
        assert codes.dtype == OVC_DTYPE
        # First record vs minus-infinity: offset 0, value 'A'.
        assert codes[0] == KEY_BYTES * 256 + ord("A")
        # Second differs at the last byte (offset 9).
        assert codes[1] == (KEY_BYTES - 9) * 256 + ord("B")
        # Third differs at offset 2.
        assert codes[2] == (KEY_BYTES - 2) * 256 + ord("B")

    def test_duplicates_are_zero(self):
        batch = batch_from_keys([b"SAMEKEYAAA"] * 4)
        codes = ovc_codes(batch)
        assert codes[0] != 0
        assert (codes[1:] == 0).all()

    def test_base_key_carry(self):
        batch = batch_from_keys([b"AAAAAAAAAA", b"AAAAAAAAAB"])
        codes = ovc_codes(batch, base_key=b"AAAAAAAAAA")
        assert codes[0] == 0  # duplicate of the carried predecessor
        whole = ovc_codes(batch_from_keys([b"AAAAAAAAAA"] * 2 + [b"AAAAAAAAAB"]))
        assert codes[1] == whole[2]

    def test_unsorted_raises(self):
        batch = batch_from_keys([b"BBBBBBBBBB", b"AAAAAAAAAA"])
        with pytest.raises(ValueError, match="not sorted"):
            ovc_codes(batch, what="run 7")
        with pytest.raises(ValueError, match="not sorted"):
            ovc_codes(
                batch_from_keys([b"AAAAAAAAAA"]), base_key=b"BBBBBBBBBB"
            )

    def test_windowed_codes_match_whole_run(self):
        run = sort_batch(teragen(3000, seed=11))
        whole = ovc_codes(run)
        w = 700
        parts = []
        prev = None
        for start in range(0, len(run), w):
            window = run.slice(start, min(start + w, len(run)))
            parts.append(ovc_codes(window, base_key=prev))
            prev = bytes(window.keys[-1]).ljust(KEY_BYTES, b"\x00")
        assert np.array_equal(np.concatenate(parts), whole)

    def test_codes_order_like_keys(self):
        run = sort_batch(teragen(2000, seed=3))
        codes = ovc_codes(run).astype(np.int64)
        keys = run.keys
        # Wherever the key strictly increases, the code is nonzero; equal
        # keys always get code 0 (after the first occurrence).
        dup = keys[1:] == keys[:-1]
        assert ((codes[1:] == 0) == dup).all()


# ---------------------------------------------------------------------------
# Merge kernels: byte-identity properties
# ---------------------------------------------------------------------------


def make_streams():
    rng = np.random.default_rng(1234)
    streams = [
        ("teragen", teragen(5000, seed=42)),
        ("adversarial", adversarial_batch(rng, 3000)),
        ("duplicates", duplicate_heavy_batch(rng, 4000)),
        (
            "mixed",
            RecordBatch.concat(
                [teragen(1000, seed=7), duplicate_heavy_batch(rng, 1000)]
            ),
        ),
        ("tiny", teragen(3, seed=9)),
    ]
    return streams


class TestMergeByteIdentity:
    @pytest.mark.parametrize("name,stream", make_streams())
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_ovc_equals_classic_and_stable_sort(self, name, stream, k):
        rng = np.random.default_rng(hash((name, k)) % (2**32))
        runs = split_sorted_runs(stream, rng, k)
        cols = [
            RunColumns.from_batch(r, what=f"run {i}")
            for i, r in enumerate(runs)
            if len(r)
        ]
        ovc = merge_sorted_columns(cols).batch
        classic = merge_sorted(runs)  # dispatches per env; default ovc
        expect = sort_batch(stream)
        assert_batches_equal(ovc, expect)
        assert_batches_equal(classic, expect)

    def test_merge_two_codes_stay_valid(self):
        """Output codes from merge_two equal a fresh whole-output coding."""
        rng = np.random.default_rng(5)
        for stream in (teragen(2000, seed=8), duplicate_heavy_batch(rng, 1500)):
            a, b = split_sorted_runs(stream, rng, 2)
            if not len(a) or not len(b):
                continue
            merged = merge_two(
                RunColumns.from_batch(a), RunColumns.from_batch(b)
            )
            fresh = ovc_codes(merged.batch, check=False)
            assert np.array_equal(merged.codes, fresh)

    def test_stability_duplicate_values_across_runs(self):
        """Equal keys keep run order: earlier run's records come first."""
        key = b"TIEKEYAAAA"
        a = batch_from_keys([key, key])
        b = batch_from_keys([key])
        # Distinguish records by value.
        a.array["value"][0] = b"a0".ljust(VALUE_BYTES, b"_")
        a.array["value"][1] = b"a1".ljust(VALUE_BYTES, b"_")
        b.array["value"][0] = b"b0".ljust(VALUE_BYTES, b"_")
        merged = merge_sorted_columns(
            [RunColumns.from_batch(a), RunColumns.from_batch(b)]
        ).batch
        vals = [bytes(v[:2]) for v in merged.values]
        assert vals == [b"a0", b"a1", b"b0"]

    def test_merge_rejects_unsorted(self):
        bad = batch_from_keys([b"BBBBBBBBBB", b"AAAAAAAAAA"])
        with pytest.raises(ValueError, match="not sorted"):
            merge_sorted([bad, bad])

    def test_check_false_skips_validation(self):
        runs = [sort_batch(teragen(100, seed=i)) for i in range(3)]
        out = merge_sorted(runs, check=False)
        assert_batches_equal(out, sort_batch(RecordBatch.concat(runs)))


class TestMergeRunsWindows:
    """External merge with tiny windows: boundary carry + tie stability."""

    @pytest.mark.parametrize("mode", ["ovc", "classic"])
    @pytest.mark.parametrize("window", [7, 64])
    def test_window_boundaries_both_modes(self, mode, window, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, mode)
        rng = np.random.default_rng(99)
        stream = RecordBatch.concat(
            [teragen(1200, seed=1), duplicate_heavy_batch(rng, 800)]
        )
        runs = split_sorted_runs(stream, rng, 4)
        out = RecordBatch.concat(
            list(merge_runs(runs, window_records=window, out_records=53))
        )
        assert_batches_equal(out, sort_batch(stream))

    @pytest.mark.parametrize("mode", ["ovc", "classic"])
    def test_duplicates_spanning_window_boundary(self, mode, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, mode)
        # Two runs of one repeated key each: every window boundary falls
        # inside a duplicate group and every compare is a cross-run tie.
        a = batch_from_keys([b"TIEKEYAAAA"] * 40)
        b = batch_from_keys([b"TIEKEYAAAA"] * 40)
        for i in range(40):
            a.array["value"][i] = f"a{i:02d}".encode().ljust(VALUE_BYTES, b"_")
            b.array["value"][i] = f"b{i:02d}".encode().ljust(VALUE_BYTES, b"_")
        out = RecordBatch.concat(
            list(merge_runs([a, b], window_records=7, out_records=11))
        )
        expect = sort_batch(RecordBatch.concat([a, b]))
        assert_batches_equal(out, expect)

    @pytest.mark.parametrize("mode", ["ovc", "classic"])
    def test_spilled_runs_round_trip(self, mode, monkeypatch, tmp_path):
        monkeypatch.setenv(KERNELS_ENV, mode)
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        from repro.kvpairs.spill import ExternalSorter

        stream = teragen(5000, seed=21)
        with SpillDir("t") as spill:
            sorter = ExternalSorter(spill, chunk_bytes=800 * 100)
            for chunk in stream.iter_slices(700):
                sorter.add(chunk)
            out = RecordBatch.concat(
                list(sorter.merge(window_records=190, out_records=450))
            )
        assert_batches_equal(out, sort_batch(stream))

    def test_unsorted_file_run_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        from repro.kvpairs.spill import Run, write_run_file

        bad = batch_from_keys([b"BBBBBBBBBB", b"AAAAAAAAAA"])
        good = sort_batch(teragen(10, seed=0))
        with SpillDir("t") as spill:
            path = spill.new_path()
            write_run_file(path, [bad])  # no sidecar: codes computed, checked
            with pytest.raises(ValueError, match="not sorted"):
                list(merge_runs([Run.from_file(path), good]))


class TestClassicRoundTrip:
    def test_classic_env_round_trips(self, monkeypatch):
        stream = teragen(4000, seed=77)
        rng = np.random.default_rng(0)
        runs = split_sorted_runs(stream, rng, 3)
        monkeypatch.setenv(KERNELS_ENV, "classic")
        assert kernels.kernel_mode() == "classic"
        classic = merge_sorted(runs)
        monkeypatch.setenv(KERNELS_ENV, "ovc")
        assert kernels.kernel_mode() == "ovc"
        ovc = merge_sorted(runs)
        assert_batches_equal(classic, ovc)

    def test_unknown_mode_falls_back_to_ovc(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "turbo")
        assert kernels.kernel_mode() == "ovc"


# ---------------------------------------------------------------------------
# Sidecar files
# ---------------------------------------------------------------------------


class TestSidecars:
    def test_write_read_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "ovc")
        run = sort_batch(teragen(500, seed=13))
        path = str(tmp_path / "run.bin")
        write_sorted_run(path, run)
        codes = read_ovc_file(path, len(run))
        assert codes is not None
        assert np.array_equal(codes, ovc_codes(run))

    def test_missing_sidecar_is_none(self, tmp_path):
        from repro.kvpairs.spill import write_run_file

        run = sort_batch(teragen(100, seed=1))
        path = str(tmp_path / "run.bin")
        write_run_file(path, [run])
        assert read_ovc_file(path, len(run)) is None

    def test_mismatched_sidecar_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "ovc")
        run = sort_batch(teragen(100, seed=2))
        path = str(tmp_path / "run.bin")
        write_sorted_run(path, run)
        assert read_ovc_file(path, len(run) + 1) is None

    def test_classic_mode_writes_no_sidecar(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "classic")
        run = sort_batch(teragen(100, seed=3))
        path = str(tmp_path / "run.bin")
        write_sorted_run(path, run)
        assert not os.path.exists(path + ".ovc")

    def test_sidecar_reused_not_recomputed(self, tmp_path, monkeypatch):
        """A poisoned sidecar changes merge output: proof it was trusted."""
        from repro.kvpairs.spill import Run

        monkeypatch.setenv(KERNELS_ENV, "ovc")
        run = sort_batch(teragen(3000, seed=4))
        path = str(tmp_path / "run.bin")
        write_sorted_run(path, run)
        kernels.stats.reset()
        out = RecordBatch.concat(
            list(merge_runs([Run.from_file(path), run], window_records=512))
        )
        assert_batches_equal(
            out, sort_batch(RecordBatch.concat([run, run]))
        )


# ---------------------------------------------------------------------------
# Radix partition
# ---------------------------------------------------------------------------


class TestRadixPartition:
    @pytest.mark.parametrize("k", [1, 2, 7, 64])
    def test_table_equals_searchsorted(self, k):
        part = RangePartitioner.uniform(k)
        batch = teragen(4000, seed=5)
        hi = batch.key_prefix_u64()
        expect = np.searchsorted(part.boundaries, hi, side="right").astype(
            np.int64
        )
        table = RadixTable.build(part.boundaries)
        got = table.partition(hi, part.boundaries)
        assert np.array_equal(got, expect)

    def test_boundary_edge_keys(self):
        """Keys exactly at / adjacent to splitters, including splitters
        that are exact multiples of 2^48 (cell floors)."""
        bounds = np.array(
            [1 << 48, (5 << 48) + 12345, (1 << 63) - 1], dtype=np.uint64
        )
        edges = []
        for b in bounds:
            for d in (-1, 0, 1):
                edges.append(int(b) + d)
        edges += [0, (1 << 64) - 1]
        hi = np.array(edges, dtype=np.uint64)
        expect = np.searchsorted(bounds, hi, side="right").astype(np.int64)
        table = RadixTable.build(bounds)
        assert np.array_equal(table.partition(hi, bounds), expect)

    def test_partitioner_modes_agree(self, monkeypatch):
        part = RangePartitioner.from_sample(teragen(512, seed=6), 9)
        batch = teragen(int(kernels.RADIX_MIN_BATCH * 2), seed=7)
        monkeypatch.setenv(KERNELS_ENV, "classic")
        classic = part.partition_indices(batch)
        monkeypatch.setenv(KERNELS_ENV, "ovc")
        ovc = part.partition_indices(batch)
        assert np.array_equal(classic, ovc)

    def test_pickle_drops_radix_cache(self, monkeypatch):
        import pickle

        monkeypatch.setenv(KERNELS_ENV, "ovc")
        part = RangePartitioner.uniform(8)
        batch = teragen(int(kernels.RADIX_MIN_BATCH * 2), seed=8)
        part.partition_indices(batch)  # builds + caches the table
        assert part._radix is not None
        blob = pickle.dumps(part)
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        assert clone == part
        assert clone._radix is None
        assert np.array_equal(
            clone.partition_indices(batch), part.partition_indices(batch)
        )


class TestGroupByPartition:
    @pytest.mark.parametrize("k", [1, 4, 33])
    def test_matches_stable_argsort(self, k):
        rng = np.random.default_rng(10)
        idx = rng.integers(0, k, size=10000).astype(np.int64)
        order, counts = group_by_partition(idx, k)
        assert np.array_equal(order, np.argsort(idx, kind="stable"))
        assert np.array_equal(counts, np.bincount(idx, minlength=k))

    def test_hash_file_modes_agree(self, monkeypatch):
        part = RangePartitioner.uniform(6)
        batch = teragen(5000, seed=12)
        monkeypatch.setenv(KERNELS_ENV, "classic")
        classic = hash_file(batch, part)
        monkeypatch.setenv(KERNELS_ENV, "ovc")
        ovc = hash_file(batch, part)
        assert len(classic) == len(ovc)
        for c, o in zip(classic, ovc):
            assert_batches_equal(c, o)


# ---------------------------------------------------------------------------
# End-to-end byte identity: both kernel modes, both schedules.
# ---------------------------------------------------------------------------


class TestEndToEndByteIdentity:
    @pytest.mark.parametrize("k,r", [(4, 1), (6, 2), (8, 3)])
    @pytest.mark.parametrize("schedule", ["serial", "parallel"])
    def test_coded_terasort_modes_identical(
        self, k, r, schedule, monkeypatch, thread_cluster_factory
    ):
        from repro.core.coded_terasort import run_coded_terasort

        data = teragen(3000, seed=100 * k + r)
        outs = {}
        for mode in ("classic", "ovc"):
            monkeypatch.setenv(KERNELS_ENV, mode)
            run = run_coded_terasort(
                thread_cluster_factory(k), data, redundancy=r,
                schedule=schedule,
            )
            outs[mode] = run.partitions
        assert len(outs["classic"]) == len(outs["ovc"]) == k
        for c, o in zip(outs["classic"], outs["ovc"]):
            assert_batches_equal(c, o)

    @pytest.mark.parametrize("k", [4, 8])
    def test_terasort_modes_identical(
        self, k, monkeypatch, thread_cluster_factory
    ):
        from repro.core.terasort import run_terasort

        data = teragen(4000, seed=k)
        outs = {}
        for mode in ("classic", "ovc"):
            monkeypatch.setenv(KERNELS_ENV, mode)
            outs[mode] = run_terasort(thread_cluster_factory(k), data).partitions
        for c, o in zip(outs["classic"], outs["ovc"]):
            assert_batches_equal(c, o)


# ---------------------------------------------------------------------------
# Stats accounting
# ---------------------------------------------------------------------------


class TestKernelStats:
    def test_merge_counts(self):
        kernels.stats.reset()
        stream = teragen(2000, seed=14)
        rng = np.random.default_rng(14)
        runs = [
            RunColumns.from_batch(r)
            for r in split_sorted_runs(stream, rng, 2)
            if len(r)
        ]
        merge_sorted_columns(runs)
        snap = kernels.stats.snapshot()
        assert snap["merge_records"] == 2000
        assert snap["rank_queries"] > 0
        assert (
            snap["prefix_resolved"] + snap["fallback_queries"]
            == snap["rank_queries"]
        )
        # TeraGen keys essentially never tie on the 8-byte prefix.
        assert snap["fallback_queries"] <= snap["rank_queries"] * 0.01
        assert 0 < kernels.stats.key_bytes_per_query() < 10.0

    def test_duplicate_compression_engages(self):
        kernels.stats.reset()
        rng = np.random.default_rng(15)
        stream = duplicate_heavy_batch(rng, 4000)
        runs = [
            RunColumns.from_batch(r)
            for r in split_sorted_runs(stream, rng, 2)
            if len(r)
        ]
        merge_sorted_columns(runs)
        snap = kernels.stats.snapshot()
        assert snap["dup_records_skipped"] > 0
        assert snap["rank_queries"] < 4000
