"""Zero-copy data-plane semantics: views, arenas, aliasing, gather sends.

Covers the contracts the zero-copy shuffle relies on:

* ``xor_into`` leaves accumulator bytes beyond the data untouched and
  works on writable arena slices;
* ``RecordBatch.from_buffer`` / ``unpack_batches(copy=False)`` aliasing
  and lifetime rules (views keep the parent buffer alive; transforms that
  must survive later buffer mutation copy);
* gather-list (vectored) sends and ``copy=False`` receives are
  byte-identical to the owned-bytes path on both backends, chunked and
  unchunked;
* ``CodedPacket`` parts wire form and arena-based encode/decode;
* ``merge_sorted`` is a stable k-way merge equal to sorting the concat.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.core.decoding import (
    decode_segment,
    decode_segment_into,
    recover_intermediate,
)
from repro.core.encoding import (
    CodedPacket,
    CodingError,
    encode_packet,
    segment_of,
    xor_into,
)
from repro.kvpairs.records import KEY_BYTES, RECORD_BYTES, VALUE_BYTES, RecordBatch
from repro.kvpairs.serialization import (
    pack_batch,
    pack_batch_parts,
    pack_batches,
    pack_batches_parts,
    unpack_batch,
    unpack_batches,
)
from repro.kvpairs.sorting import merge_sorted, sort_batch
from repro.kvpairs.teragen import teragen
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.program import NodeProgram
from repro.utils import copytrack
from repro.utils.subsets import without


class TestXorInto:
    def test_tail_beyond_data_untouched(self):
        # Satellite micro-test: acc bytes past len(data) must be preserved.
        acc = bytearray(b"\x11\x22\x33\x44\x55")
        xor_into(acc, b"\xff\xff")
        assert acc == bytearray(b"\xee\xdd\x33\x44\x55")

    def test_writes_through_arena_slice(self):
        arena = bytearray(8)
        xor_into(memoryview(arena)[2:5], b"\x01\x02\x03")
        assert arena == bytearray(b"\x00\x00\x01\x02\x03\x00\x00\x00")

    def test_accepts_memoryview_data(self):
        acc = bytearray(b"\x0f\x0f")
        xor_into(acc, memoryview(b"\xf0\xf0"))
        assert acc == bytearray(b"\xff\xff")


class TestFromBuffer:
    def test_zero_copy_aliases_parent(self):
        batch = teragen(5, seed=1)
        buf = bytearray(batch.to_bytes())
        view_batch = RecordBatch.from_buffer(buf)
        assert view_batch == batch
        buf[0] ^= 0xFF  # mutate the parent: the view must see it
        assert view_batch != batch

    def test_view_is_readonly(self):
        buf = bytearray(RECORD_BYTES)
        view_batch = RecordBatch.from_buffer(buf)
        with pytest.raises(ValueError):
            view_batch.array["key"] = b"x"

    def test_sorted_output_survives_buffer_mutation(self):
        # The aliasing contract: sort_batch copies into fresh memory, so
        # trashing the receive buffer afterwards must not corrupt it.
        batch = teragen(64, seed=2)
        buf = bytearray(batch.to_bytes())
        sorted_out = sort_batch(RecordBatch.from_buffer(buf))
        expected = sort_batch(batch)
        buf[:] = b"\xff" * len(buf)
        assert sorted_out == expected

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            RecordBatch.from_buffer(bytearray(RECORD_BYTES + 1))


class TestUnpackViews:
    def test_views_survive_parent_scope(self):
        # np.frombuffer holds a reference to the buffer, so dropping the
        # caller's name (and collecting) must not invalidate the batches.
        batches = [(i, teragen(20 + i, seed=i)) for i in range(3)]
        buf = pack_batches(batches)
        out = unpack_batches(buf, copy=False)
        del buf, batches
        gc.collect()
        assert [len(b) for _, b in out] == [20, 21, 22]
        assert all(b == RecordBatch.from_bytes(b.to_bytes()) for _, b in out)

    def test_copy_false_aliases_copy_true_does_not(self):
        batch = teragen(4, seed=3)
        buf = bytearray(pack_batch(batch, tag=1))
        _, aliased = unpack_batch(buf, copy=False)
        _, owned = unpack_batch(buf, copy=True)
        buf[-1] ^= 0xFF  # corrupt the last value byte in place
        assert aliased != batch
        assert owned == batch

    def test_parts_equal_joined_form(self):
        batches = [(7, teragen(3, seed=5)), (9, teragen(0, seed=6))]
        assert b"".join(pack_batches_parts(batches)) == pack_batches(batches)
        one = teragen(2, seed=7)
        assert b"".join(pack_batch_parts(one, tag=4)) == pack_batch(one, tag=4)

    def test_pack_parts_do_not_copy(self):
        batch = teragen(50, seed=8)
        with copytrack.track() as copies:
            pack_batch_parts(batch, tag=0)
        assert sum(copies.values()) == 0
        with copytrack.track() as copies:
            pack_batch(batch, tag=0)
        assert copies.get("serialization.pack_join", 0) >= batch.nbytes


def _group_store(group, sizes):
    store = {}
    for i, t in enumerate(group):
        subset = without(group, t)
        size = sizes[i % len(sizes)]
        store[(subset, t)] = bytes((j * 31 + t) % 256 for j in range(size))
    return store


class TestPacketZeroCopy:
    def test_to_parts_equals_to_bytes(self):
        group = (0, 2, 5)
        store = _group_store(group, [24])
        pkt = encode_packet(2, group, lambda s, t: store[(s, t)])
        assert b"".join(pkt.to_parts()) == pkt.to_bytes()

    def test_from_bytes_payload_is_view(self):
        group = (0, 1, 3)
        store = _group_store(group, [18])
        wire = bytearray(
            encode_packet(0, group, lambda s, t: store[(s, t)]).to_bytes()
        )
        pkt = CodedPacket.from_bytes(wire)
        before = bytes(pkt.payload)
        wire[-1] ^= 0xFF  # last payload byte: the parsed view must alias it
        assert bytes(pkt.payload) != before

    def test_encode_into_caller_arena(self):
        group = (1, 2, 4)
        store = _group_store(group, [30])
        ref = encode_packet(1, group, lambda s, t: store[(s, t)])
        arena = bytearray(64)
        pkt = encode_packet(1, group, lambda s, t: store[(s, t)], out=arena)
        assert bytes(pkt.payload) == bytes(ref.payload)
        # The payload aliases the arena.
        arena[0] ^= 0xFF
        assert bytes(pkt.payload) != bytes(ref.payload)

    def test_encode_arena_too_small(self):
        group = (0, 1, 2)
        store = _group_store(group, [40])
        with pytest.raises(CodingError):
            encode_packet(0, group, lambda s, t: store[(s, t)], out=bytearray(3))

    def test_uneven_segments_match_loop_path(self):
        # Non-uniform lengths take the padded xor_into path; cross-check
        # decode against the encoder for every receiver.
        group = (0, 3, 5, 6)
        store = _group_store(group, [17, 40, 9, 26])
        lookup = lambda s, t: store[(s, t)]  # noqa: E731
        packets = {u: encode_packet(u, group, lookup) for u in group}
        for receiver in group:
            recovered = recover_intermediate(
                receiver,
                group,
                {u: p for u, p in packets.items() if u != receiver},
                lookup,
            )
            assert recovered == store[(without(group, receiver), receiver)]

    def test_decode_segment_into_wrong_size_raises(self):
        group = (0, 1, 2)
        store = _group_store(group, [12])
        lookup = lambda s, t: store[(s, t)]  # noqa: E731
        pkt = encode_packet(0, group, lookup)
        want = pkt.length_for(1)
        with pytest.raises(CodingError):
            decode_segment_into(1, pkt, lookup, memoryview(bytearray(want + 1)))
        good = bytearray(want)
        decode_segment_into(1, pkt, lookup, memoryview(good))
        assert good == decode_segment(1, pkt, lookup)


class _PartsRoundtrip(NodeProgram):
    """Rank 0 gather-sends batches; rank 1 receives copy=False and echoes."""

    STAGES = ["xfer"]

    def __init__(self, comm, nrecords, chunked):
        super().__init__(comm)
        self.nrecords = nrecords
        self.chunked = chunked

    def run(self):
        with self.stage("xfer"):
            if self.rank == 0:
                batch = teragen(self.nrecords, seed=42)
                self.comm.send(1, 5, pack_batches_parts([(3, batch)]))
                echoed = self.comm.recv(1, 6)
                return {"match": echoed == pack_batches([(3, batch)])}
            buf = self.comm.recv(0, 5, copy=False)
            items = unpack_batches(buf, copy=False)
            out = {
                "is_view": isinstance(buf, memoryview),
                "tags": [t for t, _ in items],
                "lens": [len(b) for _, b in items],
            }
            self.comm.send(0, 6, bytes(buf))
            return out


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("nrecords", [40, 30_000])  # unchunked / chunked
def test_gather_send_recv_view_roundtrip(backend, nrecords):
    """Vectored parts send + copy=False receive, across chunking regimes.

    30k records (~3 MB) exceed the 1 MiB default chunk size, exercising
    the chunked framing; 40 records stay inline.
    """
    def factory(comm):
        return _PartsRoundtrip(comm, nrecords, nrecords > 10_000)

    if backend == "thread":
        cluster = ThreadCluster(2, recv_timeout=60.0)
    else:
        cluster = ProcessCluster(2, timeout=60.0)
    res = cluster.run(factory)
    assert res.results[0] == {"match": True}
    assert res.results[1]["tags"] == [3]
    assert res.results[1]["lens"] == [nrecords]
    assert res.results[1]["is_view"]


class _ArenaReuseSender(NodeProgram):
    """A completed blocking send must not alias the caller's mutable buffer."""

    STAGES = ["xfer"]

    def run(self):
        n = 50_000  # > chunk_bytes below, so chunk frames are single views
        with self.stage("xfer"):
            if self.rank == 0:
                arena = bytearray(b"A" * n)
                self.comm.send(1, 9, arena)
                arena[:] = b"B" * n  # reuse the arena immediately
                self.comm.barrier()
                return None
            self.comm.barrier()  # pop only after the sender mutated
            got = self.comm.recv(0, 9, copy=False)
            return bytes(got) == b"A" * n


def test_inproc_blocking_send_does_not_alias_mutable_buffer():
    res = ThreadCluster(2, recv_timeout=30.0, chunk_bytes=8 * 1024).run(
        _ArenaReuseSender
    )
    assert res.results[1] is True


class TestMergeSortedKWay:
    def test_many_runs_equal_concat_sort(self):
        b = teragen(1000, seed=11)
        cuts = [0, 130, 131, 400, 401, 650, 1000]
        runs = [
            sort_batch(b.slice(lo, hi)) for lo, hi in zip(cuts, cuts[1:])
        ]
        assert merge_sorted(runs) == sort_batch(b)

    def test_tie_stability_across_runs(self):
        # Equal keys must come out in run order (stable merge), matching a
        # stable sort of the concatenation.
        def run_with_value(v):
            keys = np.zeros((2, KEY_BYTES), dtype=np.uint8)
            values = np.zeros((2, VALUE_BYTES), dtype=np.uint8)
            values[:, 0] = v
            return RecordBatch.from_arrays(keys, values)

        runs = [run_with_value(v) for v in (10, 20, 30)]
        merged = merge_sorted(runs)
        assert list(merged.raw_view()[:, KEY_BYTES]) == [10, 10, 20, 20, 30, 30]

    def test_single_run_passthrough(self):
        b = sort_batch(teragen(50, seed=12))
        assert merge_sorted([b]) == b

    def test_keys_with_embedded_nulls(self):
        # NUL-heavy keys: padded S10 comparison must still realize exact
        # 10-byte lexicographic order.
        rng = np.random.default_rng(13)
        raw = rng.integers(0, 256, size=(300, KEY_BYTES), dtype=np.uint8)
        raw[::3, 4:] = 0
        raw[::5, :2] = 0
        values = np.zeros((300, VALUE_BYTES), dtype=np.uint8)
        b = RecordBatch.from_arrays(raw, values)
        runs = [sort_batch(b.slice(0, 100)), sort_batch(b.slice(100, 300))]
        assert merge_sorted(runs) == sort_batch(b)
