"""End-to-end TeraSort tests on the threaded backend."""

from __future__ import annotations

import pytest

from repro.core.terasort import run_terasort
from repro.core.theory import uncoded_shuffle_messages
from repro.kvpairs.serialization import HEADER_BYTES
from repro.kvpairs.teragen import teragen, teragen_skewed
from repro.kvpairs.validation import (
    validate_permutation,
    validate_sorted,
    validate_sorted_permutation,
)


class TestTeraSortCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_sorts_any_cluster_size(self, k, thread_cluster_factory):
        data = teragen(4000, seed=k)
        run = run_terasort(thread_cluster_factory(k), data)
        validate_sorted_permutation(data, run.partitions)
        assert len(run.partitions) == k

    def test_empty_input(self, thread_cluster_factory):
        data = teragen(0)
        run = run_terasort(thread_cluster_factory(3), data)
        assert run.total_records == 0

    def test_fewer_records_than_nodes(self, thread_cluster_factory):
        data = teragen(3, seed=1)
        run = run_terasort(thread_cluster_factory(6), data)
        validate_sorted_permutation(data, run.partitions)

    def test_skewed_keys_with_sampled_partitioner(self, thread_cluster_factory):
        data = teragen_skewed(8000, seed=2, zipf_a=1.3)
        run = run_terasort(
            thread_cluster_factory(4), data, sampled_partitioner=True
        )
        validate_sorted_permutation(data, run.partitions)
        # Sampling should keep the biggest partition under ~2x fair share.
        largest = max(len(p) for p in run.partitions)
        assert largest < 2.0 * 8000 / 4

    def test_skewed_keys_uniform_partitioner_still_correct(
        self, thread_cluster_factory
    ):
        data = teragen_skewed(5000, seed=3)
        run = run_terasort(thread_cluster_factory(4), data)
        validate_sorted_permutation(data, run.partitions)

    def test_partitions_follow_partitioner(self, thread_cluster_factory):
        data = teragen(3000, seed=4)
        run = run_terasort(thread_cluster_factory(5), data)
        for k, part in enumerate(run.partitions):
            if len(part):
                assert (run.partitioner.partition_indices(part) == k).all()


class TestTeraSortAccounting:
    def test_shuffle_message_count(self, thread_cluster_factory):
        k = 6
        run = run_terasort(thread_cluster_factory(k), teragen(1200, seed=5))
        assert run.traffic.message_count("shuffle") == uncoded_shuffle_messages(k)

    def test_shuffle_load_near_theory(self, thread_cluster_factory):
        k = 6
        n = 12000
        data = teragen(n, seed=6)
        run = run_terasort(thread_cluster_factory(k), data)
        payload = run.traffic.load_bytes("shuffle")
        headers = uncoded_shuffle_messages(k) * HEADER_BYTES
        ideal = n * 100 * (k - 1) / k
        assert abs(payload - headers - ideal) / ideal < 0.02

    def test_stage_breakdown_populated(self, thread_cluster_factory):
        run = run_terasort(thread_cluster_factory(3), teragen(1000, seed=7))
        assert run.stage_times.stages == ["map", "pack", "shuffle", "unpack", "reduce"]
        assert run.stage_times.total > 0

    def test_no_traffic_outside_shuffle(self, thread_cluster_factory):
        run = run_terasort(thread_cluster_factory(4), teragen(1000, seed=8))
        assert set(run.traffic.by_stage()) == {"shuffle"}

    def test_meta_fields(self, thread_cluster_factory):
        run = run_terasort(thread_cluster_factory(4), teragen(100, seed=9))
        assert run.meta["algorithm"] == "terasort"
        assert run.meta["num_nodes"] == 4
        assert run.meta["input_records"] == 100
