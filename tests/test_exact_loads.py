"""Exact-load tests: byte accounting equals the closed forms *exactly*.

Random keys only approach the Eq. (2) loads; these tests construct perfectly
balanced inputs (every file contributes exactly the same number of records
to every partition, divisible by r) so that every formula holds with zero
slack, apart from explicitly-accounted frame/packet headers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coded_terasort import run_coded_terasort
from repro.core.groups import build_coding_plan
from repro.core.terasort import run_terasort
from repro.core.theory import (
    coded_multicast_count,
    uncoded_shuffle_messages,
)
from repro.kvpairs.records import KEY_BYTES, RECORD_BYTES, VALUE_BYTES, RecordBatch
from repro.kvpairs.serialization import HEADER_BYTES
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.utils.subsets import binomial


def balanced_batch(num_files: int, num_nodes: int, per_cell: int) -> RecordBatch:
    """A batch whose even split into ``num_files`` files gives each file
    exactly ``per_cell`` records in each of ``num_nodes`` uniform partitions.

    Construction: records are laid out file-major; within a file, keys cycle
    through the K partition mid-points ``per_cell`` times each.
    """
    n = num_files * num_nodes * per_cell
    span = 1 << 64
    step = span // num_nodes
    # Partition midpoints as 8-byte prefixes.
    mids = [(step * j + step // 2) for j in range(num_nodes)]
    keys = np.zeros((n, KEY_BYTES), dtype=np.uint8)
    row = 0
    for _f in range(num_files):
        for j in range(num_nodes):
            prefix = mids[j].to_bytes(8, "big")
            for c in range(per_cell):
                keys[row, :8] = list(prefix)
                keys[row, 8] = c % 256
                keys[row, 9] = (row * 7) % 256
                row += 1
    values = np.zeros((n, VALUE_BYTES), dtype=np.uint8)
    values[:, 0] = np.arange(n) % 251
    return RecordBatch.from_arrays(keys, values)


class TestUncodedExact:
    def test_load_exact(self):
        k, per_cell = 4, 6
        data = balanced_batch(k, k, per_cell)
        run = run_terasort(ThreadCluster(k, recv_timeout=30), data)
        validate_sorted_permutation(data, run.partitions)
        messages = uncoded_shuffle_messages(k)
        expected = (
            messages * (per_cell * RECORD_BYTES + HEADER_BYTES)
        )
        assert run.traffic.load_bytes("shuffle") == expected

    def test_per_sender_balance_exact(self):
        k, per_cell = 5, 4
        data = balanced_batch(k, k, per_cell)
        run = run_terasort(ThreadCluster(k, recv_timeout=30), data)
        per_sender = run.traffic.by_sender("shuffle")
        values = set(per_sender.values())
        assert len(values) == 1  # perfectly balanced senders


class TestCodedExact:
    @pytest.mark.parametrize("k,r", [(4, 2), (5, 2), (4, 3), (6, 3)])
    def test_payload_exact(self, k, r):
        """Every coded packet's payload is exactly ivb / r bytes."""
        n_files = binomial(k, r)
        per_cell = 2 * r  # divisible by r so segments are equal
        data = balanced_batch(n_files, k, per_cell)
        run = run_coded_terasort(
            ThreadCluster(k, recv_timeout=60), data, redundancy=r
        )
        validate_sorted_permutation(data, run.partitions)

        iv_bytes = per_cell * RECORD_BYTES  # one I^t_S
        segment = iv_bytes // r
        plan = build_coding_plan(k, r)
        packet_header = (
            16  # _PACKET_HEADER: 4s H I + padding -> computed below
        )
        # Compute the exact wire size from a real packet instead of
        # hardcoding struct sizes.
        records = [
            rec for rec in run.traffic.records if rec.stage == "shuffle"
        ]
        assert len(records) == coded_multicast_count(r, k)
        sizes = {rec.payload_bytes for rec in records}
        assert len(sizes) == 1, f"unequal packet sizes {sizes}"
        (size,) = sizes
        # Payload = XOR of r equal segments (zero-padded to the max = all
        # equal) -> exactly `segment` bytes plus the packet header.
        header_bytes = size - segment
        assert header_bytes > 0
        # Header: magic/group/sender/entries/length — grows with r, fixed
        # given (k, r).
        expected_header = 4 + 2 + 4 + 4 * (r + 1) + 12 * r + 8
        assert header_bytes == expected_header

    def test_total_load_equals_formula_plus_headers(self):
        k, r = 5, 2
        n_files = binomial(k, r)
        per_cell = 4
        data = balanced_batch(n_files, k, per_cell)
        run = run_coded_terasort(
            ThreadCluster(k, recv_timeout=60), data, redundancy=r
        )
        iv_bytes = per_cell * RECORD_BYTES
        segment = iv_bytes // r
        count = coded_multicast_count(r, k)
        expected_header = 4 + 2 + 4 + 4 * (r + 1) + 12 * r + 8
        assert run.traffic.load_bytes("shuffle") == count * (
            segment + expected_header
        )

    def test_every_node_sends_equal_packets(self):
        k, r = 5, 2
        data = balanced_batch(binomial(k, r), k, 2 * r)
        run = run_coded_terasort(
            ThreadCluster(k, recv_timeout=60), data, redundancy=r
        )
        per_sender = run.traffic.by_sender("shuffle")
        assert len(set(per_sender.values())) == 1
        counts = {}
        for rec in run.traffic.records:
            if rec.stage == "shuffle":
                counts[rec.src] = counts.get(rec.src, 0) + 1
        assert all(c == binomial(k - 1, r) for c in counts.values())
