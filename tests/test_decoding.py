"""Tests for Algorithm 2 — the encode/decode round trip.

The central correctness property of the whole paper: within any multicast
group ``M``, after every member multicasts its coded packet, every member
recovers exactly the intermediate value it was missing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoding import (
    decode_all_groups,
    decode_segment,
    recover_intermediate,
)
from repro.core.encoding import CodedPacket, CodingError, encode_packet
from repro.utils.subsets import k_subsets, without


def build_group_store(group, rng_seed=0, sizes=None):
    """Global store: (subset = M\\{t}, target = t) -> deterministic bytes."""
    import random

    rng = random.Random(rng_seed)
    store = {}
    for i, t in enumerate(group):
        subset = without(group, t)
        size = sizes[i] if sizes is not None else rng.randint(0, 64)
        store[(subset, t)] = bytes(rng.randrange(256) for _ in range(size))
    return store


def run_group_roundtrip(group, store):
    """Encode at every member, decode at every member, compare to store."""
    lookup = lambda s, t: store[(s, t)]  # noqa: E731
    packets = {k: encode_packet(k, group, lookup) for k in group}
    for receiver in group:
        received = {u: packets[u] for u in group if u != receiver}
        recovered = recover_intermediate(receiver, group, received, lookup)
        expected = store[(without(group, receiver), receiver)]
        assert recovered == expected, (
            f"receiver {receiver} in group {group} recovered wrong bytes"
        )


class TestRoundTripBasic:
    def test_paper_example_group(self):
        """The Fig. 6/7 scenario: r=2, M={0,1,2}."""
        group = (0, 1, 2)
        store = build_group_store(group, sizes=[10, 10, 10])
        run_group_roundtrip(group, store)

    def test_unequal_sizes_zero_padding(self):
        group = (0, 1, 2)
        store = build_group_store(group, sizes=[31, 2, 17])
        run_group_roundtrip(group, store)

    def test_empty_values(self):
        group = (0, 1, 2)
        store = build_group_store(group, sizes=[0, 0, 0])
        run_group_roundtrip(group, store)

    def test_mixed_empty_and_nonempty(self):
        group = (1, 4, 6)
        store = build_group_store(group, sizes=[0, 25, 7])
        run_group_roundtrip(group, store)

    def test_r1_group(self):
        """r = 1: two-member groups degenerate to framed unicast."""
        group = (2, 5)
        store = build_group_store(group, sizes=[13, 4])
        run_group_roundtrip(group, store)

    def test_large_group(self):
        group = tuple(range(7))  # r = 6
        store = build_group_store(group, rng_seed=3)
        run_group_roundtrip(group, store)


class TestRoundTripProperty:
    @settings(max_examples=40)
    @given(st.data())
    def test_any_group_any_sizes(self, data):
        k = data.draw(st.integers(2, 8), label="K")
        group_size = data.draw(st.integers(2, k), label="r+1")
        members = tuple(sorted(data.draw(
            st.lists(
                st.integers(0, k - 1),
                min_size=group_size,
                max_size=group_size,
                unique=True,
            ),
            label="group",
        )))
        sizes = data.draw(
            st.lists(
                st.integers(0, 97),
                min_size=group_size,
                max_size=group_size,
            ),
            label="sizes",
        )
        seed = data.draw(st.integers(0, 1000), label="seed")
        store = build_group_store(members, rng_seed=seed, sizes=sizes)
        run_group_roundtrip(members, store)


class TestDecodeAllGroups:
    def test_recovers_all_missing_subsets(self):
        """Full-node view: decode every group containing the node (K=5, r=2)."""
        k, r = 5, 2
        # Global store over all (subset, target) pairs with target outside.
        import random

        rng = random.Random(1)
        store = {}
        for subset in k_subsets(k, r):
            for t in range(k):
                if t not in subset:
                    store[(subset, t)] = bytes(
                        rng.randrange(256) for _ in range(rng.randint(1, 40))
                    )
        lookup = lambda s, t: store[(s, t)]  # noqa: E731
        receiver = 0
        packets_by_group = {}
        for group in k_subsets(k, r + 1):
            if receiver not in group:
                continue
            packets_by_group[group] = {
                u: encode_packet(u, group, lookup)
                for u in group
                if u != receiver
            }
        decoded = decode_all_groups(receiver, packets_by_group, lookup)
        expected_subsets = {
            s for s in k_subsets(k, r) if receiver not in s
        }
        assert set(decoded) == expected_subsets
        for subset, value in decoded.items():
            assert value == store[(subset, receiver)]


class TestErrorPaths:
    def _packets(self):
        group = (0, 1, 2)
        store = build_group_store(group, sizes=[8, 8, 8])
        lookup = lambda s, t: store[(s, t)]  # noqa: E731
        packets = {k: encode_packet(k, group, lookup) for k in group}
        return group, store, lookup, packets

    def test_decode_own_packet_rejected(self):
        group, _, lookup, packets = self._packets()
        with pytest.raises(CodingError):
            decode_segment(0, packets[0], lookup)

    def test_receiver_outside_group_rejected(self):
        group, _, lookup, packets = self._packets()
        with pytest.raises(CodingError):
            decode_segment(7, packets[0], lookup)

    def test_missing_packet_detected(self):
        group, _, lookup, packets = self._packets()
        with pytest.raises(CodingError, match="missing packet"):
            recover_intermediate(0, group, {1: packets[1]}, lookup)

    def test_wrong_group_detected(self):
        group, store, lookup, packets = self._packets()
        other = encode_packet(
            1, (1, 2, 3),
            lambda s, t: build_group_store((1, 2, 3), sizes=[8, 8, 8])[(s, t)],
        )
        with pytest.raises(CodingError, match="group"):
            recover_intermediate(0, group, {1: other, 2: packets[2]}, lookup)

    def test_mislabeled_sender_detected(self):
        group, _, lookup, packets = self._packets()
        with pytest.raises(CodingError, match="sender"):
            recover_intermediate(0, group, {1: packets[2], 2: packets[1]}, lookup)

    def test_inconsistent_local_value_detected(self):
        """If a node's local map output diverges, decoding flags it."""
        group, store, lookup, packets = self._packets()
        bad_store = dict(store)
        # Receiver 0 peels I^1_{(0,2)} out of packets; corrupt its length.
        from repro.utils.subsets import without

        key = (without(group, 1), 1)
        bad_store[key] = store[key] + b"extra"
        bad_lookup = lambda s, t: bad_store[(s, t)]  # noqa: E731
        with pytest.raises(CodingError, match="length mismatch"):
            decode_segment(0, packets[2], bad_lookup)
