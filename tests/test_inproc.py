"""Tests for the threaded in-process backend."""

from __future__ import annotations

import pytest

from repro.runtime.inproc import ThreadCluster
from repro.runtime.mailbox import Mailbox, MailboxClosed
from repro.runtime.program import NodeProgram


class TestMailbox:
    def test_fifo_per_key(self):
        mb = Mailbox()
        mb.put(0, 1, b"a")
        mb.put(0, 1, b"b")
        assert mb.get(0, 1, timeout=1) == b"a"
        assert mb.get(0, 1, timeout=1) == b"b"

    def test_selective_receive(self):
        mb = Mailbox()
        mb.put(0, 2, b"two")
        mb.put(0, 1, b"one")
        assert mb.get(0, 1, timeout=1) == b"one"
        assert mb.get(0, 2, timeout=1) == b"two"

    def test_timeout_raises(self):
        mb = Mailbox()
        with pytest.raises(TimeoutError, match="timeout"):
            mb.get(0, 1, timeout=0.05)

    def test_closed_raises(self):
        mb = Mailbox()
        mb.close()
        with pytest.raises(MailboxClosed, match="closed"):
            mb.get(0, 1, timeout=1)
        with pytest.raises(MailboxClosed, match="closed"):
            mb.put(0, 1, b"x")

    def test_poll_is_nonblocking(self):
        mb = Mailbox()
        assert mb.poll(0, 1) is None
        mb.put(0, 1, b"a")
        assert mb.poll(0, 1) == b"a"
        assert mb.poll(0, 1) is None

    def test_source_closure_is_selective(self):
        mb = Mailbox()
        mb.put(2, 1, b"buffered")
        mb.close_source(2, "eof")
        # Buffered frames drain before closure surfaces.
        assert mb.get(2, 1, timeout=1) == b"buffered"
        with pytest.raises(MailboxClosed, match="source 2"):
            mb.get(2, 1, timeout=1)
        # Other sources are unaffected.
        mb.put(3, 1, b"alive")
        assert mb.get(3, 1, timeout=1) == b"alive"


class _PingPong(NodeProgram):
    STAGES = ["play"]

    def run(self):
        with self.stage("play"):
            other = 1 - self.rank
            if self.rank == 0:
                self.comm.send(other, 5, b"ping")
                return self.comm.recv(other, 6)
            msg = self.comm.recv(other, 5)
            self.comm.send(other, 6, b"pong-" + msg)
            return msg


class _Failing(NodeProgram):
    STAGES = ["boom"]

    def run(self):
        with self.stage("boom"):
            if self.rank == 1:
                raise ValueError("deliberate failure")
            # Other nodes block on a message that never comes.
            self.comm.recv(1, 7)


class _BarrierCounter(NodeProgram):
    STAGES = ["sync"]

    def run(self):
        import threading

        with self.stage("sync"):
            order = []
            for i in range(3):
                self.comm.barrier()
                order.append(i)
        return order


class TestThreadCluster:
    def test_ping_pong(self):
        res = ThreadCluster(2, recv_timeout=10).run(_PingPong)
        assert res.results[0] == b"pong-ping"
        assert res.results[1] == b"ping"

    def test_stage_times_collected(self):
        res = ThreadCluster(2, recv_timeout=10).run(_PingPong)
        assert res.stage_times.stages == ["play"]
        assert res.stage_times["play"] >= 0

    def test_traffic_collected(self):
        res = ThreadCluster(2, recv_timeout=10).run(_PingPong)
        assert res.traffic.message_count() == 2
        assert res.traffic.load_bytes() == len(b"ping") + len(b"pong-ping")

    def test_node_failure_propagates_with_rank(self):
        with pytest.raises(RuntimeError, match="node 1 failed"):
            ThreadCluster(3, recv_timeout=10).run(_Failing)

    def test_failure_unblocks_peers_quickly(self):
        """Peers blocked on recv must not wait out the full timeout."""
        import time

        start = time.monotonic()
        with pytest.raises(RuntimeError):
            ThreadCluster(4, recv_timeout=60).run(_Failing)
        assert time.monotonic() - start < 10

    def test_repeated_barriers(self):
        res = ThreadCluster(4, recv_timeout=10).run(_BarrierCounter)
        assert all(r == [0, 1, 2] for r in res.results)

    def test_single_node_cluster(self):
        class Solo(NodeProgram):
            STAGES = ["s"]

            def run(self):
                with self.stage("s"):
                    self.comm.barrier()
                    return self.rank

        res = ThreadCluster(1, recv_timeout=5).run(Solo)
        assert res.results == [0]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadCluster(0)
