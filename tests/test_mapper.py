"""Tests for the Map stage (hash-partitioning + retention rule)."""

from __future__ import annotations

import pytest

from repro.core.mapper import hash_file, map_node_coded, map_output_bytes
from repro.core.partitioner import RangePartitioner
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_permutation


class TestHashFile:
    def test_partition_count(self, small_batch):
        parts = hash_file(small_batch, RangePartitioner.uniform(8))
        assert len(parts) == 8

    def test_partition_is_permutation(self, small_batch):
        parts = hash_file(small_batch, RangePartitioner.uniform(8))
        validate_permutation(small_batch, parts)

    def test_records_in_correct_partition(self, small_batch):
        p = RangePartitioner.uniform(4)
        parts = hash_file(small_batch, p)
        for j, part in enumerate(parts):
            if len(part):
                assert (p.partition_indices(part) == j).all()

    def test_empty_input(self):
        parts = hash_file(RecordBatch.empty(), RangePartitioner.uniform(3))
        assert all(len(p) == 0 for p in parts)

    def test_stable_within_partition(self):
        """Records keep input order inside each partition (stable grouping)."""
        b = teragen(200, seed=6)
        p = RangePartitioner.uniform(2)
        parts = hash_file(b, p)
        idx = p.partition_indices(b)
        from repro.kvpairs.teragen import extract_row_ids

        for j in (0, 1):
            got = extract_row_ids(parts[j])
            expected = extract_row_ids(b)[idx == j]
            assert (got == expected).all()


class TestCodedMap:
    def _setup(self, k=5, r=2, n=500):
        from repro.core.placement import CodedPlacement

        b = teragen(n, seed=7)
        placement = CodedPlacement(k, r)
        assignments = placement.place(b)
        node = 0
        files = {
            a.file_id: a.data for a in assignments if node in a.subset
        }
        subsets = {
            a.file_id: a.subset for a in assignments if node in a.subset
        }
        return node, files, subsets, RangePartitioner.uniform(k)

    def test_retention_rule(self):
        node, files, subsets, part = self._setup()
        kept = map_node_coded(node, files, subsets, part)
        for file_id, per_target in kept.items():
            subset = set(subsets[file_id])
            targets = set(per_target)
            # Keeps own partition plus all out-of-subset partitions.
            expected = {node} | (set(range(part.num_partitions)) - subset)
            assert targets == expected

    def test_rejects_foreign_file(self):
        node, files, subsets, part = self._setup()
        bad_subsets = {f: (1, 2) for f in subsets}  # node 0 not in subset
        with pytest.raises(ValueError):
            map_node_coded(node, files, bad_subsets, part)

    def test_retained_content_matches_hash(self):
        node, files, subsets, part = self._setup()
        kept = map_node_coded(node, files, subsets, part)
        for file_id, data in files.items():
            parts = hash_file(data, part)
            for target, batch in kept[file_id].items():
                assert batch == parts[target]

    def test_map_output_bytes(self):
        node, files, subsets, part = self._setup()
        kept = map_node_coded(node, files, subsets, part)
        total = map_output_bytes(kept)
        manual = sum(
            b.nbytes for pf in kept.values() for b in pf.values()
        )
        assert total == manual
