"""Tests for the experiment harness (tables, figures, report)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    fig2_series,
    multicast_penalty_ablation,
    schedule_ablation,
    sweep_k,
    sweep_r,
)
from repro.experiments.report import (
    render_ablation,
    render_fig2,
    render_sweep,
    render_table,
)
from repro.experiments.tables import table1, table2, table3

SMALL = 2_000_000  # records for fast table sims in tests


class TestTables:
    def test_table1_structure(self):
        t = table1(n_records=SMALL, granularity="turn")
        assert len(t.rows) == 1
        row = t.rows[0]
        assert row.label == "TeraSort"
        assert len(row.stage_pairs()) == 5

    def test_table2_has_three_rows(self):
        t = table2(n_records=SMALL, granularity="turn")
        labels = [r.label for r in t.rows]
        assert labels == ["TeraSort", "CodedTeraSort r=3", "CodedTeraSort r=5"]

    def test_table2_speedups_positive(self):
        # Full paper scale: at small inputs r=5's CodeGen legitimately
        # dominates and the speedup drops below 1 (§V-C's own trend), so
        # the >1 assertion only holds at the 120M-record operating point.
        t = table2(granularity="turn")
        for label, paper_speedup, measured in t.speedup_pairs():
            assert measured > 1.0, label
            assert paper_speedup > 1.0

    def test_small_scale_codegen_dominates_r5(self):
        """§V-C trend: shrinking the input makes r=5 lose to TeraSort."""
        t = table2(n_records=SMALL, granularity="turn")
        speedups = {label: m for label, _, m in t.speedup_pairs()}
        assert speedups["CodedTeraSort r=5"] < 1.0

    def test_table3_k20(self):
        t = table3(n_records=SMALL, granularity="turn")
        assert t.num_nodes == 20
        assert all(r.measured.num_nodes == 20 for r in t.rows)

    def test_full_scale_totals_match_paper(self):
        """At 120M records the totals land within 5% of the paper."""
        t = table2(granularity="turn")
        for row in t.rows:
            assert row.total_ratio == pytest.approx(1.0, abs=0.08), row.label

    def test_render_table_text(self):
        out = render_table(table1(n_records=SMALL, granularity="turn"))
        assert "TeraSort" in out and "paper" in out and "measured" in out

    def test_render_table_markdown(self):
        out = render_table(
            table1(n_records=SMALL, granularity="turn"), markdown=True
        )
        assert out.count("|") > 10


class TestFig2:
    def test_theory_only_series(self):
        pts = fig2_series(num_nodes=10, measure=False)
        assert len(pts) == 10
        assert pts[0].uncoded_theory == pytest.approx(0.9)
        assert pts[1].coded_theory == pytest.approx(0.4)
        assert all(p.coded_measured is None for p in pts)

    def test_measured_series_tracks_theory(self):
        pts = fig2_series(
            num_nodes=5, n_records=4000, measure=True, max_measured_r=3
        )
        for p in pts:
            if p.coded_measured is not None:
                assert p.coded_measured == pytest.approx(
                    p.coded_theory, rel=0.15, abs=0.01
                )

    def test_render(self):
        out = render_fig2(fig2_series(num_nodes=6, measure=False))
        assert "uncoded L (theory)" in out


class TestSweeps:
    def test_sweep_r_shape(self):
        pts = sweep_r(num_nodes=16, r_values=(1, 2, 3, 5, 8), n_records=SMALL)
        assert [p.redundancy for p in pts] == [1, 2, 3, 5, 8]
        speedups = [p.speedup for p in pts]
        #

        # Rises from r=1 and eventually falls when CodeGen dominates.
        assert speedups[1] > speedups[0]
        assert max(speedups) > speedups[-1]

    def test_sweep_r_codegen_monotone(self):
        pts = sweep_r(num_nodes=12, r_values=(2, 3, 4, 5), n_records=SMALL)
        cg = [p.codegen_time for p in pts]
        assert cg == sorted(cg)

    def test_sweep_k_speedup_decreases(self):
        pts = sweep_k(redundancy=3, k_values=(8, 16, 24))
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups, reverse=True)

    def test_sweep_k_skips_invalid(self):
        pts = sweep_k(redundancy=3, k_values=(2, 8), n_records=SMALL)
        assert [p.num_nodes for p in pts] == [8]

    def test_render(self):
        out = render_sweep(
            sweep_r(num_nodes=8, r_values=(1, 2), n_records=SMALL), "t"
        )
        assert "speedup" in out


class TestAblations:
    def test_parallel_schedule_faster(self):
        res = schedule_ablation(num_nodes=8, redundancy=2, n_records=SMALL)
        times = dict((label, total) for label, _sh, total in res.rows)
        assert (
            times["CodedTeraSort, parallel (naive async)"]
            < times["CodedTeraSort, serial (paper)"]
        )
        # Scheduled rounds beat naive async for both schemes.
        assert (
            times["CodedTeraSort, rounds (scheduled parallel)"]
            < times["CodedTeraSort, parallel (naive async)"]
        )
        assert (
            times["TeraSort, rounds (scheduled parallel)"]
            < times["TeraSort, parallel (naive async)"]
        )

    def test_ideal_multicast_faster(self):
        res = multicast_penalty_ablation(num_nodes=8, redundancy=3, n_records=SMALL)
        shuffles = [sh for _label, sh, _total in res.rows]
        assert shuffles[0] < shuffles[1]  # gamma=0 beats gamma=0.31

    def test_render(self):
        out = render_ablation(
            multicast_penalty_ablation(num_nodes=8, redundancy=2, n_records=SMALL)
        )
        assert "variant" in out
