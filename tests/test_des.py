"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.des import (
    Barrier,
    Environment,
    Event,
    Process,
    Resource,
    SimError,
    Timeout,
)


class TestTimeAdvance:
    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)
            return env.now

        assert env.run_process(proc()) == 5.0

    def test_sequential_timeouts_accumulate(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.5)
            return env.now

        assert env.run_process(proc()) == 3.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimError):
            env.timeout(-1)

    def test_zero_timeout_ok(self):
        env = Environment()

        def proc():
            yield env.timeout(0.0)
            return env.now

        assert env.run_process(proc()) == 0.0

    def test_run_until_pauses_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10.0)
            log.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert env.now == 5.0 and log == []
        env.run()
        assert log == [10.0]


class TestDeterminism:
    def test_simultaneous_events_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def make(name):
            def proc():
                yield env.timeout(1.0)
                order.append(name)

            return proc

        for name in ("a", "b", "c"):
            env.process(make(name)())
        env.run()
        assert order == ["a", "b", "c"]

    def test_two_runs_identical(self):
        def build():
            env = Environment()
            log = []

            def proc(i):
                yield env.timeout(i % 3)
                log.append((env.now, i))

            for i in range(20):
                env.process(proc(i))
            env.run()
            return log

        assert build() == build()


class TestEvents:
    def test_event_value_passed_to_waiter(self):
        env = Environment()
        evt = env.event()
        got = []

        def waiter():
            value = yield evt
            got.append(value)

        def firer():
            yield env.timeout(2.0)
            evt.succeed("payload")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == ["payload"]

    def test_wait_on_already_fired_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed(7)

        def waiter():
            value = yield evt
            return value

        assert env.run_process(waiter()) == 7

    def test_double_trigger_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimError):
            evt.succeed()

    def test_process_join(self):
        env = Environment()

        def child():
            yield env.timeout(3.0)
            return "done"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        assert env.run_process(parent()) == (3.0, "done")

    def test_yield_garbage_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimError):
            env.run()

    def test_deadlock_detected_by_run_process(self):
        env = Environment()

        def stuck():
            yield env.event()  # never fired

        with pytest.raises(SimError, match="did not finish"):
            env.run_process(stuck())


class TestResource:
    def test_serializes_holders(self):
        env = Environment()
        res = Resource(env, capacity=1)
        spans = []

        def worker(i):
            yield res.request()
            start = env.now
            yield env.timeout(2.0)
            res.release()
            spans.append((start, env.now))

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert spans == [(0.0, 2.0), (2.0, 4.0), (4.0, 6.0)]

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(i):
            yield res.request()
            order.append(i)
            yield env.timeout(1.0)
            res.release()

        for i in range(5):
            env.process(worker(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        spans = []

        def worker():
            yield res.request()
            start = env.now
            yield env.timeout(2.0)
            res.release()
            spans.append((start, env.now))

        for _ in range(4):
            env.process(worker())
        env.run()
        assert spans == [(0.0, 2.0), (0.0, 2.0), (2.0, 4.0), (2.0, 4.0)]

    def test_release_without_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimError):
            res.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimError):
            Resource(Environment(), 0)


class TestBarrier:
    def test_all_wait_for_slowest(self):
        env = Environment()
        barrier = Barrier(env, 3)
        times = {}

        def worker(i):
            yield env.timeout(float(i))
            yield barrier.wait()
            times[i] = env.now

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert times == {0: 2.0, 1: 2.0, 2: 2.0}

    def test_reusable(self):
        env = Environment()
        barrier = Barrier(env, 2)
        log = []

        def worker(i):
            for round_idx in range(3):
                yield env.timeout(i + 1.0)
                yield barrier.wait()
                log.append((round_idx, i, env.now))

        env.process(worker(0))
        env.process(worker(1))
        env.run()
        # Both workers cross each round at the same time.
        rounds = {}
        for round_idx, _i, t in log:
            rounds.setdefault(round_idx, set()).add(t)
        assert all(len(ts) == 1 for ts in rounds.values())

    def test_invalid_parties(self):
        with pytest.raises(SimError):
            Barrier(Environment(), 0)
