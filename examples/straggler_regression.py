#!/usr/bin/env python
"""Coded computation against stragglers: distributed linear regression.

The introduction of *Coded TeraSort* motivates coding with two results:
the paper's own coded shuffle, and the MDS-coded computation of Lee et
al. [11], which cuts the average run time of distributed gradient descent
by 31.3%–35.7% by ignoring stragglers.  This example reproduces the
second result with ``repro.stragglers``:

1. builds a synthetic least-squares problem,
2. runs distributed gradient descent where every per-iteration matvec is
   computed by ``n`` simulated workers drawing shifted-exponential
   completion times,
3. compares uncoded (wait for all n), 2-replication (fastest replica per
   block), and (n, k) MDS coding (fastest k of n), and
4. checks the iterates are *identical* — coding is lossless; only the
   simulated wall-clock differs.

Usage::

    python examples/straggler_regression.py [--workers N] [--threshold K]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.regression import coded_least_squares
from repro.stragglers.runner import (
    render_straggler_table,
    straggler_comparison,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", "-n", type=int, default=10,
                        help="workers per distributed operator (default 10)")
    parser.add_argument("--threshold", "-k", type=int, default=7,
                        help="MDS recovery threshold k (default 7)")
    parser.add_argument("--iterations", "-t", type=int, default=80,
                        help="gradient-descent iterations (default 80)")
    parser.add_argument("--shift", type=float, default=1.0,
                        help="deterministic service time (default 1.0)")
    parser.add_argument("--rate", type=float, default=0.5,
                        help="straggling rate; smaller = heavier tail")
    args = parser.parse_args()
    if not 1 <= args.threshold <= args.workers:
        parser.error("need 1 <= threshold <= workers")

    latency = ShiftedExponential(shift=args.shift, rate=args.rate)
    print(f"Straggler model: T = work * ({args.shift} + Exp({args.rate}))")
    print(f"Schemes: uncoded (n={args.workers}), 2-replication, "
          f"({args.workers}, {args.threshold}) MDS\n")

    results = straggler_comparison(
        num_workers=args.workers,
        recovery_threshold=args.threshold,
        iterations=args.iterations,
        latency=latency,
    )
    print(render_straggler_table(results))

    coded = next(r for r in results if r.scheme == "coded")
    print(f"\nCoded GD saved {100 * coded.reduction_vs_uncoded:.1f}% of the "
          f"uncoded run time ([11] reports 31.3%-35.7%).")

    # Lossless check: run uncoded and coded end to end, compare solutions.
    rng = np.random.default_rng(0)
    a = rng.standard_normal((200, 12))
    b = a @ rng.standard_normal(12)
    runs = {
        scheme: coded_least_squares(
            a, b, args.workers, scheme=scheme, iterations=50,
            latency=latency,
            **({"recovery_threshold": args.threshold} if scheme == "coded" else {}),
        )
        for scheme in ("uncoded", "coded")
    }
    drift = float(np.abs(runs["uncoded"].x - runs["coded"].x).max())
    print(f"\nmax |x_uncoded - x_coded| = {drift:.2e}  "
          "(identical trajectories: coding is exact)")
    assert drift < 1e-8
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
