#!/usr/bin/env python
"""Coded MapReduce beyond sorting: WordCount, Grep, and InvertedIndex.

The paper's conclusion (Section VI) points at applying the coding idea to
other shuffle-bound applications — "e.g., Grep, SelfJoin" — built on the
same generic Coded MapReduce engine (Section II).  This example opens one
:class:`repro.Session` (a standing worker pool) and submits nine
:class:`repro.MapReduceSpec` jobs to it — three text-analytics jobs over
a synthetic corpus, each under three shuffle schemes:

* scheme="uncoded", r=1 — plain MapReduce (every file mapped once);
* scheme="uncoded", r   — redundant placement, but unicast shuffle;
* scheme="coded",   r   — redundant placement + XOR multicast (Alg. 1/2);

and reports, per job, the measured shuffle payload bytes of each scheme
(traffic logs are isolated per job id on the shared session).  Outputs
are asserted identical across schemes: coding is transparent.

Usage::

    python examples/cmr_wordcount.py [--nodes K] [--redundancy r] [--files N]
"""

from __future__ import annotations

import argparse

from repro import MapReduceSpec, Session, ThreadCluster
from repro.core.jobs import GrepJob, InvertedIndexJob, WordCountJob
from repro.utils.subsets import binomial
from repro.utils.tables import format_table

_WORDS = (
    "coded shuffle multicast terasort map reduce node packet key value "
    "sort network load speedup group subset segment decode encode index "
    "distributed computing redundancy communication bottleneck cluster"
).split()


def make_corpus(num_files: int, words_per_file: int, seed: int = 0) -> list:
    """Deterministic synthetic text files with a Zipf-ish word mix."""
    import random

    rng = random.Random(seed)
    files = []
    for _ in range(num_files):
        # Weight early vocabulary words more heavily (skewed frequencies).
        picks = rng.choices(
            _WORDS, weights=[1.0 / (i + 1) for i in range(len(_WORDS))],
            k=words_per_file,
        )
        files.append(" ".join(picks))
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", "-K", type=int, default=4)
    parser.add_argument("--redundancy", "-r", type=int, default=2)
    parser.add_argument("--files", "-N", type=int, default=None,
                        help="number of input files; must be a multiple of "
                             "C(K, r) (default: 4 * C(K, r))")
    parser.add_argument("--words-per-file", type=int, default=2000)
    args = parser.parse_args()

    k, r = args.nodes, args.redundancy
    if not 1 <= r < k:
        parser.error(f"redundancy must satisfy 1 <= r < K, got r={r}, K={k}")
    base_files = binomial(k, r)
    num_files = args.files if args.files is not None else 4 * base_files
    if num_files % base_files != 0:
        parser.error(f"--files must be a multiple of C({k},{r}) = {base_files}")

    corpus = make_corpus(num_files, args.words_per_file)
    print(f"Corpus: {num_files} files x {args.words_per_file} words, "
          f"K={k} nodes, r={r}\n")

    jobs = [
        ("WordCount", WordCountJob()),
        ("Grep /cod/", GrepJob(r"cod")),
        ("InvertedIndex", InvertedIndexJob()),
    ]
    schemes = [
        ("uncoded r=1", 1, "uncoded"),
        (f"uncoded r={r}", r, "uncoded"),
        (f"coded   r={r}", r, "coded"),
    ]

    # One standing worker pool serves all nine jobs; submissions are
    # futures, so the whole grid is queued up front and collected after.
    with Session(ThreadCluster(k, recv_timeout=60.0)) as session:
        handles = {
            (job_name, label): session.submit(
                MapReduceSpec(
                    job=job, files=corpus, redundancy=rr, scheme=scheme
                )
            )
            for job_name, job in jobs
            for label, rr, scheme in schemes
        }

        for job_name, _ in jobs:
            rows = []
            reference = None
            for label, rr, scheme in schemes:
                run = handles[(job_name, label)].result()
                if reference is None:
                    reference = run.outputs
                elif run.outputs != reference:
                    raise AssertionError(
                        f"{job_name}: scheme {label} changed the job output"
                    )
                shuffle = run.traffic.load_bytes("shuffle")
                rows.append(
                    [label, shuffle, run.traffic.message_count("shuffle")]
                )
            base_bytes = rows[0][1]
            for row in rows:
                row.append(base_bytes / row[1] if row[1] else float("inf"))
            print(f"== {job_name}: outputs identical under all schemes ==")
            print(format_table(
                ["scheme", "shuffle payload B", "messages", "reduction vs r=1"],
                rows, decimals=2,
            ))
            print()

    print("The coded scheme multicasts XOR packets that serve r nodes at")
    print("once; with payload-dominated intermediate values its shuffle")
    print("bytes approach (1/r) * (1 - r/K) / (1 - 1/K) of plain MapReduce.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
