#!/usr/bin/env python
"""Scalable coding: grouped CodedTeraSort beating the CodeGen wall.

The paper's §VI flags CodeGen's C(K, r+1) growth as the obstacle to
scaling coded sorting (140.91 s of the 441.10 s total at K=20, r=5).
This example runs the grouped construction of ``repro.scalable`` —
coding inside groups of g nodes, dataset replicated across groups so all
shuffles stay intra-group — both functionally (real sort on the thread
backend, byte-accounted) and at paper scale on the simulator.

Usage::

    python examples/scalable_sort.py [--nodes K] [--group-size g] [-r r]
"""

from __future__ import annotations

import argparse

from repro.core.coded_terasort import run_coded_terasort
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.scalable.program import run_grouped_coded_terasort
from repro.scalable.sim import simulate_grouped_coded_terasort
from repro.scalable.theory import grouped_comm_load, grouped_vs_full
from repro.sim.runner import simulate_coded_terasort, simulate_terasort
from repro.utils.tables import format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", "-K", type=int, default=8)
    parser.add_argument("--group-size", "-g", type=int, default=4)
    parser.add_argument("--redundancy", "-r", type=int, default=2)
    parser.add_argument("--records", "-n", type=int, default=40_000)
    args = parser.parse_args()
    k, g, r = args.nodes, args.group_size, args.redundancy
    if k % g != 0:
        parser.error(f"group size {g} must divide K={k}")
    if not 1 <= r < g:
        parser.error(f"need 1 <= r < g, got r={r}, g={g}")

    # -- functional run ---------------------------------------------------
    print(f"Grouped CodedTeraSort: K={k} nodes, {k // g} groups of g={g}, "
          f"r={r} (storage r/g = {r / g:.2f} of input per node)")
    data = teragen(args.records, seed=0)
    grouped = run_grouped_coded_terasort(
        ThreadCluster(k), data, redundancy=r, group_size=g
    )
    validate_sorted_permutation(data, grouped.partitions)
    print("  output valid: sorted and a permutation of the input")
    load = grouped.traffic.load_bytes("shuffle") / (args.records * 100)
    print(f"  measured shuffle load {load:.4f} vs closed form "
          f"(1/r)(1-r/g) = {grouped_comm_load(r, g):.4f}")
    print(f"  CodeGen per group: {grouped.meta['codegen_groups_per_group']} "
          f"multicast groups (plain coded on K={k} would need "
          f"{run_coded_terasort(ThreadCluster(k), data, redundancy=r).meta['num_groups']})")

    # -- the trade, in closed form ----------------------------------------
    cmp = grouped_vs_full(k, g, r)
    print(f"\nEqual-storage comparison (full scheme at r={cmp.full_redundancy}):")
    print(f"  load: grouped {cmp.load_grouped:.3f} vs full {cmp.load_full:.3f} "
          f"({cmp.load_ratio:.1f}x more bytes)")
    print(f"  CodeGen: grouped {cmp.codegen_grouped} vs full "
          f"{cmp.codegen_full} group setups ({cmp.codegen_ratio:.0f}x fewer)")

    # -- paper scale, simulated ---------------------------------------------
    print("\nAt the paper's Table III configuration (12 GB, K=20, 100 Mbps):")
    base = simulate_terasort(20, granularity="turn")
    full = simulate_coded_terasort(20, 5, granularity="turn")
    scaled = simulate_grouped_coded_terasort(20, 10, 5, granularity="turn")
    rows = []
    for label, rep in (
        ("TeraSort", base),
        ("CodedTeraSort r=5", full),
        ("Grouped g=10, r=5", scaled),
    ):
        stage = rep.stage_times
        rows.append([
            label,
            stage.seconds.get("codegen", 0.0),
            stage.seconds.get("map", 0.0),
            stage.seconds.get("shuffle", 0.0),
            stage.total,
            base.total_time / rep.total_time,
        ])
    print(format_table(
        ["scheme", "codegen (s)", "map (s)", "shuffle (s)", "total (s)",
         "speedup"],
        rows,
        decimals=2,
    ))
    print("\nGrouping collapses CodeGen and overlaps the group shuffles;")
    print("the price is doubled per-node storage and Map work (r/g vs r/K).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
