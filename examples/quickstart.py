#!/usr/bin/env python
"""Quickstart: one Session, two sort jobs (TeraSort and CodedTeraSort).

Opens a :class:`repro.Session` over a small in-process cluster and
submits both algorithms as declarative job specs — the cluster is set up
once and every ``submit`` returns a :class:`repro.JobHandle` future.
Each output is validated as a sorted permutation of the input, and the
measured shuffle communication load is compared against the paper's
closed forms (Eq. (2)):

    uncoded:  L(r) = 1 - r/K
    coded:    L(r) = (1/r) * (1 - r/K)

Usage::

    python examples/quickstart.py [--nodes K] [--redundancy r] [--records N]
"""

from __future__ import annotations

import argparse

from repro import (
    CodedTeraSortSpec,
    Session,
    TeraSortSpec,
    ThreadCluster,
    teragen,
    validate_sorted_permutation,
)
from repro.core.theory import coded_comm_load, uncoded_comm_load
from repro.utils.tables import format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", "-K", type=int, default=6,
                        help="cluster size K (default 6)")
    parser.add_argument("--redundancy", "-r", type=int, default=2,
                        help="computation load r (default 2)")
    parser.add_argument("--records", "-n", type=int, default=60_000,
                        help="input records, 100 bytes each (default 60000)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    k, r = args.nodes, args.redundancy
    if not 1 <= r < k:
        parser.error(f"redundancy must satisfy 1 <= r < K, got r={r}, K={k}")

    print(f"Generating {args.records} TeraGen records "
          f"({args.records * 100 / 1e6:.1f} MB)...")
    data = teragen(args.records, seed=args.seed)

    # One session = one standing worker pool; both sorts are jobs on it.
    with Session(ThreadCluster(k)) as session:
        print(f"\nSubmitting TeraSort and CodedTeraSort (r={r}) to one "
              f"K={k} session...")
        base_job = session.submit(TeraSortSpec(data=data))
        coded_job = session.submit(
            CodedTeraSortSpec(data=data, redundancy=r)
        )
        base = base_job.result()
        coded = coded_job.result()

    validate_sorted_permutation(data, base.partitions)
    validate_sorted_permutation(data, coded.partitions)
    print("  output valid: both sorted and a permutation of the input")
    print(f"  coding plan: {coded.meta['num_files']} files, "
          f"{coded.meta['num_groups']} multicast groups, "
          f"{coded.meta['total_multicasts']} multicast packets")

    # -- stage breakdowns ---------------------------------------------------
    print("\nPer-stage wall-clock breakdown (max over nodes, seconds):")
    rows = []
    for name, run in (("TeraSort", base), (f"CodedTeraSort r={r}", coded)):
        for stage in run.stage_times.stages:
            rows.append([name, stage, run.stage_times[stage]])
        rows.append([name, "TOTAL", run.stage_times.total])
    print(format_table(["algorithm", "stage", "seconds"], rows, decimals=4))

    # -- communication load vs theory ---------------------------------------
    total = data.nbytes
    base_load = base.traffic.load_bytes("shuffle") / total
    coded_load = coded.traffic.load_bytes("shuffle") / total
    print("\nShuffle communication load (payload bytes / dataset bytes):")
    print(format_table(
        ["scheme", "measured L", "theory L"],
        [
            ["TeraSort (r=1)", base_load, uncoded_comm_load(1, k)],
            [f"CodedTeraSort (r={r})", coded_load, coded_comm_load(r, k)],
        ],
        decimals=4,
    ))
    print(f"\nMeasured shuffle-byte reduction: "
          f"{base.traffic.load_bytes('shuffle') / max(1, coded.traffic.load_bytes('shuffle')):.2f}x "
          f"(theory: {uncoded_comm_load(1, k) / coded_comm_load(r, k):.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
