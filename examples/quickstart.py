#!/usr/bin/env python
"""Quickstart: sort synthetic TeraGen data with TeraSort and CodedTeraSort.

Runs both algorithms on a small in-process cluster, validates that each
output is a sorted permutation of the input, and compares the measured
shuffle communication load against the paper's closed forms (Eq. (2)):

    uncoded:  L(r) = 1 - r/K
    coded:    L(r) = (1/r) * (1 - r/K)

Usage::

    python examples/quickstart.py [--nodes K] [--redundancy r] [--records N]
"""

from __future__ import annotations

import argparse

from repro.core.coded_terasort import run_coded_terasort
from repro.core.terasort import run_terasort
from repro.core.theory import coded_comm_load, uncoded_comm_load
from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.runtime.inproc import ThreadCluster
from repro.utils.tables import format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", "-K", type=int, default=6,
                        help="cluster size K (default 6)")
    parser.add_argument("--redundancy", "-r", type=int, default=2,
                        help="computation load r (default 2)")
    parser.add_argument("--records", "-n", type=int, default=60_000,
                        help="input records, 100 bytes each (default 60000)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    k, r = args.nodes, args.redundancy
    if not 1 <= r < k:
        parser.error(f"redundancy must satisfy 1 <= r < K, got r={r}, K={k}")

    print(f"Generating {args.records} TeraGen records "
          f"({args.records * 100 / 1e6:.1f} MB)...")
    data = teragen(args.records, seed=args.seed)

    # -- TeraSort (uncoded baseline, Section III) -------------------------
    print(f"\nTeraSort on K={k} nodes (serial unicast shuffle)...")
    base = run_terasort(ThreadCluster(k), data)
    validate_sorted_permutation(data, base.partitions)
    print("  output valid: sorted and a permutation of the input")

    # -- CodedTeraSort (Section IV) ----------------------------------------
    print(f"\nCodedTeraSort on K={k} nodes, r={r} "
          f"(each file mapped on {r} nodes)...")
    coded = run_coded_terasort(ThreadCluster(k), data, redundancy=r)
    validate_sorted_permutation(data, coded.partitions)
    print("  output valid: sorted and a permutation of the input")
    print(f"  coding plan: {coded.meta['num_files']} files, "
          f"{coded.meta['num_groups']} multicast groups, "
          f"{coded.meta['total_multicasts']} multicast packets")

    # -- stage breakdowns ---------------------------------------------------
    print("\nPer-stage wall-clock breakdown (max over nodes, seconds):")
    rows = []
    for name, run in (("TeraSort", base), (f"CodedTeraSort r={r}", coded)):
        for stage in run.stage_times.stages:
            rows.append([name, stage, run.stage_times[stage]])
        rows.append([name, "TOTAL", run.stage_times.total])
    print(format_table(["algorithm", "stage", "seconds"], rows, decimals=4))

    # -- communication load vs theory ---------------------------------------
    total = data.nbytes
    base_load = base.traffic.load_bytes("shuffle") / total
    coded_load = coded.traffic.load_bytes("shuffle") / total
    print("\nShuffle communication load (payload bytes / dataset bytes):")
    print(format_table(
        ["scheme", "measured L", "theory L"],
        [
            ["TeraSort (r=1)", base_load, uncoded_comm_load(1, k)],
            [f"CodedTeraSort (r={r})", coded_load, coded_comm_load(r, k)],
        ],
        decimals=4,
    ))
    print(f"\nMeasured shuffle-byte reduction: "
          f"{base.traffic.load_bytes('shuffle') / max(1, coded.traffic.load_bytes('shuffle')):.2f}x "
          f"(theory: {uncoded_comm_load(1, k) / coded_comm_load(r, k):.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
