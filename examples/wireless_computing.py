#!/usr/bin/env python
"""Wireless distributed computing: coded shuffling over a shared medium.

The paper's conclusion motivates coded computing for *mobile* settings —
augmented reality, recommender systems — where shuffles cross a wireless
collision domain ([24], [25]).  A wireless medium is the paper's serial
fabric taken literally (one transmitter at a time) *and* a true broadcast
channel (every receiver hears a transmission for free) — the best
possible home for coded multicast.

This example sorts a synthetic mobile-recommender workload (user-item
score records) across K phones and compares three shuffle protocols:

* uncoded relay through the access point — every value flies twice;
* edge-facilitated coded relay ([25]) — coded packets via the AP;
* device-to-device coded broadcast — each packet flies once, serves r.

Usage::

    python examples/wireless_computing.py [--users K] [--redundancy r]
"""

from __future__ import annotations

import argparse

from repro.kvpairs.teragen import teragen
from repro.kvpairs.validation import validate_sorted_permutation
from repro.utils.tables import format_table
from repro.wireless.channel import WirelessChannel
from repro.wireless.theory import (
    wireless_coded_load,
    wireless_edge_load,
    wireless_grouped_load,
    wireless_uncoded_load,
)
from repro.wireless.wdc import run_wireless_sort


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", "-K", type=int, default=6)
    parser.add_argument("--redundancy", "-r", type=int, default=2)
    parser.add_argument("--records", "-n", type=int, default=30_000,
                        help="user-item score records (100 B each)")
    parser.add_argument("--rate-mbps", type=float, default=20.0,
                        help="shared channel rate (default 20 Mbps)")
    args = parser.parse_args()
    k, r = args.users, args.redundancy
    if not 1 <= r < k:
        parser.error(f"need 1 <= r < K, got r={r}, K={k}")

    print(f"{k} phones sort {args.records} score records over a "
          f"{args.rate_mbps:.0f} Mbps shared channel (r = {r})\n")
    data = teragen(args.records, seed=0)

    rows = []
    theory = {
        "uncoded": wireless_uncoded_load(r, k),
        "edge": wireless_edge_load(r, k),
        "d2d": wireless_coded_load(r, k),
    }
    for protocol in ("uncoded", "edge", "d2d"):
        channel = WirelessChannel(
            k, rate_bytes_per_s=args.rate_mbps * 125_000
        )
        out = run_wireless_sort(data, k, r, protocol=protocol,
                                channel=channel)
        validate_sorted_permutation(data, out.partitions)
        rows.append([
            protocol,
            out.airtime.total_transmissions,
            out.shuffle_load(),
            theory[protocol],
            out.airtime.total_airtime,
        ])
    print(format_table(
        ["protocol", "transmissions", "measured load", "theory load",
         "airtime (s)"],
        rows,
        decimals=4,
    ))
    uncoded_air = rows[0][4]
    d2d_air = rows[2][4]
    print(f"\nD2D coded broadcast spends {uncoded_air / d2d_air:.1f}x less "
          f"air than the uncoded relay (theory: 2r = {2 * r}x).")

    if k % 2 == 0 and r < k // 2:
        g = k // 2
        out = run_wireless_sort(data, k, r, group_size=g)
        validate_sorted_permutation(data, out.partitions)
        print(f"\nGrouped ([24], g={g}): load "
              f"{out.shuffle_load():.4f} vs theory "
              f"{wireless_grouped_load(r, g):.4f} — independent of K, so "
              "the fleet can grow without spending more air per record.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
