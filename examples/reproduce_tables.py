#!/usr/bin/env python
"""Reproduce the paper's Tables I-III with the calibrated EC2 simulator.

The discrete-event simulator executes the exact serial unicast (Fig. 9(a))
and serial multicast (Fig. 9(b)) schedules at the paper's full scale
(12 GB = 120 M records, 100 Mbps NICs) and prints every table cell next to
the published value, plus the end-to-end speedups.

Usage::

    python examples/reproduce_tables.py [--fast] [--records N]

``--fast`` uses turn-level event granularity (identical totals, far fewer
simulated events) so the script finishes in a couple of seconds.
"""

from __future__ import annotations

import argparse

from repro.experiments.report import render_table
from repro.experiments.tables import table1, table2, table3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="turn-level simulation granularity")
    parser.add_argument("--records", "-n", type=int, default=120_000_000,
                        help="dataset size in 100-byte records")
    args = parser.parse_args()

    granularity = "turn" if args.fast else "transfer"
    for builder in (table1, table2, table3):
        result = builder(n_records=args.records, granularity=granularity)
        print(render_table(result))
        print()

    print("Reading the tables: 'paper' columns are the published EC2")
    print("measurements; 'measured' columns are this simulator. Absolute")
    print("agreement comes from the documented calibration (DESIGN.md §5);")
    print("the structural claims — speedup band, Map ~ r x baseline,")
    print("shuffle gain slightly below r, CodeGen ~ C(K, r+1) — hold")
    print("independently of the calibration constants.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
