"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (pip then uses the legacy ``setup.py develop`` code path instead of
building a PEP 660 wheel).
"""

from setuptools import setup

setup()
