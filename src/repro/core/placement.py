"""File placement: splitting the input and assigning files to nodes.

TeraSort (§III-A1) splits the input into ``K`` disjoint files, one per node.
CodedTeraSort (§IV-A) splits it into ``N = C(K, r)`` files indexed by
``r``-subsets ``S`` of the node set, and stores ``F_S`` on *all* ``r`` nodes
in ``S`` — the structured redundancy that creates the coding opportunities.
Each node then stores ``C(K-1, r-1)`` files, and every ``r``-subset of nodes
shares exactly one file.

Both placements also do the actual data splitting: given a
:class:`~repro.kvpairs.records.RecordBatch` they cut it into near-equal
contiguous files (sizes differ by at most one record, first ``n mod N``
files get the extra record).

``batches_per_subset`` multiplies the file count: ``N = b * C(K, r)`` files
with ``b`` files per subset, the batching the general CMR scheme of [9] uses
when the input has more natural splits than ``C(K, r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.kvpairs.datasource import DataSource
from repro.kvpairs.records import RecordBatch
from repro.utils.subsets import Subset, binomial, k_subsets, subsets_containing


def split_even_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """The ``(start, stop)`` record ranges of an even ``parts``-way split.

    Sizes are ``ceil`` for the first ``n % parts`` ranges and ``floor``
    for the rest, so they differ by at most one record.  This is the
    arithmetic both placements use — factored out so the driver can split
    a :class:`~repro.kvpairs.datasource.DataSource` at the descriptor
    level without touching records.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(n, parts)
    ranges = []
    pos = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((pos, pos + size))
        pos += size
    return ranges


def split_even(batch: RecordBatch, parts: int) -> List[RecordBatch]:
    """Split a batch into ``parts`` contiguous near-equal files.

    Sizes follow :func:`split_even_ranges`; chunks are zero-copy views.
    """
    return [
        batch.slice(start, stop)
        for start, stop in split_even_ranges(len(batch), parts)
    ]


def split_source_even(source: DataSource, parts: int) -> List[DataSource]:
    """Per-file subrange *descriptors* of an even split (no records touched).

    The descriptor-level twin of :func:`split_even`: element ``f``
    describes exactly the records ``split_even(source.load(), parts)[f]``
    would hold.  Shared by both placements' ``split_source``.
    """
    return [
        source.subrange(start, stop - start)
        for start, stop in split_even_ranges(source.num_records, parts)
    ]


@dataclass(frozen=True)
class FileAssignment:
    """One input file and the set of nodes storing it."""

    file_id: int
    subset: Subset  # nodes storing the file (singleton for uncoded)
    data: RecordBatch


class UncodedPlacement:
    """TeraSort's placement: ``K`` files, file ``k`` on node ``k`` only."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes
        self.num_files = num_nodes
        self.redundancy = 1

    def subsets(self) -> List[Subset]:
        return [(k,) for k in range(self.num_nodes)]

    def files_of_node(self, node: int) -> List[int]:
        self._check_node(node)
        return [node]

    def place(self, batch: RecordBatch) -> List[FileAssignment]:
        """Split ``batch`` into per-node files."""
        files = split_even(batch, self.num_files)
        return [
            FileAssignment(file_id=k, subset=(k,), data=files[k])
            for k in range(self.num_files)
        ]

    def split_source(self, source: DataSource) -> List[DataSource]:
        """Per-file descriptors matching :meth:`place` — workers read
        their own splits."""
        return split_source_even(source, self.num_files)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range({self.num_nodes})")


class CodedPlacement:
    """The structured redundant placement of CodedTeraSort (§IV-A).

    Files are indexed by the lexicographically ordered ``r``-subsets of
    ``range(K)`` (times ``batches_per_subset``); file ids are dense ints.

    Args:
        num_nodes: ``K``.
        redundancy: ``r`` (``1 <= r <= K``); ``r = 1`` degenerates to a
            placement with ``K`` unshared files.
        batches_per_subset: ``b``; total files ``N = b * C(K, r)``.
    """

    def __init__(
        self, num_nodes: int, redundancy: int, batches_per_subset: int = 1
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 1 <= redundancy <= num_nodes:
            raise ValueError(
                f"redundancy must be in [1, {num_nodes}], got {redundancy}"
            )
        if batches_per_subset < 1:
            raise ValueError(
                f"batches_per_subset must be >= 1, got {batches_per_subset}"
            )
        self.num_nodes = num_nodes
        self.redundancy = redundancy
        self.batches_per_subset = batches_per_subset
        self._subsets: List[Subset] = list(k_subsets(num_nodes, redundancy))
        self.num_subsets = len(self._subsets)  # C(K, r)
        self.num_files = self.num_subsets * batches_per_subset
        self._subset_rank: Dict[Subset, int] = {
            s: i for i, s in enumerate(self._subsets)
        }

    # -- index mappings ---------------------------------------------------------

    def subsets(self) -> List[Subset]:
        """All ``r``-subsets in file order (one entry per subset)."""
        return list(self._subsets)

    def subset_of_file(self, file_id: int) -> Subset:
        """The node subset storing ``file_id``."""
        if not 0 <= file_id < self.num_files:
            raise ValueError(f"file_id {file_id} out of range({self.num_files})")
        return self._subsets[file_id % self.num_subsets]

    def batch_of_file(self, file_id: int) -> int:
        """Which batch replica ``file_id`` belongs to (0-based)."""
        if not 0 <= file_id < self.num_files:
            raise ValueError(f"file_id {file_id} out of range({self.num_files})")
        return file_id // self.num_subsets

    def file_id(self, subset: Subset, batch: int = 0) -> int:
        """Dense file id of ``(subset, batch)``."""
        if subset not in self._subset_rank:
            raise ValueError(f"{subset!r} is not an r-subset of this placement")
        if not 0 <= batch < self.batches_per_subset:
            raise ValueError(
                f"batch {batch} out of range({self.batches_per_subset})"
            )
        return batch * self.num_subsets + self._subset_rank[subset]

    def files_of_node(self, node: int) -> List[int]:
        """File ids stored on ``node`` — ``b * C(K-1, r-1)`` of them."""
        self._check_node(node)
        out = []
        for b in range(self.batches_per_subset):
            for s in subsets_containing(self.num_nodes, self.redundancy, node):
                out.append(b * self.num_subsets + self._subset_rank[s])
        return sorted(out)

    def files_per_node(self) -> int:
        """``b * C(K-1, r-1)``, the storage factor of the placement."""
        return self.batches_per_subset * binomial(
            self.num_nodes - 1, self.redundancy - 1
        )

    # -- data splitting -----------------------------------------------------------

    def place(self, batch: RecordBatch) -> List[FileAssignment]:
        """Split ``batch`` into ``N`` files and attach their subsets."""
        files = split_even(batch, self.num_files)
        return [
            FileAssignment(
                file_id=f,
                subset=self.subset_of_file(f),
                data=files[f],
            )
            for f in range(self.num_files)
        ]

    def split_source(self, source: DataSource) -> List[DataSource]:
        """Per-file descriptors in file-id order; pair with
        :meth:`subset_of_file` to build per-node descriptor maps."""
        return split_source_even(source, self.num_files)

    def node_storage_bytes(self, total_bytes: int) -> float:
        """Expected bytes stored per node: ``r / K`` of the input."""
        return total_bytes * self.redundancy / self.num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range({self.num_nodes})")
