"""Closed-form analysis: communication loads and run-time model.

Implements the paper's analytical results:

* Eq. (2) / Fig. 2 — the communication loads

  - uncoded with computation load ``r``:  ``L_uncoded(r) = 1 - r/K``
  - Coded MapReduce:                      ``L_CMR(r) = (1/r) (1 - r/K)``

  (``L`` is normalized by ``Q N`` intermediate values; for sorting it is the
  fraction of the dataset crossing the network);

* Eq. (3)-(4) — the execution-time model
  ``T_total,CMR ≈ r T_map + (1/r) T_shuffle + T_reduce``;

* Eq. (5) — the optimal redundancy
  ``r* = floor/ceil of sqrt(T_shuffle / T_map)`` and the resulting
  ``T* ≈ 2 sqrt(T_shuffle T_map) + T_reduce``;

* exact message/byte counts for both shuffles, used by the simulator and by
  the exact-load tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.subsets import binomial


def uncoded_comm_load(r: int, num_nodes: int) -> float:
    """``L_uncoded(r) = 1 - r/K`` (Eq. (2) context; r=1 is plain TeraSort).

    With each file mapped at ``r`` nodes, a ``r/K`` fraction of every
    partition is already local to its reducer, and the rest is unicast.
    """
    _check_rk(r, num_nodes)
    return 1.0 - r / num_nodes


def coded_comm_load(r: int, num_nodes: int) -> float:
    """``L_CMR(r) = (1/r) (1 - r/K)`` (Eq. (2)) — an exact ``r``-fold cut."""
    _check_rk(r, num_nodes)
    return (1.0 / r) * (1.0 - r / num_nodes)


def load_series(num_nodes: int) -> List[Tuple[int, float, float]]:
    """The Fig. 2 series: ``(r, L_uncoded(r), L_CMR(r))`` for r = 1..K."""
    return [
        (r, uncoded_comm_load(r, num_nodes), coded_comm_load(r, num_nodes))
        for r in range(1, num_nodes + 1)
    ]


@dataclass(frozen=True)
class TimeModel:
    """Measured (or assumed) uncoded stage times feeding Eq. (4)."""

    t_map: float
    t_shuffle: float
    t_reduce: float

    @property
    def total_uncoded(self) -> float:
        """Eq. (3): ``T_map + T_shuffle + T_reduce``."""
        return self.t_map + self.t_shuffle + self.t_reduce


def predicted_total_time(model: TimeModel, r: int, num_nodes: int) -> float:
    """Eq. (4): ``r T_map + (1/r) T_shuffle + T_reduce``.

    The paper's first-order model: Map inflates ``r``-fold, Shuffle deflates
    ``r``-fold, Reduce is unchanged; CodeGen and coding overheads are
    second-order terms handled by the simulator's cost model instead.
    """
    _check_rk(r, num_nodes)
    return r * model.t_map + model.t_shuffle / r + model.t_reduce


def optimal_r(model: TimeModel, num_nodes: int) -> int:
    """Eq. (5)'s ``r*``: the integer minimizer of Eq. (4) clamped to [1, K].

    Checks both ``floor`` and ``ceil`` of ``sqrt(T_shuffle / T_map)`` (the
    continuous optimum) and returns whichever gives the smaller predicted
    time, as the paper prescribes.
    """
    if model.t_map <= 0:
        return num_nodes
    cont = math.sqrt(model.t_shuffle / model.t_map)
    candidates = {
        max(1, min(num_nodes, int(math.floor(cont)))),
        max(1, min(num_nodes, int(math.ceil(cont)))),
    }
    return min(
        candidates, key=lambda r: predicted_total_time(model, r, num_nodes)
    )


def optimal_total_time(model: TimeModel) -> float:
    """Eq. (5): ``T* ≈ 2 sqrt(T_shuffle T_map) + T_reduce``."""
    return 2.0 * math.sqrt(model.t_shuffle * model.t_map) + model.t_reduce


def predicted_speedup(model: TimeModel, r: int, num_nodes: int) -> float:
    """Eq. (3) / Eq. (4) ratio: the speedup CMR promises at redundancy r."""
    return model.total_uncoded / predicted_total_time(model, r, num_nodes)


# -- exact shuffle accounting (drives the simulator and exact-load tests) ----


def uncoded_shuffle_messages(num_nodes: int) -> int:
    """TeraSort sends ``K (K-1)`` unicast intermediate values."""
    return num_nodes * (num_nodes - 1)


def uncoded_shuffle_bytes(total_bytes: int, num_nodes: int) -> float:
    """Expected unicast payload bytes: ``D (K-1)/K``.

    Each of the ``K`` files contributes ``1/K`` of its records to each of
    the other ``K-1`` partitions under a balanced partitioner.
    """
    return total_bytes * (num_nodes - 1) / num_nodes


def coded_multicast_count(r: int, num_nodes: int) -> int:
    """``C(K, r+1) (r+1)`` coded packets cross the network."""
    _check_rk(r, num_nodes)
    return binomial(num_nodes, r + 1) * (r + 1)


def coded_packet_bytes(total_bytes: int, r: int, num_nodes: int) -> float:
    """Expected payload of one coded packet: ``D / (N K r)``.

    A file holds ``D/N`` bytes (``N = C(K, r)``), its per-partition
    intermediate value ``D/(N K)``, and each packet carries one ``1/r``
    segment of such a value.
    """
    _check_rk(r, num_nodes)
    n_files = binomial(num_nodes, r)
    return total_bytes / (n_files * num_nodes * r)


def coded_shuffle_bytes(total_bytes: int, r: int, num_nodes: int) -> float:
    """Expected total multicast payload: ``D (K-r) / (K r)``.

    Equals ``coded_multicast_count * coded_packet_bytes`` and also
    ``L_CMR(r) * D``, the Eq. (2) load — the identity the exact-load tests
    verify against measured traffic.
    """
    return coded_multicast_count(r, num_nodes) * coded_packet_bytes(
        total_bytes, r, num_nodes
    )


def _check_rk(r: int, num_nodes: int) -> None:
    if num_nodes < 1:
        raise ValueError(f"K must be >= 1, got {num_nodes}")
    if not 1 <= r <= num_nodes:
        raise ValueError(f"r must be in [1, {num_nodes}], got {r}")
