"""Shared helpers for coded execution (used by CodedTeraSort and CMR).

The coding engine addresses intermediate values by *file subset*: with
``batches_per_subset > 1`` several physical files share a subset ``S``, and
their per-target intermediate values are concatenated (in ascending file id)
into the single logical ``I^t_S`` the XOR coding operates on — exactly the
batching construction of the general CMR scheme in [9].
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kvpairs.records import RecordBatch
from repro.utils.subsets import Subset


def group_store_by_subset(
    kept: Dict[int, Dict[int, RecordBatch]],
    subsets: Dict[int, Subset],
) -> Dict[Tuple[Subset, int], RecordBatch]:
    """Aggregate per-file map outputs into per-(subset, target) values.

    Args:
        kept: file id -> {target node -> retained intermediate batch}.
        subsets: file id -> subset of that file.

    Returns:
        ``(subset S, target t) -> I^t_S`` with batch files concatenated in
        ascending file id (both replicas of ``S`` concatenate in the same
        order on every node, which the XOR coding requires).
    """
    buckets: Dict[Tuple[Subset, int], List[Tuple[int, RecordBatch]]] = {}
    for file_id in sorted(kept):
        subset = subsets[file_id]
        for target, batch in kept[file_id].items():
            buckets.setdefault((subset, target), []).append((file_id, batch))
    out: Dict[Tuple[Subset, int], RecordBatch] = {}
    for key, entries in buckets.items():
        entries.sort(key=lambda e: e[0])
        out[key] = RecordBatch.concat([b for _, b in entries])
    return out
