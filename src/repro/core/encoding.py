"""Algorithm 1: encoding intermediate values into coded multicast packets.

Within a multicast group ``M`` (an ``(r+1)``-subset of nodes), every member
``k`` builds one coded packet

    ``E_{M,k} = XOR over t in M\\{k} of  I^t_{M\\{t}, k}``

where ``I^t_{M\\{t}}`` — the intermediate value of file ``F_{M\\{t}}``
destined to node ``t`` — is *evenly split into r segments*, one per node of
``M\\{t}``, and ``I^t_{M\\{t}, k}`` is the segment indexed by ``k``.  Before
XORing, segments are zero-padded to the longest one (paper's footnote 3).

Because receivers do not know the lengths of the intermediate values they are
missing, each packet carries a small header mapping every target node ``t``
to the true (unpadded) length of its constituent segment; the payload is the
XOR of the zero-padded segments.  This mirrors what a real implementation
must transmit and is counted in the measured communication load.

The encoder is payload-agnostic: it sees serialized intermediate values as
buffers through a ``lookup(subset, target) -> bytes-like`` callable, so the
same machinery serves CodedTeraSort (record batches) and generic Coded
MapReduce jobs (pickled values).

Zero-copy data plane: :func:`segment_of` returns memoryview slices of the
serialized values (no per-segment ``bytes``), :func:`encode_packet` XORs
them into a single arena — a staging-free vectorized ``np.bitwise_xor``
reduction in the uniform-length case TeraSort always hits — and the wire form
separates into ``to_parts()`` (header blob + payload view) so the runtime's
gather send ships the payload without ever joining it to the header.
Parsing (:meth:`CodedPacket.from_bytes`) reads the whole header with
one-shot ``np.frombuffer`` views and keeps the payload as a slice of the
receive buffer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils import copytrack
from repro.utils.subsets import Subset, without

#: Anything exporting the buffer protocol (serialized values, arena views).
BufferLike = Union[bytes, bytearray, memoryview]

#: lookup(subset S, target t) -> serialized I^t_S
IntermediateLookup = Callable[[Subset, int], BufferLike]

_PACKET_HEADER = struct.Struct("<4sHI")  # magic, group size, sender
_SEG_ENTRY = struct.Struct("<IQ")  # target node, true segment length
_MEMBER = struct.Struct("<I")
_PAYLOAD_LEN = struct.Struct("<Q")
PACKET_MAGIC = b"CTP1"

# One-shot NumPy mirrors of the struct formats (packed little-endian, so
# the itemsizes line up with the structs byte-for-byte).
_HEADER_DTYPE = np.dtype(
    [("magic", "S4"), ("gsize", "<u2"), ("sender", "<u4")]
)
_SEG_DTYPE = np.dtype([("target", "<u4"), ("length", "<u8")])
assert _HEADER_DTYPE.itemsize == _PACKET_HEADER.size
assert _SEG_DTYPE.itemsize == _SEG_ENTRY.size


class CodingError(ValueError):
    """Raised on malformed packets or inconsistent coding inputs."""


def segment_bounds(total_len: int, num_segments: int) -> List[Tuple[int, int]]:
    """Deterministic even split of ``total_len`` bytes into segments.

    The first ``total_len % num_segments`` segments get the extra byte, so
    all segments differ in size by at most one.  Returns ``(start, stop)``
    offsets in order.
    """
    if num_segments < 1:
        raise CodingError(f"num_segments must be >= 1, got {num_segments}")
    base, extra = divmod(total_len, num_segments)
    bounds = []
    pos = 0
    for i in range(num_segments):
        size = base + (1 if i < extra else 0)
        bounds.append((pos, pos + size))
        pos += size
    return bounds


def segment_of(data: BufferLike, owners: Subset, owner: int) -> memoryview:
    """The segment of ``data`` assigned to ``owner`` (a zero-copy view).

    ``owners`` (the file's node subset, ascending) indexes the ``r``
    segments in sorted-node order; both sender and receiver derive identical
    boundaries from ``len(data)`` alone.
    """
    if owner not in owners:
        raise CodingError(f"owner {owner} not in {owners}")
    view = memoryview(data)
    idx = owners.index(owner)
    start, stop = segment_bounds(len(view), len(owners))[idx]
    return view[start:stop]


def xor_into(acc: Union[bytearray, memoryview], data: BufferLike) -> None:
    """``acc ^= data`` with ``data`` zero-padded/truncated to ``len(acc)``.

    Vectorized in place through a single writable ``np.frombuffer`` view of
    ``acc``; zero-padding means bytes of ``acc`` beyond ``len(data)`` are
    left untouched.  ``acc`` must be a writable buffer (``bytearray`` or a
    writable memoryview, e.g. an arena slice).
    """
    n = min(len(acc), len(data))
    if n == 0:
        return
    a = np.frombuffer(acc, dtype=np.uint8, count=n)
    b = np.frombuffer(data, dtype=np.uint8, count=n)
    np.bitwise_xor(a, b, out=a)


@dataclass(frozen=True)
class CodedPacket:
    """One coded multicast packet ``E_{M, sender}``.

    Attributes:
        group: the multicast group ``M`` (sorted, size ``r+1``).
        sender: the encoding node ``k ∈ M``.
        seg_lengths: ``(target t, true length of I^t_{M\\{t}, sender})`` for
            every ``t ∈ M\\{sender}``, in ascending ``t``.
        payload: XOR of the zero-padded segments (length = max true
            length).  A bytes-like buffer; packets parsed with
            :meth:`from_bytes` keep it as a zero-copy view into the
            receive buffer.
    """

    group: Subset
    sender: int
    seg_lengths: Tuple[Tuple[int, int], ...]
    payload: BufferLike

    @property
    def header_bytes(self) -> int:
        """Serialized header overhead (counted in measured load)."""
        return (
            _PACKET_HEADER.size
            + _MEMBER.size * len(self.group)
            + _SEG_ENTRY.size * len(self.seg_lengths)
            + _PAYLOAD_LEN.size
        )

    def length_for(self, target: int) -> int:
        """True segment length for ``target``; raises if not addressed."""
        for t, length in self.seg_lengths:
            if t == target:
                return length
        raise CodingError(f"target {target} not addressed by this packet")

    # -- wire form -------------------------------------------------------------

    def _header_blob(self) -> bytes:
        """The full wire header as one owned buffer."""
        buf = bytearray(self.header_bytes)
        _PACKET_HEADER.pack_into(
            buf, 0, PACKET_MAGIC, len(self.group), self.sender
        )
        pos = _PACKET_HEADER.size
        members = np.frombuffer(
            buf, dtype="<u4", count=len(self.group), offset=pos
        )
        members[:] = self.group
        pos += _MEMBER.size * len(self.group)
        if self.seg_lengths:
            segs = np.frombuffer(
                buf, dtype=_SEG_DTYPE, count=len(self.seg_lengths), offset=pos
            )
            segs["target"] = [t for t, _ in self.seg_lengths]
            segs["length"] = [length for _, length in self.seg_lengths]
        pos += _SEG_ENTRY.size * len(self.seg_lengths)
        _PAYLOAD_LEN.pack_into(buf, pos, len(self.payload))
        return bytes(buf)

    def to_parts(self) -> List[BufferLike]:
        """Wire form as a ``[header, payload-view]`` gather list (zero-copy)."""
        return [self._header_blob(), memoryview(self.payload)]

    def to_bytes(self) -> bytes:
        """Wire form as one owned buffer (joins header and payload: one copy)."""
        copytrack.count_copy(len(self.payload), "encoding.packet_join")
        return b"".join(self.to_parts())

    @classmethod
    def from_bytes(cls, buf: BufferLike) -> "CodedPacket":
        """Parse a packet; the payload stays a zero-copy view of ``buf``.

        The header is read with one-shot ``np.frombuffer`` views (one per
        header section) instead of per-member ``struct.unpack_from`` loops.
        """
        view = memoryview(buf)
        if view.ndim != 1 or view.format not in ("B", "b", "c"):
            view = view.cast("B")
        if len(view) < _PACKET_HEADER.size:
            raise CodingError(
                f"truncated packet header: {len(view)} bytes"
            )
        head = np.frombuffer(view, dtype=_HEADER_DTYPE, count=1)[0]
        if head["magic"] != PACKET_MAGIC:
            raise CodingError(f"bad packet magic {bytes(head['magic'])!r}")
        gsize = int(head["gsize"])
        sender = int(head["sender"])
        if gsize < 1:
            raise CodingError(f"invalid group size {gsize}")
        pos = _PACKET_HEADER.size
        fixed = (
            pos
            + _MEMBER.size * gsize
            + _SEG_ENTRY.size * (gsize - 1)
            + _PAYLOAD_LEN.size
        )
        if len(view) < fixed:
            raise CodingError(
                f"truncated packet: need {fixed} header bytes, have {len(view)}"
            )
        members = np.frombuffer(view, dtype="<u4", count=gsize, offset=pos)
        group = tuple(int(m) for m in members)
        pos += _MEMBER.size * gsize
        segs = np.frombuffer(view, dtype=_SEG_DTYPE, count=gsize - 1, offset=pos)
        seg_lengths = tuple(
            (int(t), int(length))
            for t, length in zip(segs["target"], segs["length"])
        )
        pos += _SEG_ENTRY.size * (gsize - 1)
        (plen,) = np.frombuffer(view, dtype="<u8", count=1, offset=pos)
        pos += _PAYLOAD_LEN.size
        payload = view[pos : pos + int(plen)]
        if len(payload) != plen:
            raise CodingError(
                f"truncated payload: header says {plen}, got {len(payload)}"
            )
        return cls(
            group=group,
            sender=sender,
            seg_lengths=seg_lengths,
            payload=payload,
        )


def encode_packet(
    sender: int,
    group: Subset,
    lookup: IntermediateLookup,
    out: Optional[Union[bytearray, memoryview]] = None,
) -> CodedPacket:
    """Build ``E_{group, sender}`` per Algorithm 1.

    Args:
        sender: encoding node ``k``; must be in ``group``.
        group: multicast group ``M``, sorted ascending, ``|M| = r+1``.
        lookup: access to the sender's locally known intermediate values;
            called as ``lookup(M\\{t}, t)`` for every ``t ∈ M\\{sender}`` —
            all of which node ``k`` mapped (``k ∈ M\\{t}``) and retained
            (``t ∉ M\\{t}``).
        out: optional caller-provided arena the payload is XORed into (at
            least max-segment-length bytes).  The returned packet's payload
            *aliases* the arena — do not reuse it until the packet has been
            sent.  ``None`` allocates a fresh arena per packet.

    Returns:
        The coded packet with per-target true segment lengths; its payload
        is a view of the arena (no joining copy).
    """
    group = tuple(group)
    if sender not in group:
        raise CodingError(f"sender {sender} not in group {group}")
    if list(group) != sorted(set(group)):
        raise CodingError(f"group must be sorted and duplicate-free: {group}")
    targets = [t for t in group if t != sender]
    segments: List[Tuple[int, memoryview]] = []
    for t in targets:
        file_subset = without(group, t)  # F = M \ {t}; sender ∈ F
        value = lookup(file_subset, t)  # I^t_F, known at the sender
        segments.append((t, segment_of(value, file_subset, sender)))
    max_len = max((len(s) for _, s in segments), default=0)
    if out is None:
        arena = memoryview(bytearray(max_len))
    else:
        if len(out) < max_len:
            raise CodingError(
                f"arena too small: {len(out)} < max segment {max_len}"
            )
        arena = memoryview(out)[:max_len]
    if max_len:
        acc = np.frombuffer(arena, dtype=np.uint8)
        rows = [
            np.frombuffer(s, dtype=np.uint8)
            for _, s in segments
            if len(s) == max_len
        ]
        if len(rows) == len(segments):
            # Uniform segment lengths (the common TeraSort case): a
            # vectorized XOR reduction straight into the arena.  A 2-D
            # np.bitwise_xor.reduce over a stacked matrix would be
            # equivalent but has to stage a full (r, max_len) copy of
            # every segment first; this in-place chain reads each segment
            # exactly once and stages nothing.
            np.copyto(acc, rows[0])
            for row in rows[1:]:
                np.bitwise_xor(acc, row, out=acc)
        else:
            acc.fill(0)
            for _, seg in segments:
                xor_into(arena, seg)
    return CodedPacket(
        group=group,
        sender=sender,
        seg_lengths=tuple((t, len(seg)) for t, seg in segments),
        payload=arena,
    )
