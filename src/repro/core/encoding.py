"""Algorithm 1: encoding intermediate values into coded multicast packets.

Within a multicast group ``M`` (an ``(r+1)``-subset of nodes), every member
``k`` builds one coded packet

    ``E_{M,k} = XOR over t in M\\{k} of  I^t_{M\\{t}, k}``

where ``I^t_{M\\{t}}`` — the intermediate value of file ``F_{M\\{t}}``
destined to node ``t`` — is *evenly split into r segments*, one per node of
``M\\{t}``, and ``I^t_{M\\{t}, k}`` is the segment indexed by ``k``.  Before
XORing, segments are zero-padded to the longest one (paper's footnote 3).

Because receivers do not know the lengths of the intermediate values they are
missing, each packet carries a small header mapping every target node ``t``
to the true (unpadded) length of its constituent segment; the payload is the
XOR of the zero-padded segments.  This mirrors what a real implementation
must transmit and is counted in the measured communication load.

The encoder is payload-agnostic: it sees serialized intermediate values as
``bytes`` through a ``lookup(subset, target) -> bytes`` callable, so the same
machinery serves CodedTeraSort (record batches) and generic Coded MapReduce
jobs (pickled values).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.subsets import Subset, without

#: lookup(subset S, target t) -> serialized I^t_S
IntermediateLookup = Callable[[Subset, int], bytes]

_PACKET_HEADER = struct.Struct("<4sHI")  # magic, group size, sender
_SEG_ENTRY = struct.Struct("<IQ")  # target node, true segment length
_MEMBER = struct.Struct("<I")
_PAYLOAD_LEN = struct.Struct("<Q")
PACKET_MAGIC = b"CTP1"


class CodingError(ValueError):
    """Raised on malformed packets or inconsistent coding inputs."""


def segment_bounds(total_len: int, num_segments: int) -> List[Tuple[int, int]]:
    """Deterministic even split of ``total_len`` bytes into segments.

    The first ``total_len % num_segments`` segments get the extra byte, so
    all segments differ in size by at most one.  Returns ``(start, stop)``
    offsets in order.
    """
    if num_segments < 1:
        raise CodingError(f"num_segments must be >= 1, got {num_segments}")
    base, extra = divmod(total_len, num_segments)
    bounds = []
    pos = 0
    for i in range(num_segments):
        size = base + (1 if i < extra else 0)
        bounds.append((pos, pos + size))
        pos += size
    return bounds


def segment_of(data: bytes, owners: Subset, owner: int) -> bytes:
    """The segment of ``data`` assigned to ``owner``.

    ``owners`` (the file's node subset, ascending) indexes the ``r``
    segments in sorted-node order; both sender and receiver derive identical
    boundaries from ``len(data)`` alone.
    """
    if owner not in owners:
        raise CodingError(f"owner {owner} not in {owners}")
    idx = owners.index(owner)
    start, stop = segment_bounds(len(data), len(owners))[idx]
    return data[start:stop]


def xor_into(acc: bytearray, data: bytes) -> None:
    """``acc ^= data`` with ``data`` zero-padded/truncated to ``len(acc)``.

    Vectorized through NumPy; zero-padding means bytes of ``acc`` beyond
    ``len(data)`` are left untouched.
    """
    n = min(len(acc), len(data))
    if n == 0:
        return
    a = np.frombuffer(acc, dtype=np.uint8, count=n)
    b = np.frombuffer(data, dtype=np.uint8, count=n)
    np.bitwise_xor(a, b, out=np.frombuffer(memoryview(acc)[:n], dtype=np.uint8))


@dataclass(frozen=True)
class CodedPacket:
    """One coded multicast packet ``E_{M, sender}``.

    Attributes:
        group: the multicast group ``M`` (sorted, size ``r+1``).
        sender: the encoding node ``k ∈ M``.
        seg_lengths: ``(target t, true length of I^t_{M\\{t}, sender})`` for
            every ``t ∈ M\\{sender}``, in ascending ``t``.
        payload: XOR of the zero-padded segments (length = max true length).
    """

    group: Subset
    sender: int
    seg_lengths: Tuple[Tuple[int, int], ...]
    payload: bytes

    @property
    def header_bytes(self) -> int:
        """Serialized header overhead (counted in measured load)."""
        return (
            _PACKET_HEADER.size
            + _MEMBER.size * len(self.group)
            + _SEG_ENTRY.size * len(self.seg_lengths)
            + _PAYLOAD_LEN.size
        )

    def length_for(self, target: int) -> int:
        """True segment length for ``target``; raises if not addressed."""
        for t, length in self.seg_lengths:
            if t == target:
                return length
        raise CodingError(f"target {target} not addressed by this packet")

    # -- wire form -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        parts = [_PACKET_HEADER.pack(PACKET_MAGIC, len(self.group), self.sender)]
        for m in self.group:
            parts.append(_MEMBER.pack(m))
        for t, length in self.seg_lengths:
            parts.append(_SEG_ENTRY.pack(t, length))
        parts.append(_PAYLOAD_LEN.pack(len(self.payload)))
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buf: bytes) -> "CodedPacket":
        try:
            magic, gsize, sender = _PACKET_HEADER.unpack_from(buf, 0)
        except struct.error as exc:
            raise CodingError(f"truncated packet header: {exc}") from exc
        if magic != PACKET_MAGIC:
            raise CodingError(f"bad packet magic {magic!r}")
        pos = _PACKET_HEADER.size
        group = []
        for _ in range(gsize):
            (m,) = _MEMBER.unpack_from(buf, pos)
            group.append(m)
            pos += _MEMBER.size
        seg_lengths = []
        for _ in range(gsize - 1):
            t, length = _SEG_ENTRY.unpack_from(buf, pos)
            seg_lengths.append((t, length))
            pos += _SEG_ENTRY.size
        (plen,) = _PAYLOAD_LEN.unpack_from(buf, pos)
        pos += _PAYLOAD_LEN.size
        payload = bytes(buf[pos : pos + plen])
        if len(payload) != plen:
            raise CodingError(
                f"truncated payload: header says {plen}, got {len(payload)}"
            )
        return cls(
            group=tuple(group),
            sender=sender,
            seg_lengths=tuple(seg_lengths),
            payload=payload,
        )


def encode_packet(
    sender: int, group: Subset, lookup: IntermediateLookup
) -> CodedPacket:
    """Build ``E_{group, sender}`` per Algorithm 1.

    Args:
        sender: encoding node ``k``; must be in ``group``.
        group: multicast group ``M``, sorted ascending, ``|M| = r+1``.
        lookup: access to the sender's locally known intermediate values;
            called as ``lookup(M\\{t}, t)`` for every ``t ∈ M\\{sender}`` —
            all of which node ``k`` mapped (``k ∈ M\\{t}``) and retained
            (``t ∉ M\\{t}``).

    Returns:
        The coded packet with per-target true segment lengths.
    """
    group = tuple(group)
    if sender not in group:
        raise CodingError(f"sender {sender} not in group {group}")
    if list(group) != sorted(set(group)):
        raise CodingError(f"group must be sorted and duplicate-free: {group}")
    targets = [t for t in group if t != sender]
    segments: List[Tuple[int, bytes]] = []
    for t in targets:
        file_subset = without(group, t)  # F = M \ {t}; sender ∈ F
        value = lookup(file_subset, t)  # I^t_F, known at the sender
        segments.append((t, segment_of(value, file_subset, sender)))
    max_len = max((len(s) for _, s in segments), default=0)
    acc = bytearray(max_len)
    for _, seg in segments:
        xor_into(acc, seg)
    return CodedPacket(
        group=group,
        sender=sender,
        seg_lengths=tuple((t, len(seg)) for t, seg in segments),
        payload=bytes(acc),
    )
