"""TeraSort: the uncoded baseline (§III).

Five stages per node, exactly as the paper's implementation (§V-A):

1. **Map** — hash the node's single input file into ``K`` per-partition
   intermediate values;
2. **Pack** — serialize each intermediate value into one contiguous buffer
   so a single flow carries it;
3. **Shuffle** — serial unicast (Fig. 9(a)): senders take turns in rank
   order; during node ``j``'s turn it unicasts ``I^k_{j}`` to every other
   node ``k`` back-to-back;
4. **Unpack** — deserialize the ``K-1`` received buffers;
5. **Reduce** — locally sort partition ``P_k``.

The program runs on any :class:`~repro.runtime.api.Comm` backend.
:func:`prepare_terasort` compiles one sort into a pool-runnable
:class:`~repro.runtime.program.PreparedJob` (placement, the shared
partitioner, result assembly); the declarative driver API is
:class:`repro.session.TeraSortSpec` submitted to a
:class:`repro.session.Session`, and :func:`run_terasort` is its one-shot
shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.mapper import hash_file
from repro.core.partitioner import RangePartitioner
from repro.core.placement import UncodedPlacement
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.serialization import pack_batch_parts, unpack_batch
from repro.kvpairs.sorting import sort_batch
from repro.runtime.api import Comm
from repro.runtime.program import ClusterResult, NodeProgram, PreparedJob
from repro.utils.timer import StageTimes

from repro.runtime.traffic import TrafficLog

#: User tag carrying shuffled intermediate values.
SHUFFLE_TAG = 1000

STAGES_TERASORT = ["map", "pack", "shuffle", "unpack", "reduce"]


class TeraSortProgram(NodeProgram):
    """Per-node TeraSort execution.

    Args:
        comm: communication endpoint.
        file_data: this node's input file ``F_{k}``.
        partitioner: the shared ``K``-way range partitioner.
    """

    STAGES = STAGES_TERASORT

    def __init__(
        self,
        comm: Comm,
        file_data: RecordBatch,
        partitioner: RangePartitioner,
    ) -> None:
        super().__init__(comm)
        self.file_data = file_data
        self.partitioner = partitioner

    def run(self) -> RecordBatch:
        k = self.size
        rank = self.rank

        with self.stage("map"):
            parts = hash_file(self.file_data, self.partitioner)

        with self.stage("pack"):
            # Gather lists [frame header, records-view]: the mapper's
            # partition bytes are never copied between Map and the socket.
            outgoing = {
                dst: pack_batch_parts(parts[dst], tag=rank)
                for dst in range(k)
                if dst != rank
            }
            own = parts[rank]

        with self.stage("shuffle"):
            received: Dict[int, bytes] = {}
            # Fig. 9(a): one sender at a time, in rank order.
            for sender in range(k):
                if sender == rank:
                    for dst in range(k):
                        if dst != rank:
                            self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
                else:
                    received[sender] = self.comm.recv(
                        sender, SHUFFLE_TAG, copy=False
                    )

        with self.stage("unpack"):
            incoming: List[RecordBatch] = []
            for sender in sorted(received):
                tag, batch = unpack_batch(received[sender], copy=False)
                if tag != sender:
                    raise RuntimeError(
                        f"shuffle frame tag {tag} does not match sender {sender}"
                    )
                incoming.append(batch)

        with self.stage("reduce"):
            result = sort_batch(RecordBatch.concat([own] + incoming))
        return result


@dataclass
class SortRun:
    """Result of a full distributed sort run.

    Attributes:
        partitions: per-rank sorted output partitions (ascending key ranges).
        stage_times: merged per-stage breakdown (max over nodes).
        traffic: the run's traffic log (None if backend doesn't collect one).
        partitioner: the partitioner used (for validation / inspection).
        meta: algorithm-specific extras (e.g. coding plan statistics).
    """

    partitions: List[RecordBatch]
    stage_times: StageTimes
    traffic: Optional[TrafficLog]
    partitioner: RangePartitioner
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)


def _terasort_program(
    comm: Comm, payload: Tuple[RecordBatch, RangePartitioner]
) -> TeraSortProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    file_data, partitioner = payload
    return TeraSortProgram(comm, file_data, partitioner)


def prepare_terasort(
    size: int,
    data: RecordBatch,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> PreparedJob:
    """Compile one TeraSort over ``size`` nodes into a pool-runnable job.

    Builds the shared range partitioner and the uncoded placement once on
    the coordinator; each rank's payload is its single input file plus the
    partitioner.  ``finalize`` assembles the pool's
    :class:`~repro.runtime.program.ClusterResult` into a :class:`SortRun`.
    """
    partitioner = _build_partitioner(
        data, size, sampled_partitioner, sample_size, sample_seed
    )
    files = UncodedPlacement(size).place(data)
    payloads: List[Any] = [
        (files[rank].data, partitioner) for rank in range(size)
    ]
    input_records = len(data)

    def finalize(result: ClusterResult) -> SortRun:
        return SortRun(
            partitions=list(result.results),
            stage_times=result.stage_times,
            traffic=result.traffic,
            partitioner=partitioner,
            meta={
                "algorithm": "terasort",
                "num_nodes": size,
                "input_records": input_records,
            },
        )

    return PreparedJob(
        builder=_terasort_program, payloads=payloads, finalize=finalize
    )


def run_terasort(
    cluster,
    data: RecordBatch,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> SortRun:
    """Sort ``data`` with TeraSort on ``cluster`` (one-shot session shim).

    Equivalent to submitting a :class:`repro.session.TeraSortSpec` to a
    fresh one-job :class:`repro.session.Session`; amortize the cluster
    setup across many sorts by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        data: the full input batch (the coordinator's view).
        sampled_partitioner: use sampled quantile splitters instead of the
            uniform ones (needed for skewed keys).
        sample_size: number of records sampled for the splitter.
        sample_seed: RNG seed for the sample.

    Returns:
        A :class:`SortRun`; ``partitions[k]`` is node ``k``'s sorted output.
    """
    from repro.session import Session, TeraSortSpec

    with Session(cluster) as session:
        return session.submit(
            TeraSortSpec(
                data=data,
                sampled_partitioner=sampled_partitioner,
                sample_size=sample_size,
                sample_seed=sample_seed,
            )
        ).result()


def _build_partitioner(
    data: RecordBatch,
    k: int,
    sampled: bool,
    sample_size: int,
    sample_seed: int,
) -> RangePartitioner:
    """Coordinator-side partitioner construction shared by both drivers."""
    if not sampled:
        return RangePartitioner.uniform(k)
    import numpy as np

    rng = np.random.default_rng(sample_seed)
    n = len(data)
    take = min(sample_size, n)
    if take == 0:
        return RangePartitioner.uniform(k)
    idx = rng.choice(n, size=take, replace=False)
    return RangePartitioner.from_sample(data.take(idx), k)
