"""TeraSort: the uncoded baseline (§III).

Five stages per node, exactly as the paper's implementation (§V-A):

1. **Map** — hash the node's single input file into ``K`` per-partition
   intermediate values;
2. **Pack** — serialize each intermediate value into one contiguous buffer
   so a single flow carries it;
3. **Shuffle** — serial unicast (Fig. 9(a)): senders take turns in rank
   order; during node ``j``'s turn it unicasts ``I^k_{j}`` to every other
   node ``k`` back-to-back;
4. **Unpack** — deserialize the ``K-1`` received buffers;
5. **Reduce** — locally sort partition ``P_k``.

The program runs on any :class:`~repro.runtime.api.Comm` backend.
:func:`prepare_terasort` compiles one sort into a pool-runnable
:class:`~repro.runtime.program.PreparedJob` (placement, the shared
partitioner, result assembly); the declarative driver API is
:class:`repro.session.TeraSortSpec` submitted to a
:class:`repro.session.Session`, and :func:`run_terasort` is its one-shot
shim.

Out-of-core execution: inputs are
:class:`~repro.kvpairs.datasource.DataSource` descriptors (each rank
materializes or streams its split locally — the control plane never
carries record bytes for file/teragen sources), and with a
``memory_budget`` the node program switches from materialize-everything
to the bounded-memory pipeline: chunked Map (windows hashed and spilled
as sorted per-partition runs), a shuffle that ships runs as mmap views
and spills what it receives, and a streaming Reduce (external k-way merge
instead of one in-RAM sort).  Output is byte-identical to the in-memory
path — the merge's run ordering reproduces the stable sort exactly.

The compute hot path (Map's partition pass, Reduce's k-way merge) runs
on the kernels of :mod:`repro.kvpairs.kernels` — MSB radix partition
and the offset-value-coded merge (spilled runs carry persisted ``.ovc``
code sidecars) — with ``REPRO_KERNELS=classic`` selecting the plain
``searchsorted`` implementations; both are byte-identical.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.mapper import hash_file
from repro.core.outofcore import (
    OutOfCorePlan,
    PartitionSpiller,
    emit_output,
    export_residency,
    keep_or_spill,
    residency_meta,
)
from repro.core.partitioner import RangePartitioner
from repro.core.placement import UncodedPlacement
from repro.kvpairs.datasource import DataSource, FileSource, InlineSource, as_source
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.serialization import (
    pack_batch_parts,
    pack_batches_parts,
    unpack_batch,
    unpack_batches,
)
from repro.kvpairs import kernels
from repro.kvpairs.sorting import sort_batch
from repro.kvpairs.spill import (
    IncrementalMerger,
    Run,
    SpillDir,
    merge_runs,
)
from repro.runtime.api import Comm
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    PreparedJob,
    export_overlap,
    overlap_meta,
)
from repro.utils.residency import ResidencyMeter
from repro.utils.timer import StageTimes

from repro.runtime.traffic import TrafficLog

#: User tag carrying shuffled intermediate values.
SHUFFLE_TAG = 1000

#: Backup -> straggler: "my copy of your map shard is complete" (empty
#: payload).  A straggler only abandons its own map after this arrives,
#: which guarantees the backup's copy exists before anyone is redirected.
SPEC_READY_TAG = 1100
#: ``SPEC_DATA_TAG + shard``: the backup ships that shard's partition.
SPEC_DATA_TAG = 1200

#: Bounds on the per-window record count in speculative mode.  The map
#: runs windowed so abandon-polls (and injected-slowdown pacing) happen
#: at window boundaries: ~SPEC_WINDOWS_PER_SHARD windows per shard,
#: clamped so tiny shards still poll and huge ones don't poll too often.
SPEC_MAP_WINDOW = 32768
SPEC_MIN_WINDOW = 512
SPEC_WINDOWS_PER_SHARD = 32


def _spec_window(num_records: int) -> int:
    """Map-window size giving ~SPEC_WINDOWS_PER_SHARD polls per shard."""
    per = -(-num_records // SPEC_WINDOWS_PER_SHARD)
    return max(SPEC_MIN_WINDOW, min(SPEC_MAP_WINDOW, per))

#: First byte of a speculative primary shuffle frame.
_FRAME_DATA = 1  # packed partition bytes follow
_FRAME_YIELD = 0  # uint32 backup rank follows: fetch the shard from there

#: First byte of a streaming-overlap shuffle frame (same marker protocol,
#: different meaning: many frames per channel instead of one).
_FRAME_CHUNK = 1  # one map window's packed partition chunk follows
_FRAME_END = 0  # sender's map is complete; no more chunks on this channel

STAGES_TERASORT = ["map", "pack", "shuffle", "unpack", "reduce"]


class TeraSortProgram(NodeProgram):
    """Per-node TeraSort execution.

    Args:
        comm: communication endpoint.
        file_data: this node's input file ``F_{k}`` — a resident
            :class:`~repro.kvpairs.records.RecordBatch` or a
            :class:`~repro.kvpairs.datasource.DataSource` descriptor the
            node materializes/streams locally.
        partitioner: the shared ``K``-way range partitioner.
        memory_budget: cap (bytes) on resident record buffers; ``None``
            runs the seed in-memory path, a value runs the out-of-core
            pipeline (byte-identical output).
        output_dir: with a budget, stream the sorted partition to
            ``<output_dir>/part-<rank>`` and return a ``FileSource``
            instead of materializing it.
        spec_splits: all ranks' shard descriptors — enables speculative
            map re-execution (any rank can re-map a straggler's shard).
            Requires a live pool backend (a driver control channel);
            without one the program degrades to the plain path.
        overlap: streaming-overlap execution — ship each map window's
            partition chunks as they complete and merge arriving chunks
            incrementally (byte-identical to the serial schedule).
    """

    STAGES = STAGES_TERASORT

    def __init__(
        self,
        comm: Comm,
        file_data: Union[RecordBatch, DataSource],
        partitioner: RangePartitioner,
        memory_budget: Optional[int] = None,
        output_dir: Optional[str] = None,
        spec_splits: Optional[List[DataSource]] = None,
        overlap: bool = False,
    ) -> None:
        super().__init__(comm)
        self.source = as_source(file_data)
        self.partitioner = partitioner
        self.memory_budget = memory_budget
        self.output_dir = output_dir
        self.spec_splits = spec_splits
        self.overlap = overlap
        #: Residency accounting for the out-of-core path (None otherwise).
        self.meter: Optional[ResidencyMeter] = None

    def run(self) -> Union[RecordBatch, FileSource]:
        before_ks = kernels.stats.snapshot()
        try:
            return self._execute()
        finally:
            kernels.export_stats(self.stopwatch, before_ks)

    def _execute(self) -> Union[RecordBatch, FileSource]:
        if self.memory_budget is not None:
            return self._run_out_of_core()
        if self.overlap:
            return self._run_overlap()
        if self.spec_splits is not None and self.comm.job_control is not None:
            return self._run_speculative()
        k = self.size
        rank = self.rank

        with self.stage("map"):
            parts = hash_file(self.source.load(), self.partitioner)

        with self.stage("pack"):
            # Gather lists [frame header, records-view]: the mapper's
            # partition bytes are never copied between Map and the socket.
            outgoing = {
                dst: pack_batch_parts(parts[dst], tag=rank)
                for dst in range(k)
                if dst != rank
            }
            own = parts[rank]

        with self.stage("shuffle"):
            received: Dict[int, bytes] = {}
            # Fig. 9(a): one sender at a time, in rank order.
            for sender in range(k):
                if sender == rank:
                    for dst in range(k):
                        if dst != rank:
                            self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
                else:
                    received[sender] = self.comm.recv(
                        sender, SHUFFLE_TAG, copy=False
                    )

        with self.stage("unpack"):
            incoming: List[RecordBatch] = []
            for sender in sorted(received):
                tag, batch = unpack_batch(received[sender], copy=False)
                if tag != sender:
                    raise RuntimeError(
                        f"shuffle frame tag {tag} does not match sender {sender}"
                    )
                incoming.append(batch)

        with self.stage("reduce"):
            result = sort_batch(RecordBatch.concat([own] + incoming))
        return result

    # -- streaming overlap ---------------------------------------------------

    def _run_overlap(self) -> RecordBatch:
        """In-memory TeraSort with map↔shuffle↔reduce streaming overlap.

        One single-threaded event loop: each map window's partition
        chunks are posted as non-blocking sends the moment the window
        completes, and arriving chunks are sorted and fed into the
        incremental merge frontier between windows — so communication
        rides behind map compute on the send side and behind merge
        compute on the receive side, and the final merge only has the
        leftovers.  Byte-identity with the plain path: one stable argsort
        per window makes the windowed map equal the whole-shard map per
        partition (the speculation path's invariant), and the stable
        merge over [own windows, then each sender's windows in rank
        order] reproduces the plain path's stable
        ``sort_batch(concat([own] + incoming))`` exactly.
        """
        k = self.size
        rank = self.rank
        comm = self.comm
        senders = [s for s in range(k) if s != rank]
        slot_of = {s: 1 + i for i, s in enumerate(senders)}
        merger = IncrementalMerger(k)
        send_reqs: List[Tuple[Any, Any]] = []
        end_frame = bytes([_FRAME_END])

        with self.stage("shuffle") as scope:
            recvs = {
                s: comm.irecv(s, SHUFFLE_TAG, copy=False) for s in senders
            }

            def poll_arrivals() -> bool:
                progressed = False
                for s in list(recvs):
                    req = recvs[s]
                    if not req.test():
                        continue
                    payload = req.wait()
                    progressed = True
                    if payload[0] == _FRAME_END:
                        del recvs[s]
                        continue
                    with self.stage("unpack"):
                        tag, batch = unpack_batch(
                            memoryview(payload)[1:], copy=False
                        )
                        if tag != s:
                            raise RuntimeError(
                                f"overlap chunk tag {tag} does not match "
                                f"sender {s}"
                            )
                    with self.stage("reduce"):
                        # sort_batch copies out of the receive arena, so
                        # the payload view is not retained past the call.
                        merger.feed(slot_of[s], sort_batch(batch))
                    recvs[s] = comm.irecv(s, SHUFFLE_TAG, copy=False)
                # Drop completed sends (their frame buffers with them).
                send_reqs[:] = [
                    pair for pair in send_reqs if not pair[0].test()
                ]
                return progressed

            window_records = _spec_window(self.source.num_records)
            for window in self.source.iter_batches(window_records):
                with self.stage("map"):
                    wparts = hash_file(window, self.partitioner)
                with self.stage("pack"):
                    frames = {
                        dst: [bytes([_FRAME_CHUNK]),
                              *pack_batch_parts(wparts[dst], tag=rank)]
                        for dst in senders
                        if len(wparts[dst])
                    }
                for dst, frame in frames.items():
                    send_reqs.append(
                        (comm.isend(dst, SHUFFLE_TAG, frame), frame)
                    )
                with self.stage("reduce"):
                    merger.feed(0, sort_batch(wparts[rank]))
                self.fault_checkpoint()
                poll_arrivals()
            for dst in senders:
                send_reqs.append(
                    (comm.isend(dst, SHUFFLE_TAG, end_frame), end_frame)
                )
            while recvs or send_reqs:
                if not poll_arrivals():
                    time.sleep(0.0005)
        export_overlap(self, scope)

        with self.stage("reduce"):
            chunks = list(merger.finish())
            return (
                RecordBatch.concat(chunks) if chunks else RecordBatch.empty()
            )

    # -- speculative map re-execution ---------------------------------------

    def _run_speculative(self) -> RecordBatch:
        """In-memory TeraSort with driver-directed speculative execution.

        Map runs windowed so a rank can abandon its shard the moment a
        backup copy (launched by the driver on an already-finished
        worker) signals completion.  The shuffle becomes an event loop:
        every rank sends its frames up front, each either a *data* frame
        (marker byte + packed partition) or a *yield* frame naming the
        backup rank to fetch that shard's partition from instead.  A
        shard's partitions are a deterministic function of its
        descriptor, so whichever copy wins the race the output is
        byte-identical to the plain path.
        """
        k = self.size
        rank = self.rank

        with self.stage("map"):
            map_t0 = time.perf_counter()
            parts, my_backup = self._speculative_map()
            if parts is None:
                # Pseudo-stage (not in STAGES): flags the abandoned map
                # and its sunk time in this node's raw stage dict.
                self.stopwatch.add(
                    "spec_map_abandoned", time.perf_counter() - map_t0
                )

        with self.stage("pack"):
            if parts is not None:
                outgoing: Dict[int, Any] = {
                    dst: [bytes([_FRAME_DATA]),
                          *pack_batch_parts(parts[dst], tag=rank)]
                    for dst in range(k)
                    if dst != rank
                }
                own: Optional[RecordBatch] = parts[rank]
            else:
                redirect = bytes([_FRAME_YIELD]) + struct.pack(
                    "<I", my_backup
                )
                outgoing = {dst: redirect for dst in range(k) if dst != rank}
                own = None

        with self.stage("shuffle"):
            for dst in range(k):
                if dst != rank:
                    self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
            raw_frames, local_batches, own_raw = (
                self._speculative_shuffle_loop(my_backup if own is None else None)
            )

        with self.stage("unpack"):
            if own is None:
                tag, own = unpack_batch(own_raw, copy=False)
                if tag != rank:
                    raise RuntimeError(
                        f"backup frame tag {tag} does not match shard {rank}"
                    )
            incoming: List[RecordBatch] = []
            for sender in range(k):
                if sender == rank:
                    continue
                if sender in local_batches:
                    incoming.append(local_batches[sender])
                    continue
                tag, batch = unpack_batch(raw_frames[sender], copy=False)
                if tag != sender:
                    raise RuntimeError(
                        f"shuffle frame tag {tag} does not match "
                        f"shard {sender}"
                    )
                incoming.append(batch)

        with self.stage("reduce"):
            result = sort_batch(RecordBatch.concat([own] + incoming))
        return result

    def _speculative_map(
        self,
    ) -> Tuple[Optional[List[RecordBatch]], Optional[int]]:
        """Windowed map, preemptible by a backup's READY signal.

        Returns ``(parts, backup)``: the ``K`` partitions, or ``None``
        if this rank abandoned its shard because the backup's copy
        finished first; ``backup`` is the rank holding that copy
        (``None`` when no backup was ever assigned).
        """
        k = self.size
        control = self.comm.job_control
        acc: List[List[RecordBatch]] = [[] for _ in range(k)]
        backup: Optional[int] = None
        ready_req = None

        def backup_finished() -> bool:
            nonlocal backup, ready_req
            if backup is None:
                backup = control.backup_for(self.rank)
                if backup is not None:
                    ready_req = self.comm.irecv(backup, SPEC_READY_TAG)
            return ready_req is not None and ready_req.test()

        window_records = _spec_window(self.source.num_records)
        for window in self.source.iter_batches(window_records):
            wparts = hash_file(window, self.partitioner)
            for dst in range(k):
                acc[dst].append(wparts[dst])
            if self.fault_checkpoint(backup_finished) or backup_finished():
                return None, backup
        if backup_finished():
            # The backup beat us even to the finish line: still yield,
            # so exactly one copy of the shard enters the shuffle.
            return None, backup
        return [RecordBatch.concat(pieces) for pieces in acc], backup

    def _speculative_shuffle_loop(
        self, fetch_own_from: Optional[int]
    ) -> Tuple[Dict[int, Any], Dict[int, RecordBatch], Optional[Any]]:
        """Collect one partition frame per shard, re-routing yielded ones.

        Runs inside the ``shuffle`` stage after this rank's own frames
        went out.  Also services this rank's backup duty: when the
        driver names this rank as backup for a straggling shard, the
        duty map runs synchronously here (all receives are polled, so
        nothing blocks on this rank meanwhile).

        Args:
            fetch_own_from: set when this rank abandoned its own map —
                the backup rank shipping our partition of our shard.

        Returns:
            ``(raw_frames, local_batches, own_raw)``: packed-partition
            frames by shard, partitions kept locally from backup duty,
            and the raw frame holding our own partition (``None`` unless
            ``fetch_own_from``).
        """
        k = self.size
        rank = self.rank
        comm = self.comm
        control = comm.job_control

        primary = {
            s: comm.irecv(s, SHUFFLE_TAG, copy=False)
            for s in range(k)
            if s != rank
        }
        pending = set(primary)
        spec_reqs: Dict[int, Any] = {}
        raw_frames: Dict[int, Any] = {}
        local_batches: Dict[int, RecordBatch] = {}
        duty_parts: Dict[int, Optional[List[RecordBatch]]] = {}
        own_req = None
        own_raw: Optional[Any] = None
        if fetch_own_from is not None:
            own_req = comm.irecv(
                fetch_own_from, SPEC_DATA_TAG + rank, copy=False
            )

        while pending or spec_reqs or own_req is not None:
            progressed = False

            duty = control.backup_duty(rank)
            if duty is not None and duty != rank and duty not in duty_parts:
                if duty in pending:
                    duty_parts[duty] = self._run_backup_duty(
                        duty, primary[duty]
                    )
                else:
                    duty_parts[duty] = None  # shard already delivered
                progressed = True

            for s in list(pending):
                if not primary[s].test():
                    continue
                payload = primary[s].wait()
                pending.discard(s)
                progressed = True
                if payload[0] == _FRAME_DATA:
                    raw_frames[s] = memoryview(payload)[1:]
                    continue
                (backup,) = struct.unpack_from("<I", payload, 1)
                if backup != rank:
                    spec_reqs[s] = comm.irecv(
                        backup, SPEC_DATA_TAG + s, copy=False
                    )
                    continue
                # We are the backup: a straggler yields only after our
                # READY, so the duty copy is guaranteed complete — ship
                # it to everyone else, keep our own partition locally.
                parts = duty_parts.get(s)
                if parts is None:
                    raise RuntimeError(
                        f"shard {s} yielded to rank {rank} before its "
                        f"backup copy completed"
                    )
                for dst in range(k):
                    if dst != rank:
                        comm.send(
                            dst,
                            SPEC_DATA_TAG + s,
                            pack_batch_parts(parts[dst], tag=s),
                        )
                local_batches[s] = parts[rank]

            for s in list(spec_reqs):
                if spec_reqs[s].test():
                    raw_frames[s] = spec_reqs.pop(s).wait()
                    progressed = True

            if own_req is not None and own_req.test():
                own_raw = own_req.wait()
                own_req = None
                progressed = True

            if not progressed:
                time.sleep(0.0005)

        return raw_frames, local_batches, own_raw

    def _run_backup_duty(
        self, shard: int, straggler_req: Any
    ) -> Optional[List[RecordBatch]]:
        """Map the straggler's shard; abort if its own frame lands first.

        Returns the shard's ``K`` partitions, or ``None`` when the
        straggler finished while we were still duplicating (its primary
        frame then carries the real bytes).  On completion, READY is
        signalled to the straggler — its next window-boundary poll will
        make it yield, and the resolution (its primary frame's marker)
        tells us whether to ship the duty copy or discard it.
        """
        assert self.spec_splits is not None
        t0 = time.perf_counter()
        k = self.size
        split = self.spec_splits[shard]
        acc: List[List[RecordBatch]] = [[] for _ in range(k)]
        for window in split.iter_batches(_spec_window(split.num_records)):
            if straggler_req.test():
                return None
            wparts = hash_file(window, self.partitioner)
            for dst in range(k):
                acc[dst].append(wparts[dst])
            if self.fault_checkpoint(straggler_req.test):
                return None
        if straggler_req.test():
            return None
        parts = [RecordBatch.concat(pieces) for pieces in acc]
        self.comm.send(shard, SPEC_READY_TAG, b"")
        # Pseudo-stage: duty time, visible in this node's raw stage dict.
        self.stopwatch.add("spec_backup", time.perf_counter() - t0)
        return parts

    # -- bounded-memory pipeline --------------------------------------------

    def _run_out_of_core(self) -> Union[RecordBatch, FileSource]:
        """Chunked Map, run-streaming shuffle, external-merge Reduce.

        Byte-identity with :meth:`run`'s in-memory path rests on one
        invariant, maintained at every step: each per-destination stream
        travels as stably-sorted chunks *in stream order*, and every merge
        breaks ties toward the earlier run — which reproduces exactly the
        stable ``sort_batch(concat([own] + incoming))`` of the seed path.
        """
        if self.overlap:
            return self._run_out_of_core_overlap()
        k = self.size
        rank = self.rank
        assert self.memory_budget is not None
        plan = OutOfCorePlan.for_budget(self.memory_budget)
        meter = self.meter = ResidencyMeter()
        spill = SpillDir(tag=f"ts-r{rank}")
        try:
            with self.stage("map"):
                spiller = PartitionSpiller(
                    k, spill, plan.flush_bytes, meter
                )
                for window in self.source.iter_batches(
                    plan.input_window_records
                ):
                    meter.charge(window.nbytes, "map.window")
                    parts = hash_file(window, self.partitioner)
                    for dst in range(k):
                        spiller.add(dst, parts[dst])
                    meter.discharge(window.nbytes)
                runs_by_dst = spiller.finish()

            with self.stage("pack"):
                # Per destination: one frame whose sub-frames are the
                # sorted runs in chunk order.  Spilled runs enter the
                # gather list as mmap views — record bytes go from disk
                # pages to the socket without a resident copy.
                outgoing = {
                    dst: pack_batches_parts(
                        (i, run.load())
                        for i, run in enumerate(runs_by_dst[dst])
                    )
                    for dst in range(k)
                    if dst != rank
                }

            received_runs: Dict[int, List[Run]] = {}
            # Fig. 9(a) turn order, but each inbound frame is unpacked and
            # spilled immediately so at most one receive arena is ever
            # resident.
            for sender in range(k):
                if sender == rank:
                    with self.stage("shuffle"):
                        for dst in range(k):
                            if dst != rank:
                                self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
                else:
                    with self.stage("shuffle"):
                        raw = self.comm.recv(sender, SHUFFLE_TAG, copy=False)
                    with self.stage("unpack"):
                        runs = []
                        for i, (tag, batch) in enumerate(
                            unpack_batches(raw, copy=False)
                        ):
                            if tag != i:
                                raise RuntimeError(
                                    f"run {i} from sender {sender} "
                                    f"tagged {tag}"
                                )
                            runs.append(
                                keep_or_spill(
                                    batch, spill, plan, meter,
                                    f"recv-{sender}",
                                )
                            )
                        received_runs[sender] = runs
                        del raw  # release the receive arena

            with self.stage("reduce"):
                ordered: List[Run] = list(runs_by_dst[rank])
                for sender in sorted(received_runs):
                    ordered.extend(received_runs[sender])
                merged = merge_runs(
                    ordered,
                    window_records=plan.merge_window_records(len(ordered)),
                    out_records=plan.out_records,
                    meter=meter,
                )
                result = emit_output(merged, rank, self.output_dir, meter)
            return result
        finally:
            spill.cleanup()
            export_residency(self, meter, self.memory_budget)

    def _run_out_of_core_overlap(self) -> Union[RecordBatch, FileSource]:
        """Bounded-memory TeraSort with streaming overlap.

        Same stability discipline as :meth:`_run_out_of_core`, but each
        per-destination run ships the moment the spiller seals it (one
        frame per run, tagged with its chunk index) and received runs
        feed the incremental merge frontier as they land.  The merge
        frontier adds at most ~1/8 budget of transient residency on top
        of the serial pipeline's peak (its pair merges stream through
        bounded windows).
        """
        k = self.size
        rank = self.rank
        comm = self.comm
        assert self.memory_budget is not None
        plan = OutOfCorePlan.for_budget(self.memory_budget)
        meter = self.meter = ResidencyMeter()
        spill = SpillDir(tag=f"ts-ov-r{rank}")
        senders = [s for s in range(k) if s != rank]
        slot_of = {s: 1 + i for i, s in enumerate(senders)}
        merger = IncrementalMerger(
            k,
            spill=spill,
            resident_limit=plan.memory_budget // 8,
            window_records=plan.merge_window_records(8),
            out_records=plan.out_records,
            meter=meter,
            tag="ov-merge",
        )
        send_reqs: List[Tuple[Any, Any]] = []
        sent_counts = [0] * k
        end_frame = bytes([_FRAME_END])
        try:
            with self.stage("shuffle") as scope:
                recvs = {
                    s: comm.irecv(s, SHUFFLE_TAG, copy=False) for s in senders
                }
                recv_counts = {s: 0 for s in senders}

                def poll_arrivals() -> bool:
                    progressed = False
                    for s in list(recvs):
                        req = recvs[s]
                        if not req.test():
                            continue
                        payload = req.wait()
                        progressed = True
                        if payload[0] == _FRAME_END:
                            del recvs[s]
                            continue
                        with self.stage("unpack"):
                            tag, batch = unpack_batch(
                                memoryview(payload)[1:], copy=False
                            )
                            if tag != recv_counts[s]:
                                raise RuntimeError(
                                    f"run {recv_counts[s]} from sender {s} "
                                    f"tagged {tag}"
                                )
                            recv_counts[s] += 1
                            run = keep_or_spill(
                                batch, spill, plan, meter, f"recv-{s}"
                            )
                        del payload, batch  # release the receive arena
                        with self.stage("reduce"):
                            merger.feed(slot_of[s], run)
                        recvs[s] = comm.irecv(s, SHUFFLE_TAG, copy=False)
                    send_reqs[:] = [
                        pair for pair in send_reqs if not pair[0].test()
                    ]
                    return progressed

                def on_run(dst: int, run: Run) -> None:
                    if dst == rank:
                        with self.stage("reduce"):
                            merger.feed(0, run)
                        return
                    with self.stage("pack"):
                        # The frame holds the run's mmap view: disk pages
                        # flow to the socket without a resident copy.
                        frame = [
                            bytes([_FRAME_CHUNK]),
                            *pack_batch_parts(
                                run.load(), tag=sent_counts[dst]
                            ),
                        ]
                    sent_counts[dst] += 1
                    with self.stage("shuffle"):
                        # Posted under the shuffle stage so the frame's
                        # traffic is attributed like the serial schedule.
                        send_reqs.append(
                            (comm.isend(dst, SHUFFLE_TAG, frame), frame)
                        )

                with self.stage("map"):
                    spiller = PartitionSpiller(
                        k, spill, plan.flush_bytes, meter, on_run=on_run
                    )
                    for window in self.source.iter_batches(
                        plan.input_window_records
                    ):
                        meter.charge(window.nbytes, "map.window")
                        parts = hash_file(window, self.partitioner)
                        for dst in range(k):
                            spiller.add(dst, parts[dst])
                        meter.discharge(window.nbytes)
                        self.fault_checkpoint()
                        poll_arrivals()
                    spiller.finish()

                for dst in senders:
                    send_reqs.append(
                        (comm.isend(dst, SHUFFLE_TAG, end_frame), end_frame)
                    )
                while recvs or send_reqs:
                    if not poll_arrivals():
                        time.sleep(0.0005)
            export_overlap(self, scope)

            with self.stage("reduce"):
                merged = merger.finish(
                    window_records=plan.merge_window_records(
                        max(2, merger.pending_runs)
                    )
                )
                result = emit_output(merged, rank, self.output_dir, meter)
            return result
        finally:
            spill.cleanup()
            export_residency(self, meter, self.memory_budget)


@dataclass
class SortRun:
    """Result of a full distributed sort run.

    Attributes:
        partitions: per-rank sorted output partitions (ascending key
            ranges).  Resident :class:`~repro.kvpairs.records.RecordBatch`
            objects for in-memory runs; for out-of-core runs with an
            ``output_dir`` each entry is the worker's
            :class:`~repro.kvpairs.datasource.FileSource` output
            descriptor (``len()`` works on both; stream big ones with
            ``iter_batches`` instead of ``load()``).
        stage_times: merged per-stage breakdown (max over nodes).
        traffic: the run's traffic log (None if backend doesn't collect one).
        partitioner: the partitioner used (for validation / inspection).
        meta: algorithm-specific extras (e.g. coding plan statistics).
    """

    partitions: List[RecordBatch]
    stage_times: StageTimes
    traffic: Optional[TrafficLog]
    partitioner: RangePartitioner
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)


def _terasort_program(comm: Comm, payload: Tuple) -> TeraSortProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    source, partitioner, memory_budget, output_dir, *rest = payload
    return TeraSortProgram(
        comm,
        source,
        partitioner,
        memory_budget=memory_budget,
        output_dir=output_dir,
        spec_splits=rest[0] if rest else None,
        overlap=bool(rest[1]) if len(rest) > 1 else False,
    )


def prepare_terasort(
    size: int,
    data: Optional[Union[RecordBatch, DataSource]] = None,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    memory_budget: Optional[int] = None,
    output_dir: Optional[str] = None,
    speculation: bool = False,
    speculation_wait_factor: float = 1.5,
    speculation_min_wait: float = 0.2,
    overlap: bool = False,
) -> PreparedJob:
    """Compile one TeraSort over ``size`` nodes into a pool-runnable job.

    Builds the shared range partitioner once on the coordinator and cuts
    the input into per-rank splits *at the descriptor level*: each rank's
    payload is a :class:`~repro.kvpairs.datasource.DataSource` subrange
    plus the partitioner, so for file/teragen inputs the control plane
    ships ~100-byte descriptors, never record bytes (an
    :class:`~repro.kvpairs.datasource.InlineSource` — the plain
    ``RecordBatch`` call style — still ships its records by value, the
    seed behavior).  ``finalize`` assembles the pool's
    :class:`~repro.runtime.program.ClusterResult` into a :class:`SortRun`.

    With ``speculation`` the compiled job additionally asks the pool's
    driver loop to watch per-stage heartbeats and launch a backup copy
    of a straggling map shard on an already-finished worker (first
    finisher wins; output stays byte-identical).  Requires a re-readable
    input descriptor (not an :class:`InlineSource`) and the in-memory
    path.
    """
    source = as_source(data)
    if speculation:
        if overlap:
            raise ValueError(
                "overlap and speculation are mutually exclusive: both "
                "replace the shuffle with their own event loop"
            )
        if isinstance(source, InlineSource):
            raise ValueError(
                "speculation requires a re-readable DataSource input "
                "(a backup worker must be able to read the straggler's "
                "split); got an InlineSource"
            )
        if memory_budget is not None:
            raise ValueError(
                "speculation is only supported on the in-memory path "
                "(no memory_budget)"
            )
    partitioner = _build_partitioner_from_source(
        source, size, sampled_partitioner, sample_size, sample_seed
    )
    splits = UncodedPlacement(size).split_source(source)
    spec_splits = list(splits) if speculation else None
    payloads: List[Any] = [
        (splits[rank], partitioner, memory_budget, output_dir, spec_splits,
         overlap)
        for rank in range(size)
    ]
    input_records = source.num_records

    def finalize(result: ClusterResult) -> SortRun:
        meta: Dict[str, object] = {
            "algorithm": "terasort",
            "num_nodes": size,
            "input_records": input_records,
            "input_kind": type(source).__name__,
        }
        meta["kernel_stats"] = kernels.stats_meta(result.per_node_times)
        if overlap:
            meta["overlap"] = overlap_meta(result.per_node_times)
        if memory_budget is not None:
            meta["memory_budget"] = memory_budget
            meta.update(residency_meta(result.per_node_times))
        if speculation:
            # Which ranks ran a backup copy / abandoned their own map
            # (from the pseudo-stage stamps in the raw per-node times).
            meta["speculation"] = {
                "backups": [
                    r
                    for r, t in enumerate(result.per_node_times)
                    if "spec_backup" in t
                ],
                "abandoned": [
                    r
                    for r, t in enumerate(result.per_node_times)
                    if "spec_map_abandoned" in t
                ],
            }
        return SortRun(
            partitions=list(result.results),
            stage_times=result.stage_times,
            traffic=result.traffic,
            partitioner=partitioner,
            meta=meta,
        )

    return PreparedJob(
        builder=_terasort_program,
        payloads=payloads,
        finalize=finalize,
        speculation=(
            {
                "stage": "map",
                "wait_factor": speculation_wait_factor,
                "min_wait": speculation_min_wait,
            }
            if speculation
            else None
        ),
    )


def run_terasort(
    cluster,
    data: RecordBatch,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> SortRun:
    """Sort ``data`` with TeraSort on ``cluster`` (one-shot session shim).

    Equivalent to submitting a :class:`repro.session.TeraSortSpec` to a
    fresh one-job :class:`repro.session.Session`; amortize the cluster
    setup across many sorts by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        data: the full input batch (the coordinator's view).
        sampled_partitioner: use sampled quantile splitters instead of the
            uniform ones (needed for skewed keys).
        sample_size: number of records sampled for the splitter.
        sample_seed: RNG seed for the sample.

    Returns:
        A :class:`SortRun`; ``partitions[k]`` is node ``k``'s sorted output.
    """
    from repro.session import Session, TeraSortSpec

    with Session(cluster) as session:
        return session.submit(
            TeraSortSpec(
                data=data,
                sampled_partitioner=sampled_partitioner,
                sample_size=sample_size,
                sample_seed=sample_seed,
            )
        ).result()


def _build_partitioner(
    data: RecordBatch,
    k: int,
    sampled: bool,
    sample_size: int,
    sample_seed: int,
) -> RangePartitioner:
    """Coordinator-side partitioner construction shared by both drivers."""
    if not sampled:
        return RangePartitioner.uniform(k)
    import numpy as np

    rng = np.random.default_rng(sample_seed)
    n = len(data)
    take = min(sample_size, n)
    if take == 0:
        return RangePartitioner.uniform(k)
    idx = rng.choice(n, size=take, replace=False)
    return RangePartitioner.from_sample(data.take(idx), k)


def _build_partitioner_from_source(
    source: DataSource,
    k: int,
    sampled: bool,
    sample_size: int,
    sample_seed: int,
) -> RangePartitioner:
    """Partitioner from any source kind.

    Inline sources keep the seed's exact RNG sampling (byte-identical
    splitters for existing callers); other kinds draw through the
    source's own :meth:`~repro.kvpairs.datasource.DataSource.sample`,
    which never materializes the dataset.
    """
    if isinstance(source, InlineSource):
        return _build_partitioner(
            source.batch, k, sampled, sample_size, sample_seed
        )
    if not sampled:
        return RangePartitioner.uniform(k)
    sample = source.sample(sample_size, seed=sample_seed)
    if len(sample) == 0:
        return RangePartitioner.uniform(k)
    return RangePartitioner.from_sample(sample, k)
