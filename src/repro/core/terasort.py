"""TeraSort: the uncoded baseline (§III).

Five stages per node, exactly as the paper's implementation (§V-A):

1. **Map** — hash the node's single input file into ``K`` per-partition
   intermediate values;
2. **Pack** — serialize each intermediate value into one contiguous buffer
   so a single flow carries it;
3. **Shuffle** — serial unicast (Fig. 9(a)): senders take turns in rank
   order; during node ``j``'s turn it unicasts ``I^k_{j}`` to every other
   node ``k`` back-to-back;
4. **Unpack** — deserialize the ``K-1`` received buffers;
5. **Reduce** — locally sort partition ``P_k``.

The program runs on any :class:`~repro.runtime.api.Comm` backend.
:func:`prepare_terasort` compiles one sort into a pool-runnable
:class:`~repro.runtime.program.PreparedJob` (placement, the shared
partitioner, result assembly); the declarative driver API is
:class:`repro.session.TeraSortSpec` submitted to a
:class:`repro.session.Session`, and :func:`run_terasort` is its one-shot
shim.

Out-of-core execution: inputs are
:class:`~repro.kvpairs.datasource.DataSource` descriptors (each rank
materializes or streams its split locally — the control plane never
carries record bytes for file/teragen sources), and with a
``memory_budget`` the node program switches from materialize-everything
to the bounded-memory pipeline: chunked Map (windows hashed and spilled
as sorted per-partition runs), a shuffle that ships runs as mmap views
and spills what it receives, and a streaming Reduce (external k-way merge
instead of one in-RAM sort).  Output is byte-identical to the in-memory
path — the merge's run ordering reproduces the stable sort exactly.

The compute hot path (Map's partition pass, Reduce's k-way merge) runs
on the kernels of :mod:`repro.kvpairs.kernels` — MSB radix partition
and the offset-value-coded merge (spilled runs carry persisted ``.ovc``
code sidecars) — with ``REPRO_KERNELS=classic`` selecting the plain
``searchsorted`` implementations; both are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.mapper import hash_file
from repro.core.outofcore import (
    OutOfCorePlan,
    PartitionSpiller,
    emit_output,
    export_residency,
    keep_or_spill,
    residency_meta,
)
from repro.core.partitioner import RangePartitioner
from repro.core.placement import UncodedPlacement
from repro.kvpairs.datasource import DataSource, FileSource, InlineSource, as_source
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.serialization import (
    pack_batch_parts,
    pack_batches_parts,
    unpack_batch,
    unpack_batches,
)
from repro.kvpairs.sorting import sort_batch
from repro.kvpairs.spill import Run, SpillDir, merge_runs
from repro.runtime.api import Comm
from repro.runtime.program import ClusterResult, NodeProgram, PreparedJob
from repro.utils.residency import ResidencyMeter
from repro.utils.timer import StageTimes

from repro.runtime.traffic import TrafficLog

#: User tag carrying shuffled intermediate values.
SHUFFLE_TAG = 1000

STAGES_TERASORT = ["map", "pack", "shuffle", "unpack", "reduce"]


class TeraSortProgram(NodeProgram):
    """Per-node TeraSort execution.

    Args:
        comm: communication endpoint.
        file_data: this node's input file ``F_{k}`` — a resident
            :class:`~repro.kvpairs.records.RecordBatch` or a
            :class:`~repro.kvpairs.datasource.DataSource` descriptor the
            node materializes/streams locally.
        partitioner: the shared ``K``-way range partitioner.
        memory_budget: cap (bytes) on resident record buffers; ``None``
            runs the seed in-memory path, a value runs the out-of-core
            pipeline (byte-identical output).
        output_dir: with a budget, stream the sorted partition to
            ``<output_dir>/part-<rank>`` and return a ``FileSource``
            instead of materializing it.
    """

    STAGES = STAGES_TERASORT

    def __init__(
        self,
        comm: Comm,
        file_data: Union[RecordBatch, DataSource],
        partitioner: RangePartitioner,
        memory_budget: Optional[int] = None,
        output_dir: Optional[str] = None,
    ) -> None:
        super().__init__(comm)
        self.source = as_source(file_data)
        self.partitioner = partitioner
        self.memory_budget = memory_budget
        self.output_dir = output_dir
        #: Residency accounting for the out-of-core path (None otherwise).
        self.meter: Optional[ResidencyMeter] = None

    def run(self) -> Union[RecordBatch, FileSource]:
        if self.memory_budget is not None:
            return self._run_out_of_core()
        k = self.size
        rank = self.rank

        with self.stage("map"):
            parts = hash_file(self.source.load(), self.partitioner)

        with self.stage("pack"):
            # Gather lists [frame header, records-view]: the mapper's
            # partition bytes are never copied between Map and the socket.
            outgoing = {
                dst: pack_batch_parts(parts[dst], tag=rank)
                for dst in range(k)
                if dst != rank
            }
            own = parts[rank]

        with self.stage("shuffle"):
            received: Dict[int, bytes] = {}
            # Fig. 9(a): one sender at a time, in rank order.
            for sender in range(k):
                if sender == rank:
                    for dst in range(k):
                        if dst != rank:
                            self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
                else:
                    received[sender] = self.comm.recv(
                        sender, SHUFFLE_TAG, copy=False
                    )

        with self.stage("unpack"):
            incoming: List[RecordBatch] = []
            for sender in sorted(received):
                tag, batch = unpack_batch(received[sender], copy=False)
                if tag != sender:
                    raise RuntimeError(
                        f"shuffle frame tag {tag} does not match sender {sender}"
                    )
                incoming.append(batch)

        with self.stage("reduce"):
            result = sort_batch(RecordBatch.concat([own] + incoming))
        return result

    # -- bounded-memory pipeline --------------------------------------------

    def _run_out_of_core(self) -> Union[RecordBatch, FileSource]:
        """Chunked Map, run-streaming shuffle, external-merge Reduce.

        Byte-identity with :meth:`run`'s in-memory path rests on one
        invariant, maintained at every step: each per-destination stream
        travels as stably-sorted chunks *in stream order*, and every merge
        breaks ties toward the earlier run — which reproduces exactly the
        stable ``sort_batch(concat([own] + incoming))`` of the seed path.
        """
        k = self.size
        rank = self.rank
        assert self.memory_budget is not None
        plan = OutOfCorePlan.for_budget(self.memory_budget)
        meter = self.meter = ResidencyMeter()
        spill = SpillDir(tag=f"ts-r{rank}")
        try:
            with self.stage("map"):
                spiller = PartitionSpiller(
                    k, spill, plan.flush_bytes, meter
                )
                for window in self.source.iter_batches(
                    plan.input_window_records
                ):
                    meter.charge(window.nbytes, "map.window")
                    parts = hash_file(window, self.partitioner)
                    for dst in range(k):
                        spiller.add(dst, parts[dst])
                    meter.discharge(window.nbytes)
                runs_by_dst = spiller.finish()

            with self.stage("pack"):
                # Per destination: one frame whose sub-frames are the
                # sorted runs in chunk order.  Spilled runs enter the
                # gather list as mmap views — record bytes go from disk
                # pages to the socket without a resident copy.
                outgoing = {
                    dst: pack_batches_parts(
                        (i, run.load())
                        for i, run in enumerate(runs_by_dst[dst])
                    )
                    for dst in range(k)
                    if dst != rank
                }

            received_runs: Dict[int, List[Run]] = {}
            # Fig. 9(a) turn order, but each inbound frame is unpacked and
            # spilled immediately so at most one receive arena is ever
            # resident.
            for sender in range(k):
                if sender == rank:
                    with self.stage("shuffle"):
                        for dst in range(k):
                            if dst != rank:
                                self.comm.send(dst, SHUFFLE_TAG, outgoing[dst])
                else:
                    with self.stage("shuffle"):
                        raw = self.comm.recv(sender, SHUFFLE_TAG, copy=False)
                    with self.stage("unpack"):
                        runs = []
                        for i, (tag, batch) in enumerate(
                            unpack_batches(raw, copy=False)
                        ):
                            if tag != i:
                                raise RuntimeError(
                                    f"run {i} from sender {sender} "
                                    f"tagged {tag}"
                                )
                            runs.append(
                                keep_or_spill(
                                    batch, spill, plan, meter,
                                    f"recv-{sender}",
                                )
                            )
                        received_runs[sender] = runs
                        del raw  # release the receive arena

            with self.stage("reduce"):
                ordered: List[Run] = list(runs_by_dst[rank])
                for sender in sorted(received_runs):
                    ordered.extend(received_runs[sender])
                merged = merge_runs(
                    ordered,
                    window_records=plan.merge_window_records(len(ordered)),
                    out_records=plan.out_records,
                    meter=meter,
                )
                result = emit_output(merged, rank, self.output_dir, meter)
            return result
        finally:
            spill.cleanup()
            export_residency(self, meter, self.memory_budget)


@dataclass
class SortRun:
    """Result of a full distributed sort run.

    Attributes:
        partitions: per-rank sorted output partitions (ascending key
            ranges).  Resident :class:`~repro.kvpairs.records.RecordBatch`
            objects for in-memory runs; for out-of-core runs with an
            ``output_dir`` each entry is the worker's
            :class:`~repro.kvpairs.datasource.FileSource` output
            descriptor (``len()`` works on both; stream big ones with
            ``iter_batches`` instead of ``load()``).
        stage_times: merged per-stage breakdown (max over nodes).
        traffic: the run's traffic log (None if backend doesn't collect one).
        partitioner: the partitioner used (for validation / inspection).
        meta: algorithm-specific extras (e.g. coding plan statistics).
    """

    partitions: List[RecordBatch]
    stage_times: StageTimes
    traffic: Optional[TrafficLog]
    partitioner: RangePartitioner
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)


def _terasort_program(comm: Comm, payload: Tuple) -> TeraSortProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    source, partitioner, memory_budget, output_dir = payload
    return TeraSortProgram(
        comm,
        source,
        partitioner,
        memory_budget=memory_budget,
        output_dir=output_dir,
    )


def prepare_terasort(
    size: int,
    data: Optional[Union[RecordBatch, DataSource]] = None,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    memory_budget: Optional[int] = None,
    output_dir: Optional[str] = None,
) -> PreparedJob:
    """Compile one TeraSort over ``size`` nodes into a pool-runnable job.

    Builds the shared range partitioner once on the coordinator and cuts
    the input into per-rank splits *at the descriptor level*: each rank's
    payload is a :class:`~repro.kvpairs.datasource.DataSource` subrange
    plus the partitioner, so for file/teragen inputs the control plane
    ships ~100-byte descriptors, never record bytes (an
    :class:`~repro.kvpairs.datasource.InlineSource` — the plain
    ``RecordBatch`` call style — still ships its records by value, the
    seed behavior).  ``finalize`` assembles the pool's
    :class:`~repro.runtime.program.ClusterResult` into a :class:`SortRun`.
    """
    source = as_source(data)
    partitioner = _build_partitioner_from_source(
        source, size, sampled_partitioner, sample_size, sample_seed
    )
    splits = UncodedPlacement(size).split_source(source)
    payloads: List[Any] = [
        (splits[rank], partitioner, memory_budget, output_dir)
        for rank in range(size)
    ]
    input_records = source.num_records

    def finalize(result: ClusterResult) -> SortRun:
        meta: Dict[str, object] = {
            "algorithm": "terasort",
            "num_nodes": size,
            "input_records": input_records,
            "input_kind": type(source).__name__,
        }
        if memory_budget is not None:
            meta["memory_budget"] = memory_budget
            meta.update(residency_meta(result.per_node_times))
        return SortRun(
            partitions=list(result.results),
            stage_times=result.stage_times,
            traffic=result.traffic,
            partitioner=partitioner,
            meta=meta,
        )

    return PreparedJob(
        builder=_terasort_program, payloads=payloads, finalize=finalize
    )


def run_terasort(
    cluster,
    data: RecordBatch,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> SortRun:
    """Sort ``data`` with TeraSort on ``cluster`` (one-shot session shim).

    Equivalent to submitting a :class:`repro.session.TeraSortSpec` to a
    fresh one-job :class:`repro.session.Session`; amortize the cluster
    setup across many sorts by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        data: the full input batch (the coordinator's view).
        sampled_partitioner: use sampled quantile splitters instead of the
            uniform ones (needed for skewed keys).
        sample_size: number of records sampled for the splitter.
        sample_seed: RNG seed for the sample.

    Returns:
        A :class:`SortRun`; ``partitions[k]`` is node ``k``'s sorted output.
    """
    from repro.session import Session, TeraSortSpec

    with Session(cluster) as session:
        return session.submit(
            TeraSortSpec(
                data=data,
                sampled_partitioner=sampled_partitioner,
                sample_size=sample_size,
                sample_seed=sample_seed,
            )
        ).result()


def _build_partitioner(
    data: RecordBatch,
    k: int,
    sampled: bool,
    sample_size: int,
    sample_seed: int,
) -> RangePartitioner:
    """Coordinator-side partitioner construction shared by both drivers."""
    if not sampled:
        return RangePartitioner.uniform(k)
    import numpy as np

    rng = np.random.default_rng(sample_seed)
    n = len(data)
    take = min(sample_size, n)
    if take == 0:
        return RangePartitioner.uniform(k)
    idx = rng.choice(n, size=take, replace=False)
    return RangePartitioner.from_sample(data.take(idx), k)


def _build_partitioner_from_source(
    source: DataSource,
    k: int,
    sampled: bool,
    sample_size: int,
    sample_seed: int,
) -> RangePartitioner:
    """Partitioner from any source kind.

    Inline sources keep the seed's exact RNG sampling (byte-identical
    splitters for existing callers); other kinds draw through the
    source's own :meth:`~repro.kvpairs.datasource.DataSource.sample`,
    which never materializes the dataset.
    """
    if isinstance(source, InlineSource):
        return _build_partitioner(
            source.batch, k, sampled, sample_size, sample_seed
        )
    if not sampled:
        return RangePartitioner.uniform(k)
    sample = source.sample(sample_size, seed=sample_seed)
    if len(sample) == 0:
        return RangePartitioner.uniform(k)
    return RangePartitioner.from_sample(sample, k)
