"""General Coded MapReduce (§II): arbitrary map/reduce jobs, coded shuffle.

This is the framework of [7]-[9] that CodedTeraSort instantiates for
sorting: ``K`` nodes compute ``Q`` output functions from ``N`` input files,
with each file mapped on ``r`` nodes so that coded multicasts cut the
shuffle load ``r``-fold.

Three schemes are provided (matching the paper's Fig. 1 comparison):

* **uncoded, r = 1** — every file mapped once, all remote intermediate
  values unicast (Fig. 1(a));
* **uncoded, r > 1** — redundant placement but *no coding*: for each file
  subset ``S`` and target ``t ∉ S`` a single designated member of ``S``
  (the minimum rank) unicasts ``I^t_S``;
* **coded, r > 1** — redundant placement plus Algorithm 1/2 XOR multicast.

Function ``q`` is reduced at node ``q mod K``; the intermediate value
``I^t_S`` packs, for every file of subset ``S`` and every function owned by
node ``t``, the map output — built in deterministic (file id, function id)
order so that all ``r`` mappers of a file serialize byte-identical values
(a requirement of XOR coding).

Jobs must therefore have deterministic ``map_file`` output serialization;
the bundled jobs in :mod:`repro.core.jobs` comply.

Out-of-core execution: file payloads may be
:class:`~repro.kvpairs.datasource.DataSource` descriptors — each mapper
materializes its own splits locally, so the control plane ships ~100-byte
descriptors instead of payload bytes (the CMR papers' model, where
workers own their input splits).  A ``memory_budget`` additionally keeps
the serialized intermediate-value store on disk: once the resident store
passes the budget every ``I^t_S`` blob is spilled to a per-job temp file
and read back through zero-copy mmap views — the encoder's ``lookup``,
the decoder, and ``deserialize`` (whose contract is bytes-like, not
``bytes``) all operate on the views unchanged.  Record-granular chunked
Map and streaming Reduce live in the sort programs
(:mod:`repro.core.terasort`, :mod:`repro.core.coded_terasort`), where
record streams make them meaningful; the generic engine's unit of work
is one opaque file payload.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import (
    build_coding_plan,
    check_schedule,
    parallel_schedule_meta,
)
from repro.core.placement import CodedPlacement
from repro.kvpairs.datasource import DataSource
from repro.kvpairs.spill import SpillDir, spill_blob
from repro.runtime.api import Comm
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    PreparedJob,
    execute_multicast_shuffle,
)
from repro.runtime.traffic import TrafficLog
from repro.utils.subsets import Subset, k_subsets, without
from repro.utils.timer import StageTimes

UNICAST_TAG = 2000
MULTICAST_TAG_BASE = 20_000


class MapReduceJob(ABC):
    """A user job: Q output functions over N input files (Eq. (1)).

    Subclasses define the map and reduce laws; serialization defaults to
    pickle protocol 4 (deterministic for the standard container types used
    by the bundled jobs).
    """

    #: Human-readable job name (reports / logs).
    name: str = "job"

    def num_functions(self, num_nodes: int) -> int:
        """``Q``; defaults to one function per node."""
        return num_nodes

    @abstractmethod
    def map_file(self, file_id: int, payload: Any) -> Mapping[int, Any]:
        """Map one file: returns ``{function id q -> intermediate value}``.

        Functions absent from the mapping contribute nothing for this file.
        Must be deterministic: replicas of the file on different nodes must
        produce identical (serialization-identical) outputs.
        """

    @abstractmethod
    def reduce(self, q: int, values: Sequence[Tuple[int, Any]]) -> Any:
        """Reduce function ``q`` from ``(file_id, value)`` pairs.

        ``values`` is sorted by file id and contains one entry per file
        whose map emitted something for ``q``.
        """

    def serialize(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=4)

    def deserialize(self, buf: bytes) -> Any:
        """Inverse of :meth:`serialize`.

        ``buf`` may be any bytes-like object — the shuffle hands received
        intermediate values over as zero-copy arena views, so overriding
        jobs must not assume ``bytes`` (slice through ``bytes(...)`` or a
        ``memoryview`` as needed; ``pickle.loads`` takes buffers as-is).
        """
        return pickle.loads(buf)


@dataclass
class CMRRun:
    """Outcome of a Coded MapReduce run."""

    outputs: Dict[int, Any]
    stage_times: StageTimes
    traffic: Optional[TrafficLog]
    meta: Dict[str, object] = field(default_factory=dict)


def _owner_of(q: int, num_nodes: int) -> int:
    """Node reducing function ``q`` (round-robin assignment)."""
    return q % num_nodes


def _build_intermediate(
    job: MapReduceJob,
    target: int,
    num_nodes: int,
    num_functions: int,
    map_outputs: Dict[int, Mapping[int, Any]],
) -> List[Tuple[int, int, Any]]:
    """Deterministic ``I^target_S`` structure from a subset's map outputs.

    Returns sorted ``(file_id, q, value)`` triples for every function owned
    by ``target``.
    """
    out: List[Tuple[int, int, Any]] = []
    for file_id in sorted(map_outputs):
        emitted = map_outputs[file_id]
        for q in sorted(emitted):
            if not 0 <= q < num_functions:
                raise ValueError(
                    f"map emitted function id {q} outside [0, {num_functions})"
                )
            if _owner_of(q, num_nodes) == target:
                out.append((file_id, q, emitted[q]))
    return out


class _CMRProgramBase(NodeProgram):
    """Shared map/reduce plumbing for the three shuffle schemes."""

    def __init__(
        self,
        comm: Comm,
        job: MapReduceJob,
        files: Dict[int, Any],
        subsets: Dict[int, Subset],
        redundancy: int,
        memory_budget: Optional[int] = None,
    ) -> None:
        super().__init__(comm)
        self.job = job
        self.files = files
        self.subsets = subsets
        self.redundancy = redundancy
        self.memory_budget = memory_budget
        self.num_functions = job.num_functions(comm.size)
        self._spill: Optional[SpillDir] = None

    # -- spill lifecycle ----------------------------------------------------

    def _spill_dir(self) -> SpillDir:
        if self._spill is None:
            self._spill = SpillDir(tag=f"cmr-r{self.rank}")
        return self._spill

    def _cleanup_spill(self) -> None:
        if self._spill is not None:
            self._spill.cleanup()
            self._spill = None

    def run(self) -> Dict[int, Any]:
        # Spill hygiene: the per-job dir goes away on success and on any
        # failure path (the control loop reports the error after this).
        try:
            return self._run()
        finally:
            self._cleanup_spill()

    def _run(self) -> Dict[int, Any]:
        raise NotImplementedError

    # -- map --------------------------------------------------------------

    def _map_all(self) -> Dict[Subset, Dict[int, Mapping[int, Any]]]:
        """Map every local file (materializing descriptors), by subset."""
        by_subset: Dict[Subset, Dict[int, Mapping[int, Any]]] = {}
        for file_id in sorted(self.files):
            subset = self.subsets[file_id]
            payload = self.files[file_id]
            if isinstance(payload, DataSource):
                # Workers own their splits: the descriptor resolves to
                # records here, never on the control plane.
                payload = payload.load()
            by_subset.setdefault(subset, {})[file_id] = self.job.map_file(
                file_id, payload
            )
        return by_subset

    def _serialized_store(
        self, by_subset: Dict[Subset, Dict[int, Mapping[int, Any]]]
    ) -> Dict[Tuple[Subset, int], bytes]:
        """``(S, t) -> serialized I^t_S`` under the retention rule.

        With a ``memory_budget``, blobs past the budget live in spill
        files and the store holds zero-copy mmap views instead of owned
        ``bytes`` — downstream consumers already accept bytes-likes.
        """
        store: Dict[Tuple[Subset, int], bytes] = {}
        resident = 0
        spilling = False
        for subset, outputs in by_subset.items():
            in_subset = set(subset)
            for target in range(self.size):
                if target != self.rank and target in in_subset:
                    continue  # retention rule: target computes it locally
                value = _build_intermediate(
                    self.job, target, self.size, self.num_functions, outputs
                )
                blob = self.job.serialize(value)
                if self.memory_budget is not None and not spilling:
                    resident += len(blob)
                    spilling = resident > self.memory_budget
                if spilling:
                    blob = spill_blob(self._spill_dir(), blob, "ival")
                store[(subset, target)] = blob
        return store

    # -- reduce -------------------------------------------------------------

    def _reduce(
        self,
        store: Dict[Tuple[Subset, int], bytes],
        received: List[bytes],
    ) -> Dict[int, Any]:
        """Merge own + received intermediates and reduce owned functions."""
        entries: List[Tuple[int, int, Any]] = []
        for (subset, target), buf in store.items():
            if target == self.rank and self.rank in subset:
                entries.extend(self.job.deserialize(buf))
        for buf in received:
            entries.extend(self.job.deserialize(buf))
        per_q: Dict[int, List[Tuple[int, Any]]] = {}
        for file_id, q, value in entries:
            per_q.setdefault(q, []).append((file_id, value))
        outputs: Dict[int, Any] = {}
        for q in range(self.num_functions):
            if _owner_of(q, self.size) != self.rank:
                continue
            values = sorted(per_q.get(q, []), key=lambda e: e[0])
            outputs[q] = self.job.reduce(q, values)
        return outputs


class UncodedCMRProgram(_CMRProgramBase):
    """Uncoded shuffle at any computation load ``r`` (Fig. 1(a)/(b) left).

    For each file subset ``S`` and target ``t ∉ S``, the minimum-rank member
    of ``S`` unicasts ``I^t_S`` — redundancy reduces the load from
    ``1 - 1/K`` to ``1 - r/K`` but no coding gain is taken.
    """

    STAGES = ["map", "pack", "shuffle", "unpack", "reduce"]

    def _run(self) -> Dict[int, Any]:
        with self.stage("map"):
            by_subset = self._map_all()

        with self.stage("pack"):
            store = self._serialized_store(by_subset)
            # The serial schedule is global: every node walks the full
            # subset list (derivable from K and r), not just its own files.
            all_subsets = list(k_subsets(self.size, self.redundancy))

        with self.stage("shuffle"):
            received_raw: List[bytes] = []
            # Serial schedule: subsets in lex order, targets ascending.
            for subset in all_subsets:
                sender = min(subset)
                for target in range(self.size):
                    if target in subset:
                        continue
                    if self.rank == sender:
                        self.comm.send(
                            target, UNICAST_TAG, store[(subset, target)]
                        )
                    elif self.rank == target:
                        # Zero-copy views; deserialization reads them in
                        # place during Unpack/Reduce.
                        received_raw.append(
                            self.comm.recv(sender, UNICAST_TAG, copy=False)
                        )

        with self.stage("unpack"):
            received = list(received_raw)

        with self.stage("reduce"):
            return self._reduce(store, received)


class CodedCMRProgram(_CMRProgramBase):
    """Coded shuffle (Fig. 1(b) right): Algorithm 1/2 over generic payloads.

    Supports both shuffle schedules (see
    :mod:`repro.core.coded_terasort`): ``"serial"`` walks the Fig. 9(b)
    turns with a barrier handing the fabric from turn to turn, while
    ``"parallel"`` runs the non-blocking pipelined engine over
    conflict-free rounds, overlapping Encode / Shuffle / Decode.  Outputs
    are identical either way (reduction merges in deterministic file-id
    order).
    """

    STAGES = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]

    def __init__(
        self,
        comm: Comm,
        job: MapReduceJob,
        files: Dict[int, Any],
        subsets: Dict[int, Subset],
        redundancy: int,
        schedule: str = "serial",
        memory_budget: Optional[int] = None,
    ) -> None:
        super().__init__(
            comm, job, files, subsets, redundancy, memory_budget=memory_budget
        )
        check_schedule(schedule)
        self.schedule = schedule
        #: Telemetry from the pipelined engine (parallel schedule only).
        self.shuffle_telemetry: Dict[str, float] = {}

    def _run(self) -> Dict[int, Any]:
        rank = self.rank

        with self.stage("codegen"):
            plan = build_coding_plan(self.size, self.redundancy)
            my_groups = plan.groups_of_node[rank]
            rounds = (
                plan.rounds_for("parallel")
                if self.schedule == "parallel"
                else None
            )

        with self.stage("map"):
            by_subset = self._map_all()

        with self.stage("encode"):
            store = self._serialized_store(by_subset)

        def lookup(subset: Subset, target: int) -> bytes:
            return store[(subset, target)]

        def encode_for(gidx: int):
            return encode_packet(rank, plan.groups[gidx], lookup).to_parts()

        def recover_group(gidx: int, raw_packets: Dict[int, bytes]) -> bytes:
            packets = {
                s: CodedPacket.from_bytes(raw) for s, raw in raw_packets.items()
            }
            return recover_intermediate(
                rank, plan.groups[gidx], packets, lookup
            )

        recovered, self.shuffle_telemetry = execute_multicast_shuffle(
            self,
            plan.groups,
            my_groups,
            self.schedule,
            plan.schedule,
            rounds,
            MULTICAST_TAG_BASE,
            encode_for,
            recover_group,
        )

        with self.stage("reduce"):
            received = [recovered[gidx] for gidx in my_groups]
            return self._reduce(store, received)


def _cmr_program(comm: Comm, payload: Tuple) -> NodeProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    job, files, subsets, redundancy, coded, schedule, memory_budget = payload
    if coded:
        return CodedCMRProgram(
            comm,
            job,
            files,
            subsets,
            redundancy,
            schedule=schedule,
            memory_budget=memory_budget,
        )
    return UncodedCMRProgram(
        comm, job, files, subsets, redundancy, memory_budget=memory_budget
    )


def prepare_mapreduce(
    size: int,
    job: MapReduceJob,
    file_payloads: Sequence[Any],
    redundancy: int = 1,
    coded: bool = False,
    schedule: str = "serial",
    memory_budget: Optional[int] = None,
) -> PreparedJob:
    """Compile one MapReduce run over ``size`` nodes into a pool job.

    Each rank's payload carries the job object plus its placed files and
    their subsets; on the process backend these are pickled to the
    workers, so ``job`` must be a module-level class (the bundled jobs in
    :mod:`repro.core.jobs` all are).  File payloads that are
    :class:`~repro.kvpairs.datasource.DataSource` descriptors are shipped
    as descriptors and materialized worker-side; ``memory_budget`` bounds
    each worker's resident serialized store (overflow spills to per-job
    temp files).  ``finalize`` merges the per-node function outputs into
    one :class:`CMRRun`.
    """
    check_schedule(schedule)
    n = len(file_payloads)
    placement = _make_placement(size, redundancy, n)
    per_node_files: List[Dict[int, Any]] = [dict() for _ in range(size)]
    per_node_subsets: List[Dict[int, Subset]] = [dict() for _ in range(size)]
    for file_id in range(n):
        subset = placement.subset_of_file(file_id)
        for node in subset:
            per_node_files[node][file_id] = file_payloads[file_id]
            per_node_subsets[node][file_id] = subset

    payloads: List[Any] = [
        (
            job,
            per_node_files[rank],
            per_node_subsets[rank],
            redundancy,
            coded,
            schedule,
            memory_budget,
        )
        for rank in range(size)
    ]

    def finalize(result: ClusterResult) -> CMRRun:
        outputs: Dict[int, Any] = {}
        for node_outputs in result.results:
            overlap = set(outputs) & set(node_outputs)
            if overlap:
                raise RuntimeError(
                    f"functions reduced twice: {sorted(overlap)}"
                )
            outputs.update(node_outputs)
        meta: Dict[str, object] = {
            "job": job.name,
            "num_nodes": size,
            "num_files": n,
            "redundancy": redundancy,
            "coded": coded,
            "schedule": schedule if coded else "serial",
        }
        if coded and schedule == "parallel":
            plan = build_coding_plan(size, redundancy)
            meta.update(parallel_schedule_meta(plan, result.per_node_times))
        return CMRRun(
            outputs=outputs,
            stage_times=result.stage_times,
            traffic=result.traffic,
            meta=meta,
        )

    return PreparedJob(
        builder=_cmr_program, payloads=payloads, finalize=finalize
    )


def run_mapreduce(
    cluster,
    job: MapReduceJob,
    file_payloads: Sequence[Any],
    redundancy: int = 1,
    coded: bool = False,
    schedule: str = "serial",
) -> CMRRun:
    """Run ``job`` over ``file_payloads`` on ``cluster`` (one-shot shim).

    Equivalent to submitting a :class:`repro.session.MapReduceSpec` to a
    fresh one-job :class:`repro.session.Session`; amortize the cluster
    setup across many jobs by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        job: the map/reduce job.
        file_payloads: the ``N`` input files; for redundancy ``r``, ``N``
            must be a multiple of ``C(K, r)`` (the batched placement).
        redundancy: ``r``; with ``coded=False`` and ``r = 1`` this is plain
            MapReduce.
        coded: use the coded shuffle (requires ``r >= 1``; at ``r = 1``
            groups have two members and coding degenerates to unicast).
        schedule: coded-shuffle schedule, ``"serial"`` (Fig. 9(b) turns) or
            ``"parallel"`` (pipelined conflict-free rounds); identical
            outputs.  Only meaningful with ``coded=True``.

    Returns:
        A :class:`CMRRun` with the merged ``{q -> result}`` outputs.
    """
    from repro.session import MapReduceSpec, Session

    with Session(cluster) as session:
        return session.submit(
            MapReduceSpec(
                job=job,
                files=list(file_payloads),
                redundancy=redundancy,
                scheme="coded" if coded else "uncoded",
                schedule=schedule,
            )
        ).result()


def _make_placement(k: int, redundancy: int, n_files: int) -> CodedPlacement:
    """Placement for ``n_files`` at redundancy ``r`` (batched subsets)."""
    base = CodedPlacement(k, redundancy, 1).num_subsets
    if n_files % base != 0 or n_files == 0:
        raise ValueError(
            f"number of files ({n_files}) must be a positive multiple of "
            f"C(K={k}, r={redundancy}) = {base}"
        )
    return CodedPlacement(k, redundancy, n_files // base)
