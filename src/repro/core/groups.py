"""Multicast groups and the CodeGen stage (§V-A).

CodedTeraSort's CodeGen stage enumerates the ``C(K, r+1)`` multicast groups
(every ``(r+1)``-subset of nodes), derives each node's encoding duties, and
fixes the *serial multicast schedule* of Fig. 9(b): senders take turns in
rank order, and during its turn a node multicasts one coded packet in every
group it belongs to, in lexicographic group order.

In the paper this stage also creates one MPI communicator per group via
``MPI_Comm_split`` and its cost grows as ``C(K, r+1)`` — the scaling that
ultimately limits ``r`` (§V-C).  Our runtime needs no communicator objects,
but the plan construction is kept an explicit, timed stage to preserve the
cost structure, and the simulator charges the calibrated per-group cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.subsets import Subset, binomial, k_subsets, without

#: Valid shuffle-schedule modes for the real execution engine.
SCHEDULE_MODES = ("serial", "parallel")

#: Default first-fit window of the greedy round scheduler.
DEFAULT_ROUND_WINDOW = 64


def check_schedule(schedule: str) -> None:
    """Raise ``ValueError`` unless ``schedule`` is a known mode."""
    if schedule not in SCHEDULE_MODES:
        raise ValueError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULE_MODES}"
        )


def parallel_schedule_meta(
    plan: "CodingPlan", per_node_times: Sequence[Dict[str, float]]
) -> Dict[str, object]:
    """Driver-side metadata for a parallel-schedule run.

    Shared by the CodedTeraSort and CMR drivers so both report the same
    telemetry: turn/round counts, the theoretical turn-level speedup, and
    the slowest node's overlapped shuffle span (the ``shuffle_span``
    pseudo-stage emitted by the pipelined engine's callers).
    """
    spans = [t.get("shuffle_span", 0.0) for t in per_node_times]
    return {
        "schedule_turns": len(plan.schedule),
        "schedule_rounds": plan.num_rounds,
        "parallel_speedup": plan.parallel_speedup,
        "shuffle_span_seconds": max(spans, default=0.0),
    }


@dataclass
class CodingPlan:
    """Everything CodeGen produces.

    Attributes:
        num_nodes: ``K``.
        redundancy: ``r``.
        groups: all multicast groups (sorted ``(r+1)``-tuples, lex order).
        groups_of_node: node -> indices into ``groups`` it belongs to.
        schedule: the serial multicast schedule as ``(group_idx, sender)``
            pairs in transmission order (Fig. 9(b)).
    """

    num_nodes: int
    redundancy: int
    groups: List[Subset]
    groups_of_node: Dict[int, List[int]] = field(default_factory=dict)
    schedule: List[Tuple[int, int]] = field(default_factory=list)
    _parallel_rounds: Optional[List[List[Tuple[int, int]]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def packets_per_node(self) -> int:
        """Each node encodes one packet per group it is in: ``C(K-1, r)``."""
        return binomial(self.num_nodes - 1, self.redundancy)

    @property
    def total_multicasts(self) -> int:
        """``C(K, r+1) * (r+1)`` packets cross the network in total."""
        return self.num_groups * (self.redundancy + 1)

    def file_subset_for(self, group_idx: int, receiver: int) -> Subset:
        """The file subset ``M\\{receiver}`` a receiver decodes in a group."""
        return without(self.groups[group_idx], receiver)

    # -- parallel (round) scheduling ------------------------------------------

    def parallel_rounds(
        self, window: int = DEFAULT_ROUND_WINDOW
    ) -> List[List[Tuple[int, int]]]:
        """The conflict-free round coloring of the multicast schedule.

        Greedily packs the ``(group, sender)`` turns into rounds of
        pairwise node-disjoint groups (see :func:`round_schedule`); cached
        after the first call (the default ``window`` only).
        """
        if window != DEFAULT_ROUND_WINDOW:
            return round_schedule(self, window)
        if self._parallel_rounds is None:
            self._parallel_rounds = round_schedule(self)
        return self._parallel_rounds

    @property
    def num_rounds(self) -> int:
        """Rounds needed by the parallel schedule (<= serial turn count)."""
        return len(self.parallel_rounds())

    @property
    def parallel_speedup(self) -> float:
        """Theoretical turn-level shuffle speedup of the parallel schedule.

        Serial turns divided by parallel rounds — the factor by which the
        shuffle's critical path shortens when node-disjoint multicasts run
        concurrently (capped at ``floor(K / (r+1))``).
        """
        return len(self.schedule) / max(1, self.num_rounds)

    def rounds_for(self, schedule: str) -> List[List[Tuple[int, int]]]:
        """The transmission schedule as rounds, for either mode.

        ``"serial"`` wraps each Fig. 9(b) turn in its own singleton round;
        ``"parallel"`` returns the conflict-free coloring.
        """
        check_schedule(schedule)
        if schedule == "serial":
            return [[turn] for turn in self.schedule]
        return self.parallel_rounds()


def build_coding_plan(num_nodes: int, redundancy: int) -> CodingPlan:
    """Run CodeGen: enumerate groups, memberships, and the serial schedule.

    Args:
        num_nodes: ``K``.
        redundancy: ``r``; must satisfy ``1 <= r < K`` (with ``r = K`` there
            is no one left to talk to and no groups exist).

    Returns:
        The complete :class:`CodingPlan`.
    """
    if not 1 <= redundancy < num_nodes:
        raise ValueError(
            f"redundancy must be in [1, K-1] = [1, {num_nodes - 1}], "
            f"got {redundancy}"
        )
    groups: List[Subset] = list(k_subsets(num_nodes, redundancy + 1))
    groups_of_node: Dict[int, List[int]] = {k: [] for k in range(num_nodes)}
    for idx, group in enumerate(groups):
        for member in group:
            groups_of_node[member].append(idx)

    # Fig. 9(b): node 0 multicasts in all its groups, then node 1, etc.
    schedule: List[Tuple[int, int]] = []
    for sender in range(num_nodes):
        for idx in groups_of_node[sender]:
            schedule.append((idx, sender))

    return CodingPlan(
        num_nodes=num_nodes,
        redundancy=redundancy,
        groups=groups,
        groups_of_node=groups_of_node,
        schedule=schedule,
    )


def group_schedule_by_group(plan: CodingPlan) -> List[Tuple[int, int]]:
    """Alternative schedule: iterate groups, then senders within a group.

    Equivalent total traffic; exposed for the scheduling ablation (the paper
    mentions exploring parallel/asynchronous shuffling as future work).
    """
    schedule: List[Tuple[int, int]] = []
    for idx, group in enumerate(plan.groups):
        for sender in group:
            schedule.append((idx, sender))
    return schedule


def round_schedule(
    plan: CodingPlan, window: int = DEFAULT_ROUND_WINDOW
) -> List[List[Tuple[int, int]]]:
    """Pack the multicast schedule into conflict-free concurrent rounds.

    The paper's Fig. 9(b) schedule is fully serial; §VI lists asynchronous
    execution with parallel communications as future work.  This scheduler
    realizes it: two multicasts can proceed concurrently iff their groups
    share no node (every member is either transmitting or receiving), so
    the ``C(K, r+1) * (r+1)`` transmissions are greedily packed into rounds
    of pairwise node-disjoint groups.  At most ``floor(K / (r+1))`` groups
    fit per round, so the shuffle shortens by up to that factor.

    Packing is first-fit over a bounded window of ``window`` open rounds
    (full first-fit is quadratic — 232k transmissions at K=20, r=5), using
    node bitmasks for O(1) conflict tests.  Rounds are returned in the
    order they were opened; every transmission appears exactly once.

    Args:
        plan: the coding plan whose schedule to parallelize.
        window: how many trailing open rounds first-fit may consider.

    Returns:
        Rounds of ``(group_idx, sender)`` pairs, pairwise node-disjoint
        within each round.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    group_masks = [sum(1 << m for m in group) for group in plan.groups]
    # The serial schedule lists each sender's transmissions consecutively —
    # all sharing that sender, hence pairwise conflicting — and lex group
    # order correlates across senders, so any structured order clogs the
    # first-fit window.  A seeded shuffle decorrelates neighbours (any
    # order is legal: packets are all encoded before shuffling), after
    # which greedy packing fills rounds to near the K/(r+1) cap.
    interleaved: List[Tuple[int, int]] = list(plan.schedule)
    random.Random(0xC0DED).shuffle(interleaved)
    rounds: List[List[Tuple[int, int]]] = []
    open_rounds: List[int] = []  # indices into rounds
    masks: List[int] = []  # occupied-node bitmask per round
    for item in interleaved:
        mask = group_masks[item[0]]
        for ridx in open_rounds:
            if not masks[ridx] & mask:
                rounds[ridx].append(item)
                masks[ridx] |= mask
                break
        else:
            rounds.append([item])
            masks.append(mask)
            open_rounds.append(len(rounds) - 1)
            if len(open_rounds) > window:
                open_rounds.pop(0)
    return rounds


def unicast_round_schedule(num_nodes: int) -> List[List[Tuple[int, int]]]:
    """Conflict-free rounds for TeraSort's all-to-all unicast exchange.

    The serial schedule of Fig. 9(a) sends the ``K (K-1)`` unicasts one at
    a time.  Under half-duplex NICs (a transfer occupies both endpoints),
    the optimal parallel exchange follows a 1-factorization of the complete
    graph ``K_n`` (the circle method): ``K-1`` perfect matchings for even
    ``K`` (``K`` near-perfect ones for odd), each played in two half-duplex
    sub-rounds — once per direction.  Every ordered pair appears exactly
    once, and each sub-round's transfers are pairwise node-disjoint, so the
    shuffle shortens by ``~K/2``.

    Returns:
        Rounds of ``(src, dst)`` pairs, pairwise node-disjoint per round.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    k = num_nodes
    # Circle method: fix node 0 and rotate the rest; odd K adds a phantom
    # node whose partner sits the round out.
    n = k if k % 2 == 0 else k + 1
    others = list(range(1, n))
    rounds: List[List[Tuple[int, int]]] = []
    for _ in range(n - 1):
        ring = [0] + others
        pairs = [
            (ring[i], ring[n - 1 - i])
            for i in range(n // 2)
            if ring[i] < k and ring[n - 1 - i] < k
        ]
        rounds.append(list(pairs))
        rounds.append([(b, a) for a, b in pairs])
        others = others[1:] + others[:1]
    return rounds


def verify_plan(plan: CodingPlan) -> None:
    """Structural invariants of a coding plan (used by tests and CLI).

    Raises:
        AssertionError: if any invariant fails.
    """
    k, r = plan.num_nodes, plan.redundancy
    if len(plan.groups) != binomial(k, r + 1):
        raise AssertionError("wrong number of multicast groups")
    seen = set()
    for group in plan.groups:
        if len(group) != r + 1 or list(group) != sorted(set(group)):
            raise AssertionError(f"malformed group {group}")
        if group in seen:
            raise AssertionError(f"duplicate group {group}")
        seen.add(group)
    for node, idxs in plan.groups_of_node.items():
        if len(idxs) != binomial(k - 1, r):
            raise AssertionError(f"node {node} in wrong number of groups")
        for idx in idxs:
            if node not in plan.groups[idx]:
                raise AssertionError(f"membership list wrong for node {node}")
    if len(plan.schedule) != plan.total_multicasts:
        raise AssertionError("schedule length != total multicasts")
    if len(set(plan.schedule)) != len(plan.schedule):
        raise AssertionError("schedule has duplicate transmissions")
    for idx, sender in plan.schedule:
        if sender not in plan.groups[idx]:
            raise AssertionError(
                f"scheduled sender {sender} not in group {plan.groups[idx]}"
            )
