"""Ready-made Coded MapReduce jobs.

The paper motivates coding for shuffle-bound applications beyond sorting —
"we can apply the coding concept to develop coded versions of many other
distributed computing applications whose performance is limited by data
shuffling (e.g., Grep, SelfJoin)" (§VI) — and cites WordCount,
RankedInvertedIndex and SelfJoin as shuffle-heavy workloads [6].  These
jobs exercise the generic engine in :mod:`repro.core.cmr`:

* :class:`WordCountJob` — word frequencies, functions = hash buckets;
* :class:`GrepJob` — pattern matching, functions = match buckets;
* :class:`SelfJoinJob` — (key, value) pairs joined on key across files;
* :class:`InvertedIndexJob` — word -> sorted posting list of file ids;
* :class:`RankedInvertedIndexJob` — postings ranked by term frequency
  (the fourth workload [6] names).

All jobs emit deterministic, pickle-stable intermediate values (sorted dicts
/ lists of primitives), as the XOR coding requires.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.cmr import MapReduceJob


def _bucket(token: str, num_buckets: int) -> int:
    """Deterministic string -> bucket hash (stable across processes).

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
    would break replica determinism; use a fixed FNV-1a instead.
    """
    h = 2166136261
    for ch in token.encode("utf-8"):
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h % num_buckets


class WordCountJob(MapReduceJob):
    """Count word occurrences across text files.

    Files are strings; function ``q`` owns the words hashing to bucket
    ``q``.  Reduce output is a sorted ``{word: count}`` dict.
    """

    name = "wordcount"

    def __init__(self, buckets_per_node: int = 1) -> None:
        if buckets_per_node < 1:
            raise ValueError("buckets_per_node must be >= 1")
        self.buckets_per_node = buckets_per_node

    def num_functions(self, num_nodes: int) -> int:
        # The engine calls this once per program before mapping, so caching
        # Q here makes it available to map_file's bucket hashing.
        self._q_cache = num_nodes * self.buckets_per_node
        return self._q_cache

    def map_file(self, file_id: int, payload: str) -> Mapping[int, Any]:
        counts: Dict[int, Dict[str, int]] = {}
        for word in payload.split():
            q = _bucket(word, self._q_cache)
            bucket = counts.setdefault(q, {})
            bucket[word] = bucket.get(word, 0) + 1
        # Sort inner dicts for deterministic serialization.
        return {q: dict(sorted(c.items())) for q, c in sorted(counts.items())}

    def reduce(self, q: int, values: Sequence[Tuple[int, Any]]) -> Dict[str, int]:
        total: Dict[str, int] = {}
        for _file_id, counts in values:
            for word, n in counts.items():
                total[word] = total.get(word, 0) + n
        return dict(sorted(total.items()))


class GrepJob(MapReduceJob):
    """Collect lines matching a regex, bucketed by line hash.

    Files are strings (newline-separated); reduce output is the sorted list
    of ``(file_id, line_no, line)`` matches in the bucket.
    """

    name = "grep"

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self._regex = re.compile(pattern)

    def map_file(self, file_id: int, payload: str) -> Mapping[int, Any]:
        out: Dict[int, List[Tuple[int, str]]] = {}
        for line_no, line in enumerate(payload.splitlines()):
            if self._regex.search(line):
                q = _bucket(line, self._q_cache)
                out.setdefault(q, []).append((line_no, line))
        return {q: sorted(v) for q, v in sorted(out.items())}

    def reduce(
        self, q: int, values: Sequence[Tuple[int, Any]]
    ) -> List[Tuple[int, int, str]]:
        matches: List[Tuple[int, int, str]] = []
        for file_id, lines in values:
            for line_no, line in lines:
                matches.append((file_id, line_no, line))
        return sorted(matches)

    def num_functions(self, num_nodes: int) -> int:
        self._q_cache = num_nodes
        return num_nodes


class SelfJoinJob(MapReduceJob):
    """Self-join of (key, value) records on key.

    Files are lists of ``(key, value)`` tuples; function ``q`` owns keys in
    bucket ``q``; reduce emits, per key with >= 2 values, the sorted list of
    joined value pairs — the SelfJoin benchmark of [6].
    """

    name = "selfjoin"

    def map_file(
        self, file_id: int, payload: Sequence[Tuple[str, Any]]
    ) -> Mapping[int, Any]:
        out: Dict[int, List[Tuple[str, Any]]] = {}
        for key, value in payload:
            q = _bucket(key, self._q_cache)
            out.setdefault(q, []).append((key, value))
        return {q: sorted(v) for q, v in sorted(out.items())}

    def reduce(
        self, q: int, values: Sequence[Tuple[int, Any]]
    ) -> Dict[str, List[Tuple[Any, Any]]]:
        by_key: Dict[str, List[Any]] = {}
        for _file_id, pairs in values:
            for key, value in pairs:
                by_key.setdefault(key, []).append(value)
        joined: Dict[str, List[Tuple[Any, Any]]] = {}
        for key, vals in sorted(by_key.items()):
            if len(vals) < 2:
                continue
            vals = sorted(vals)
            joined[key] = [
                (vals[i], vals[j])
                for i in range(len(vals))
                for j in range(i + 1, len(vals))
            ]
        return joined

    def num_functions(self, num_nodes: int) -> int:
        self._q_cache = num_nodes
        return num_nodes


class FixedSizeProbeJob(MapReduceJob):
    """A measurement probe: every (file, function) value serializes to
    exactly :data:`PROBE_UNIT` bytes.

    Used to measure communication loads in whole intermediate-value units —
    this is how the Fig. 1 example's 12 / 6 / 3 counts are reproduced
    exactly (see ``tests/test_cmr_fig1.py`` and
    ``benchmarks/bench_fig1_example.py``).
    """

    name = "fixed-size-probe"

    def num_functions(self, num_nodes: int) -> int:
        self._q_cache = num_nodes
        return num_nodes

    def map_file(self, file_id: int, payload: Any) -> Mapping[int, Any]:
        return {q: f"f{file_id}q{q}" for q in range(self._q_cache)}

    def reduce(self, q: int, values: Sequence[Tuple[int, Any]]) -> list:
        return sorted(values)

    def serialize(self, obj: Any) -> bytes:
        out = bytearray()
        for file_id, q, value in obj:
            cell = f"{file_id}|{q}|{value}".encode()
            if len(cell) > PROBE_UNIT:
                raise ValueError(f"probe cell exceeds {PROBE_UNIT} bytes")
            out.extend(cell.ljust(PROBE_UNIT, b"\x00"))
        return bytes(out)

    def deserialize(self, buf: bytes) -> Any:
        out = []
        # buf may be a zero-copy arena view (bytes-like, not bytes).
        for i in range(0, len(buf), PROBE_UNIT):
            cell = bytes(buf[i : i + PROBE_UNIT]).rstrip(b"\x00").decode()
            file_id, q, value = cell.split("|")
            out.append((int(file_id), int(q), value))
        return out


#: Serialized size of one FixedSizeProbeJob intermediate value entry.
PROBE_UNIT = 64


class InvertedIndexJob(MapReduceJob):
    """word -> sorted posting list of the file ids containing it."""

    name = "inverted_index"

    def map_file(self, file_id: int, payload: str) -> Mapping[int, Any]:
        words = sorted(set(payload.split()))
        out: Dict[int, List[str]] = {}
        for word in words:
            q = _bucket(word, self._q_cache)
            out.setdefault(q, []).append(word)
        return {q: sorted(v) for q, v in sorted(out.items())}

    def reduce(
        self, q: int, values: Sequence[Tuple[int, Any]]
    ) -> Dict[str, List[int]]:
        postings: Dict[str, List[int]] = {}
        for file_id, words in values:
            for word in words:
                postings.setdefault(word, []).append(file_id)
        return {w: sorted(ids) for w, ids in sorted(postings.items())}

    def num_functions(self, num_nodes: int) -> int:
        self._q_cache = num_nodes
        return num_nodes


class RankedInvertedIndexJob(MapReduceJob):
    """word -> postings ranked by in-file term frequency (desc, then id).

    The fourth shuffle-heavy workload named by [6] alongside TeraSort,
    WordCount and SelfJoin.  Unlike the plain inverted index, the map
    emits per-file term *counts* so the reducer can order each posting
    list by relevance — the shape used by search back-ends.
    """

    name = "ranked_inverted_index"

    def map_file(self, file_id: int, payload: str) -> Mapping[int, Any]:
        counts: Dict[str, int] = {}
        for word in payload.split():
            counts[word] = counts.get(word, 0) + 1
        out: Dict[int, Dict[str, int]] = {}
        for word in sorted(counts):
            q = _bucket(word, self._q_cache)
            out.setdefault(q, {})[word] = counts[word]
        return {q: dict(sorted(v.items())) for q, v in sorted(out.items())}

    def reduce(
        self, q: int, values: Sequence[Tuple[int, Any]]
    ) -> Dict[str, List[Tuple[int, int]]]:
        postings: Dict[str, List[Tuple[int, int]]] = {}
        for file_id, counts in values:
            for word, n in counts.items():
                postings.setdefault(word, []).append((file_id, n))
        # Rank: highest term frequency first; file id breaks ties.
        return {
            w: sorted(entries, key=lambda e: (-e[1], e[0]))
            for w, entries in sorted(postings.items())
        }

    def num_functions(self, num_nodes: int) -> int:
        self._q_cache = num_nodes
        return num_nodes
