"""Shared plumbing for the bounded-memory (out-of-core) sort programs.

Both sort programs (:mod:`repro.core.terasort`,
:mod:`repro.core.coded_terasort`) run the same three-part discipline when
a ``memory_budget`` is set:

1. **chunked Map** — the input :class:`~repro.kvpairs.datasource.DataSource`
   is consumed in bounded windows, hashed per window, and the per-partition
   output accumulates in a budget-shared spiller;
2. **streaming Shuffle** — per-destination data travels as an ordered
   sequence of sorted runs (spilled runs are sent as mmap views, received
   runs are spilled back to disk when they don't fit);
3. **streaming Reduce** — an external k-way merge of own + received runs
   replaces the one-shot in-RAM sort, emitting output either to a part
   file (``output_dir``) or as a materialized batch.

This module holds the budget arithmetic, the map-side
:class:`PartitionSpiller`, the keep-or-spill policy for received runs,
output emission, and the stopwatch pseudo-stage export of the
:class:`~repro.utils.residency.ResidencyMeter` readouts (how peak
residency and spill volume reach the driver with zero extra plumbing —
the same channel ``shuffle_span`` telemetry already rides).

Budget split rationale (fractions of ``memory_budget``):

* input window ≤ 1/8 — one loaded window plus its hashed copy stay ≤ 1/4;
* spiller / sorter flush threshold 1/2 — the stable sort of a flushing
  chunk transiently holds chunk + sorted copy, bounding Map at ~3/4;
* merge windows 1/4 split across the runs being merged, output chunks
  1/8 — Reduce holds windows + one output chunk ≤ 1/2.

The split is deterministic from the budget alone, so every replica of a
coded file chunks it identically — a requirement for byte-identical XOR
encoding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.kvpairs.datasource import FileSource
from repro.kvpairs.records import RECORD_BYTES, RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.kvpairs.spill import Run, SpillDir, write_sorted_run
from repro.runtime.program import NodeProgram
from repro.utils.residency import ResidencyMeter

#: Smallest budget accepted — below this the window arithmetic collapses.
MIN_MEMORY_BUDGET = 64 * RECORD_BYTES


@dataclass(frozen=True)
class OutOfCorePlan:
    """Window/threshold sizing derived deterministically from the budget."""

    memory_budget: int
    input_window_records: int
    flush_bytes: int
    sort_chunk_bytes: int
    out_records: int

    @classmethod
    def for_budget(cls, memory_budget: int) -> "OutOfCorePlan":
        if memory_budget < MIN_MEMORY_BUDGET:
            raise ValueError(
                f"memory_budget must be >= {MIN_MEMORY_BUDGET} bytes, "
                f"got {memory_budget}"
            )
        return cls(
            memory_budget=memory_budget,
            input_window_records=max(64, memory_budget // 8 // RECORD_BYTES),
            flush_bytes=memory_budget // 2,
            sort_chunk_bytes=max(RECORD_BYTES, memory_budget // 4),
            out_records=max(64, memory_budget // 8 // RECORD_BYTES),
        )

    def merge_window_records(self, num_runs: int) -> int:
        """Per-run merge window: 1/4 of budget split across the runs."""
        per_run = self.memory_budget // 4 // max(1, num_runs)
        return max(64, per_run // RECORD_BYTES)


class PartitionSpiller:
    """Map-side accumulation of per-destination sorted runs.

    Hashed window slices are appended per destination **in stream order**;
    when the shared resident total passes ``flush_bytes`` every pending
    destination chunk is stable-sorted and spilled as one run.  The run
    lists per destination therefore satisfy the external-merge stability
    contract: merging them (earlier run wins ties) reproduces the stable
    sort of that destination's full stream.
    """

    def __init__(
        self,
        num_partitions: int,
        spill: SpillDir,
        flush_bytes: int,
        meter: Optional[ResidencyMeter] = None,
        on_run: Optional[Callable[[int, Run], None]] = None,
    ) -> None:
        self._spill = spill
        self._flush_bytes = max(flush_bytes, RECORD_BYTES)
        self._meter = meter
        #: Streaming-overlap hook: called with ``(dst, run)`` the moment a
        #: destination's next run is sealed (runs per dst in chunk order).
        self._on_run = on_run
        self._pending: List[List[RecordBatch]] = [
            [] for _ in range(num_partitions)
        ]
        self._resident = 0
        self._runs: List[List[Run]] = [[] for _ in range(num_partitions)]

    def add(self, dst: int, batch: RecordBatch) -> None:
        if len(batch) == 0:
            return
        if self._meter is not None:
            self._meter.charge(batch.nbytes, "map.partition")
        self._pending[dst].append(batch)
        self._resident += batch.nbytes
        if self._resident >= self._flush_bytes:
            self._flush()

    def _flush(self) -> None:
        for dst, batches in enumerate(self._pending):
            if not batches:
                continue
            chunk = sort_batch(RecordBatch.concat(batches))
            path = self._spill.new_path(f"part-{dst}")
            write_sorted_run(path, chunk)
            run = Run.from_file(path, len(chunk))
            self._runs[dst].append(run)
            if self._meter is not None:
                self._meter.spilled(chunk.nbytes)
            self._pending[dst] = []
            if self._on_run is not None:
                self._on_run(dst, run)
        if self._meter is not None:
            self._meter.discharge(self._resident)
        self._resident = 0

    def finish(self) -> List[List[Run]]:
        """Flush the tails; per-destination runs in chunk order."""
        self._flush()
        return [list(runs) for runs in self._runs]


def keep_or_spill(
    batch: RecordBatch,
    spill: SpillDir,
    plan: OutOfCorePlan,
    meter: ResidencyMeter,
    tag: str,
    owned: bool = False,
) -> Run:
    """One sorted chunk -> a resident run if it fits, else a spilled run.

    "Fits" means resident bytes stay under half the budget after keeping
    it.  A kept batch is copied out of whatever transient buffer (receive
    arena, decode output) it currently views — unless the caller marks it
    ``owned`` — so keeping it never pins a larger allocation.
    """
    if meter.resident_bytes + batch.nbytes <= plan.memory_budget // 2:
        kept = batch if owned else batch.copy()
        meter.charge(kept.nbytes, f"{tag}.resident")
        return Run.resident(kept)
    path = spill.new_path(tag)
    write_sorted_run(path, batch)
    meter.spilled(batch.nbytes)
    return Run.from_file(path, len(batch))


def emit_output(
    merged: Iterator[RecordBatch],
    rank: int,
    output_dir: Optional[str],
    meter: ResidencyMeter,
) -> Union[RecordBatch, FileSource]:
    """Drain the merged stream into the program's result.

    With ``output_dir`` the sorted partition streams straight to
    ``part-<rank>`` (constant memory; the result is a
    :class:`~repro.kvpairs.datasource.FileSource` descriptor).  Without it
    the partition is materialized — convenient for small outputs, but the
    materialized bytes are charged to the meter, so budget assertions
    will fail unless an ``output_dir`` is used for genuinely large runs.
    """
    if output_dir is None:
        parts = []
        for batch in merged:
            owned = batch.copy()
            meter.charge(owned.nbytes, "output.resident")
            parts.append(owned)
        return RecordBatch.concat(parts)
    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(output_dir, f"part-{rank:05d}")
    count = 0
    with open(path, "wb") as f:
        for batch in merged:
            f.write(batch.as_memoryview())
            count += len(batch)
    return FileSource(path, 0, count)


#: Pseudo-stage names carrying residency readouts to the driver.
OC_PEAK_KEY = "oc_peak_resident_bytes"
OC_SPILLED_KEY = "oc_spilled_bytes"
OC_RUNS_KEY = "oc_spill_runs"
OC_BUDGET_KEY = "oc_memory_budget_bytes"


def export_residency(
    program: NodeProgram, meter: ResidencyMeter, memory_budget: int
) -> None:
    """Ship the meter home through the stopwatch pseudo-stage channel."""
    program.stopwatch.add(OC_PEAK_KEY, float(meter.peak_resident_bytes))
    program.stopwatch.add(OC_SPILLED_KEY, float(meter.spilled_bytes))
    program.stopwatch.add(OC_RUNS_KEY, float(meter.spill_runs))
    program.stopwatch.add(OC_BUDGET_KEY, float(memory_budget))


def residency_meta(per_node_times: List[Dict[str, float]]) -> Dict[str, object]:
    """Driver-side aggregation of the per-rank residency pseudo-stages."""
    peaks = [t.get(OC_PEAK_KEY, 0.0) for t in per_node_times]
    return {
        "oc_peak_resident_bytes": int(max(peaks, default=0.0)),
        "oc_per_node_peak_resident_bytes": [int(p) for p in peaks],
        "oc_spilled_bytes": int(
            sum(t.get(OC_SPILLED_KEY, 0.0) for t in per_node_times)
        ),
        "oc_spill_runs": int(
            sum(t.get(OC_RUNS_KEY, 0.0) for t in per_node_times)
        ),
    }
