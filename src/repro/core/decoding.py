"""Algorithm 2: decoding coded packets back into intermediate values.

Within group ``M``, node ``k`` receives ``E_{M,u}`` from every other member
``u``.  For each such packet,

    ``E_{M,u} = XOR over t in M\\{u} of  I^t_{M\\{t}, u}``

and node ``k`` locally knows every constituent except the ``t = k`` term
(it mapped file ``M\\{t}`` for all ``t ∈ M\\{u, k}``).  XORing those known
segments out of the payload leaves ``I^k_{M\\{k}, u}`` — the ``u``-indexed
segment of the intermediate value node ``k`` is missing.  Collecting the
segments from all ``u ∈ M\\{k}`` and concatenating them in ascending ``u``
(the same order the encoder split in) reconstructs ``I^k_{M\\{k}}`` exactly.

Zero-copy data plane: :func:`recover_intermediate` sizes the full output
from the packet headers up front, allocates it once, and has
:func:`decode_segment_into` decode each sender's segment *directly into
its slice* of that arena — there is no per-segment ``bytes`` and no final
``b"".join``.  The arena (a fresh ``bytearray`` owned by the caller) is
returned as-is, so downstream consumers (``RecordBatch.from_buffer``,
``pickle.loads``) can wrap it without another copy.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.encoding import (
    BufferLike,
    CodedPacket,
    CodingError,
    IntermediateLookup,
    segment_of,
    xor_into,
)
from repro.utils.subsets import Subset, without


def decode_segment_into(
    receiver: int,
    packet: CodedPacket,
    lookup: IntermediateLookup,
    out: memoryview,
) -> None:
    """Decode ``I^receiver_{M\\{receiver}, sender}`` directly into ``out``.

    ``out`` must be a writable view of exactly the segment's true length
    (``packet.length_for(receiver)``).  The payload prefix is copied in
    once and every locally-known segment is XORed out in place; segments
    longer than the true length only influence bytes past the prefix, so
    truncating the XOR to ``len(out)`` is exact.

    Args:
        receiver: the decoding node ``k``; must be addressed by the packet.
        packet: ``E_{M, u}`` from some ``u ∈ M\\{k}``.
        lookup: the receiver's locally known intermediate values, called as
            ``lookup(M\\{t}, t)`` for ``t ∈ M\\{u, k}``.
    """
    group = packet.group
    sender = packet.sender
    if receiver == sender:
        raise CodingError("a node cannot decode its own packet")
    if receiver not in group:
        raise CodingError(f"receiver {receiver} not in group {group}")
    true_len = packet.length_for(receiver)
    if true_len > len(packet.payload):
        raise CodingError(
            f"header claims {true_len} bytes but payload is "
            f"{len(packet.payload)}"
        )
    if len(out) != true_len:
        raise CodingError(
            f"output slice is {len(out)} bytes, segment needs {true_len}"
        )
    out[:] = memoryview(packet.payload)[:true_len]
    for t in group:
        if t == sender or t == receiver:
            continue
        file_subset = without(group, t)  # receiver ∈ F, so I^t_F is known
        known = lookup(file_subset, t)
        expected = packet.length_for(t)
        seg = segment_of(known, file_subset, sender)
        if len(seg) != expected:
            raise CodingError(
                f"segment length mismatch for target {t}: local {len(seg)} "
                f"vs packet header {expected} (inconsistent map outputs?)"
            )
        xor_into(out, seg)


def decode_segment(
    receiver: int, packet: CodedPacket, lookup: IntermediateLookup
) -> bytearray:
    """Recover ``I^receiver_{M\\{receiver}, sender}`` from one packet.

    Convenience wrapper over :func:`decode_segment_into` returning an
    owned buffer with the true-length (unpadded) segment.
    """
    if receiver == packet.sender:
        raise CodingError("a node cannot decode its own packet")
    if receiver not in packet.group:
        raise CodingError(
            f"receiver {receiver} not in group {packet.group}"
        )
    out = bytearray(packet.length_for(receiver))
    decode_segment_into(receiver, packet, lookup, memoryview(out))
    return out


def recover_intermediate(
    receiver: int,
    group: Subset,
    packets: Mapping[int, CodedPacket],
    lookup: IntermediateLookup,
) -> bytearray:
    """Reassemble ``I^receiver_{M\\{receiver}}`` from a group's packets.

    The output buffer is preallocated from the packet headers and each
    sender's segment is decoded straight into its slice — no per-segment
    buffers, no join.

    Args:
        receiver: node ``k ∈ M``.
        group: the multicast group ``M``.
        packets: sender ``u`` -> ``E_{M,u}`` for every ``u ∈ M\\{k}``.
        lookup: locally known intermediate values.

    Returns:
        The full serialized intermediate value of file ``M\\{k}`` destined
        to the receiver (segments concatenated in ascending sender order,
        matching :func:`repro.core.encoding.segment_bounds`), as a freshly
        allocated buffer the caller owns.
    """
    file_subset = without(group, receiver)
    lengths = []
    for u in file_subset:  # ascending sender order == segment order
        if u not in packets:
            raise CodingError(f"missing packet from sender {u} in group {group}")
        pkt = packets[u]
        if tuple(pkt.group) != tuple(group):
            raise CodingError(
                f"packet group {pkt.group} does not match {group}"
            )
        if pkt.sender != u:
            raise CodingError(f"packet sender {pkt.sender} filed under {u}")
        lengths.append(pkt.length_for(receiver))
    out = bytearray(sum(lengths))
    view = memoryview(out)
    pos = 0
    for u, seg_len in zip(file_subset, lengths):
        decode_segment_into(
            receiver, packets[u], lookup, view[pos : pos + seg_len]
        )
        pos += seg_len
    return out


def decode_all_groups(
    receiver: int,
    packets_by_group: Mapping[Subset, Mapping[int, CodedPacket]],
    lookup: IntermediateLookup,
) -> Dict[Subset, BufferLike]:
    """Run Algorithm 2 over every group the receiver belongs to.

    Returns:
        file subset ``S = M\\{receiver}`` -> serialized ``I^receiver_S``,
        i.e. exactly the intermediate values ``{I^k_S : k ∉ S}`` the node
        was missing after the Map stage.
    """
    out: Dict[Subset, BufferLike] = {}
    for group, packets in packets_by_group.items():
        file_subset = without(group, receiver)
        out[file_subset] = recover_intermediate(receiver, group, packets, lookup)
    return out
