"""Algorithm 2: decoding coded packets back into intermediate values.

Within group ``M``, node ``k`` receives ``E_{M,u}`` from every other member
``u``.  For each such packet,

    ``E_{M,u} = XOR over t in M\\{u} of  I^t_{M\\{t}, u}``

and node ``k`` locally knows every constituent except the ``t = k`` term
(it mapped file ``M\\{t}`` for all ``t ∈ M\\{u, k}``).  XORing those known
segments out of the payload leaves ``I^k_{M\\{k}, u}`` — the ``u``-indexed
segment of the intermediate value node ``k`` is missing.  Collecting the
segments from all ``u ∈ M\\{k}`` and concatenating them in ascending ``u``
(the same order the encoder split in) reconstructs ``I^k_{M\\{k}}`` exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.core.encoding import (
    CodedPacket,
    CodingError,
    IntermediateLookup,
    segment_of,
    xor_into,
)
from repro.utils.subsets import Subset, without


def decode_segment(
    receiver: int, packet: CodedPacket, lookup: IntermediateLookup
) -> bytes:
    """Recover ``I^receiver_{M\\{receiver}, sender}`` from one packet.

    Args:
        receiver: the decoding node ``k``; must be addressed by the packet.
        packet: ``E_{M, u}`` from some ``u ∈ M\\{k}``.
        lookup: the receiver's locally known intermediate values, called as
            ``lookup(M\\{t}, t)`` for ``t ∈ M\\{u, k}``.

    Returns:
        The true-length (unpadded) segment destined to the receiver.
    """
    group = packet.group
    sender = packet.sender
    if receiver == sender:
        raise CodingError("a node cannot decode its own packet")
    if receiver not in group:
        raise CodingError(f"receiver {receiver} not in group {group}")
    acc = bytearray(packet.payload)
    for t in group:
        if t == sender or t == receiver:
            continue
        file_subset = without(group, t)  # receiver ∈ F, so I^t_F is known
        known = lookup(file_subset, t)
        expected = packet.length_for(t)
        seg = segment_of(known, file_subset, sender)
        if len(seg) != expected:
            raise CodingError(
                f"segment length mismatch for target {t}: local {len(seg)} "
                f"vs packet header {expected} (inconsistent map outputs?)"
            )
        xor_into(acc, seg)
    true_len = packet.length_for(receiver)
    if true_len > len(acc):
        raise CodingError(
            f"header claims {true_len} bytes but payload is {len(acc)}"
        )
    return bytes(acc[:true_len])


def recover_intermediate(
    receiver: int,
    group: Subset,
    packets: Mapping[int, CodedPacket],
    lookup: IntermediateLookup,
) -> bytes:
    """Reassemble ``I^receiver_{M\\{receiver}}`` from a group's packets.

    Args:
        receiver: node ``k ∈ M``.
        group: the multicast group ``M``.
        packets: sender ``u`` -> ``E_{M,u}`` for every ``u ∈ M\\{k}``.
        lookup: locally known intermediate values.

    Returns:
        The full serialized intermediate value of file ``M\\{k}`` destined
        to the receiver (segments concatenated in ascending sender order,
        matching :func:`repro.core.encoding.segment_bounds`).
    """
    file_subset = without(group, receiver)
    parts = []
    for u in file_subset:  # ascending sender order == segment order
        if u not in packets:
            raise CodingError(f"missing packet from sender {u} in group {group}")
        pkt = packets[u]
        if tuple(pkt.group) != tuple(group):
            raise CodingError(
                f"packet group {pkt.group} does not match {group}"
            )
        if pkt.sender != u:
            raise CodingError(f"packet sender {pkt.sender} filed under {u}")
        parts.append(decode_segment(receiver, pkt, lookup))
    return b"".join(parts)


def decode_all_groups(
    receiver: int,
    packets_by_group: Mapping[Subset, Mapping[int, CodedPacket]],
    lookup: IntermediateLookup,
) -> Dict[Subset, bytes]:
    """Run Algorithm 2 over every group the receiver belongs to.

    Returns:
        file subset ``S = M\\{receiver}`` -> serialized ``I^receiver_S``,
        i.e. exactly the intermediate values ``{I^k_S : k ∉ S}`` the node
        was missing after the Map stage.
    """
    out: Dict[Subset, bytes] = {}
    for group, packets in packets_by_group.items():
        file_subset = without(group, receiver)
        out[file_subset] = recover_intermediate(receiver, group, packets, lookup)
    return out
