"""Key-domain partitioning (§III-A2).

The key domain is split into ``K`` ordered ranges ``P_1 < P_2 < ... < P_K``;
node ``k`` reduces (sorts) partition ``P_k``.  Keys are compared as 10-byte
big-endian integers; partitioning operates on the first 8 key bytes viewed as
``uint64`` (``hi``), which is a deterministic function of the key, so records
with equal ``hi`` always land in the same partition and global order across
partitions is preserved.

Two splitter constructions are provided:

* :meth:`RangePartitioner.uniform` — evenly spaced boundaries over the full
  ``[0, 2^64)`` prefix space; optimal for TeraGen's uniform keys (what the
  paper uses);
* :meth:`RangePartitioner.from_sample` — boundaries at the empirical
  quantiles of a key sample, the way Hadoop TeraSort's partitioner samples
  input splits; necessary for skewed inputs.

With the default kernels (``$REPRO_KERNELS`` unset or ``ovc``),
:meth:`RangePartitioner.partition_indices` routes large batches through
the MSB radix table of :mod:`repro.kvpairs.kernels` — a lazily built,
per-process 2^16-entry lookup on the top 16 key bits whose output is
exactly equal to the ``searchsorted`` walk.  The table is a local cache:
it is dropped on pickling, so shipping a partitioner inside a job
descriptor stays as small as the boundary list itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kvpairs import kernels
from repro.kvpairs.records import RecordBatch

_U64_SPAN = 1 << 64


class RangePartitioner:
    """Maps 10-byte keys to one of ``K`` ordered range partitions.

    Attributes:
        num_partitions: ``K``.
        boundaries: ``K-1`` ascending uint64 split points; partition ``i``
            holds keys with ``boundaries[i-1] <= hi < boundaries[i]``.
    """

    def __init__(self, boundaries: Sequence[int], num_partitions: int) -> None:
        bounds = np.asarray(list(boundaries), dtype=np.uint64)
        if len(bounds) != num_partitions - 1:
            raise ValueError(
                f"need {num_partitions - 1} boundaries for {num_partitions} "
                f"partitions, got {len(bounds)}"
            )
        if len(bounds) > 1 and not (bounds[:-1] <= bounds[1:]).all():
            raise ValueError("boundaries must be non-decreasing")
        self.num_partitions = int(num_partitions)
        self.boundaries = bounds
        self._radix: Optional[kernels.RadixTable] = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def uniform(cls, num_partitions: int) -> "RangePartitioner":
        """Evenly spaced boundaries over the 64-bit key-prefix space."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        step = _U64_SPAN // num_partitions
        bounds = [step * i for i in range(1, num_partitions)]
        return cls(bounds, num_partitions)

    @classmethod
    def from_sample(
        cls,
        sample: RecordBatch,
        num_partitions: int,
    ) -> "RangePartitioner":
        """Boundaries at the empirical quantiles of ``sample``'s keys.

        With ``s`` sampled keys the ``i``-th boundary is the
        ``ceil(i * s / K)``-th order statistic, mirroring TeraSort's
        sampled splitter selection.  Duplicated quantiles (extreme skew)
        degrade to empty partitions rather than failing.
        """
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if len(sample) == 0:
            return cls.uniform(num_partitions)
        hi = np.sort(sample.key_prefix_u64())
        s = len(hi)
        bounds = []
        for i in range(1, num_partitions):
            idx = min(s - 1, max(0, (i * s) // num_partitions))
            bounds.append(int(hi[idx]))
        return cls(bounds, num_partitions)

    # -- mapping -------------------------------------------------------------

    def partition_indices(self, batch: RecordBatch) -> np.ndarray:
        """Partition index in ``[0, K)`` for every record (vectorized).

        Large batches use the radix lookup table (identical output);
        small ones and ``REPRO_KERNELS=classic`` keep the direct
        ``searchsorted`` walk.
        """
        hi = batch.key_prefix_u64()
        if (
            self.num_partitions >= 2
            and len(batch) >= kernels.RADIX_MIN_BATCH
            and kernels.use_ovc()
        ):
            if self._radix is None:
                self._radix = kernels.RadixTable.build(self.boundaries)
            return self._radix.partition(hi, self.boundaries)
        return np.searchsorted(self.boundaries, hi, side="right").astype(np.int64)

    def partition_of_prefix(self, hi: int) -> int:
        """Partition index for a single 64-bit key prefix."""
        return int(
            np.searchsorted(self.boundaries, np.uint64(hi), side="right")
        )

    # -- introspection ---------------------------------------------------------

    def partition_counts(self, batch: RecordBatch) -> np.ndarray:
        """Histogram of records per partition (for balance diagnostics)."""
        idx = self.partition_indices(batch)
        return np.bincount(idx, minlength=self.num_partitions)

    def imbalance(self, batch: RecordBatch) -> float:
        """Max partition share relative to the perfectly balanced ``1/K``.

        1.0 means perfect balance; ``K`` means everything in one partition.
        Returns 1.0 for an empty batch.
        """
        if len(batch) == 0:
            return 1.0
        counts = self.partition_counts(batch)
        return float(counts.max() * self.num_partitions / len(batch))

    def __getstate__(self) -> dict:
        # The radix table is a 256 KiB per-process cache; shipping it in
        # job descriptors would blow the payload budget, and rebuilding
        # it on first use is cheap.
        state = self.__dict__.copy()
        state["_radix"] = None
        return state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangePartitioner):
            return NotImplemented
        return self.num_partitions == other.num_partitions and bool(
            np.array_equal(self.boundaries, other.boundaries)
        )

    def __repr__(self) -> str:
        return (
            f"RangePartitioner(K={self.num_partitions}, "
            f"boundaries={self.boundaries[:3]}...)"
        )

    def to_list(self) -> List[int]:
        return [int(b) for b in self.boundaries]
