"""CodedTeraSort: the paper's contribution (§IV).

Six stages per node (§V-A):

1. **CodeGen** — build the coding plan: multicast groups, memberships, and
   the serial multicast schedule (cost grows as ``C(K, r+1)``);
2. **Map** — hash every locally placed file ``F_S`` (``rank ∈ S``), keeping
   ``I^rank_S`` and ``{I^i_S : i ∉ S}`` per the retention rule;
3. **Encode** — serialize intermediate values and build one coded packet
   ``E_{M, rank}`` per group ``M ∋ rank`` (Algorithm 1);
4. **Multicast Shuffle** — walk the serial schedule of Fig. 9(b),
   multicasting each packet to the group's other ``r`` members;
5. **Decode** — recover every missing ``I^rank_S`` (``rank ∉ S``) from the
   received packets (Algorithm 2) and deserialize;
6. **Reduce** — locally sort partition ``P_rank``.

The intermediate-value store is keyed by file *subset* (with
``batches_per_subset > 1``, the files of a subset are concatenated before
encoding, as in the batched CMR scheme of [9]).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.coded_common import group_store_by_subset
from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import CodingPlan, build_coding_plan
from repro.core.mapper import map_node_coded
from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement
from repro.core.terasort import SortRun, _build_partitioner
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.runtime.api import Comm
from repro.runtime.program import ClusterResult, NodeProgram
from repro.utils.subsets import Subset, without

#: Tag base for multicast shuffle; group index is added per packet.
MULTICAST_TAG_BASE = 10_000

STAGES_CODED = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


class CodedTeraSortProgram(NodeProgram):
    """Per-node CodedTeraSort execution.

    Args:
        comm: communication endpoint.
        files: file id -> data for every file placed on this node.
        subsets: file id -> node subset ``S`` (``rank ∈ S``).
        partitioner: shared ``K``-way range partitioner.
        redundancy: the computation-load parameter ``r``.
    """

    STAGES = STAGES_CODED

    def __init__(
        self,
        comm: Comm,
        files: Dict[int, RecordBatch],
        subsets: Dict[int, Subset],
        partitioner: RangePartitioner,
        redundancy: int,
    ) -> None:
        super().__init__(comm)
        self.files = files
        self.subsets = subsets
        self.partitioner = partitioner
        self.redundancy = redundancy

    def run(self) -> RecordBatch:
        rank = self.rank

        with self.stage("codegen"):
            plan: CodingPlan = build_coding_plan(self.size, self.redundancy)
            my_groups = plan.groups_of_node[rank]

        with self.stage("map"):
            kept = map_node_coded(rank, self.files, self.subsets, self.partitioner)
            # Store keyed by (subset, target); batches of a subset concatenated.
            store: Dict[Tuple[Subset, int], RecordBatch] = group_store_by_subset(
                kept, self.subsets
            )

        with self.stage("encode"):
            serialized: Dict[Tuple[Subset, int], bytes] = {
                key: batch.to_bytes() for key, batch in store.items()
            }

            def lookup(subset: Subset, target: int) -> bytes:
                return serialized[(subset, target)]

            packets_out: Dict[int, bytes] = {
                gidx: encode_packet(rank, plan.groups[gidx], lookup).to_bytes()
                for gidx in my_groups
            }

        with self.stage("shuffle"):
            received_raw: Dict[int, Dict[int, bytes]] = {g: {} for g in my_groups}
            for gidx, sender in plan.schedule:
                group = plan.groups[gidx]
                if rank not in group:
                    continue
                tag = MULTICAST_TAG_BASE + gidx
                if sender == rank:
                    self.comm.bcast(group, rank, tag, packets_out[gidx])
                else:
                    received_raw[gidx][sender] = self.comm.bcast(
                        group, sender, tag
                    )

        with self.stage("decode"):
            decoded: List[RecordBatch] = []
            for gidx in my_groups:
                group = plan.groups[gidx]
                packets = {
                    sender: CodedPacket.from_bytes(raw)
                    for sender, raw in received_raw[gidx].items()
                }
                raw_value = recover_intermediate(rank, group, packets, lookup)
                decoded.append(RecordBatch.from_bytes(raw_value))

        with self.stage("reduce"):
            own = [
                batch
                for (subset, target), batch in store.items()
                if target == rank and rank in subset
            ]
            result = sort_batch(RecordBatch.concat(own + decoded))
        return result


def run_coded_terasort(
    cluster,
    data: RecordBatch,
    redundancy: int,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> SortRun:
    """Sort ``data`` with CodedTeraSort on ``cluster``.

    Args:
        cluster: any backend with ``size`` and ``run(factory)``.
        data: the full input batch.
        redundancy: ``r ∈ [1, K-1]`` — each file is mapped on ``r`` nodes.
        batches_per_subset: input files per node subset (``N = b * C(K, r)``).
        sampled_partitioner / sample_size / sample_seed: see
            :func:`repro.core.terasort.run_terasort`.

    Returns:
        A :class:`~repro.core.terasort.SortRun` whose ``meta`` carries the
        coding-plan statistics (groups, packets, schedule length).
    """
    k = cluster.size
    # CodedPlacement itself allows r = K (one file everywhere), but the
    # coded shuffle needs multicast groups of r+1 <= K nodes; reject early
    # so the error carries no cluster-failure wrapping.
    if not 1 <= redundancy <= k - 1:
        raise ValueError(
            f"redundancy must be in [1, K-1] = [1, {k - 1}], got {redundancy}"
        )
    partitioner = _build_partitioner(
        data, k, sampled_partitioner, sample_size, sample_seed
    )
    placement = CodedPlacement(k, redundancy, batches_per_subset)
    assignments = placement.place(data)

    per_node_files: List[Dict[int, RecordBatch]] = [dict() for _ in range(k)]
    per_node_subsets: List[Dict[int, Subset]] = [dict() for _ in range(k)]
    for fa in assignments:
        for node in fa.subset:
            per_node_files[node][fa.file_id] = fa.data
            per_node_subsets[node][fa.file_id] = fa.subset

    def factory(comm: Comm) -> CodedTeraSortProgram:
        return CodedTeraSortProgram(
            comm,
            per_node_files[comm.rank],
            per_node_subsets[comm.rank],
            partitioner,
            redundancy,
        )

    result: ClusterResult = cluster.run(factory)
    plan = build_coding_plan(k, redundancy)
    return SortRun(
        partitions=list(result.results),
        stage_times=result.stage_times,
        traffic=result.traffic,
        partitioner=partitioner,
        meta={
            "algorithm": "coded_terasort",
            "num_nodes": k,
            "redundancy": redundancy,
            "batches_per_subset": batches_per_subset,
            "input_records": len(data),
            "num_files": placement.num_files,
            "files_per_node": placement.files_per_node(),
            "num_groups": plan.num_groups,
            "total_multicasts": plan.total_multicasts,
        },
    )
