"""CodedTeraSort: the paper's contribution (§IV).

Six stages per node (§V-A):

1. **CodeGen** — build the coding plan: multicast groups, memberships, and
   the multicast schedule (cost grows as ``C(K, r+1)``);
2. **Map** — hash every locally placed file ``F_S`` (``rank ∈ S``), keeping
   ``I^rank_S`` and ``{I^i_S : i ∉ S}`` per the retention rule;
3. **Encode** — serialize intermediate values and build one coded packet
   ``E_{M, rank}`` per group ``M ∋ rank`` (Algorithm 1);
4. **Multicast Shuffle** — deliver every coded packet to the group's other
   ``r`` members;
5. **Decode** — recover every missing ``I^rank_S`` (``rank ∉ S``) from the
   received packets (Algorithm 2) and deserialize;
6. **Reduce** — locally sort partition ``P_rank``.

Two shuffle schedules are supported (the ``schedule`` knob):

* ``"serial"`` — the paper's Fig. 9(b) execution: one ``(group, sender)``
  turn at a time, enforced by a cluster barrier between turns, with
  Encode fully preceding Shuffle preceding Decode.  This is the faithful
  baseline the paper measures.
* ``"parallel"`` — the §VI "asynchronous execution" future work: the
  turns are greedily colored into rounds of node-disjoint groups
  (:meth:`~repro.core.groups.CodingPlan.rounds_for`, fixing the posting
  order; no inter-round barrier at runtime) and executed by the
  non-blocking pipeline engine
  (:func:`~repro.runtime.program.pipelined_multicast_shuffle`): all
  receives are posted up front, packets are encoded lazily right before
  their round, and each group decodes as soon as its packets arrive —
  Encode / Shuffle / Decode overlap instead of barrier-separating.

Stage-time attribution under the parallel schedule stays *exclusive*:
encode and decode work done inside the shuffle loop is charged to the
``encode`` / ``decode`` stages and only the remaining span (communication
plus waiting) to ``shuffle``, so the six stage times still sum to
wall-clock; ``SortRun.meta["shuffle_span_seconds"]`` preserves the full
overlapped span.  Both schedules produce byte-identical sorted output.

The intermediate-value store is keyed by file *subset* (with
``batches_per_subset > 1``, the files of a subset are concatenated before
encoding, as in the batched CMR scheme of [9]).

Out-of-core execution: placed files arrive as
:class:`~repro.kvpairs.datasource.DataSource` descriptors (workers
stream their own splits; the control plane carries no record bytes for
file/teragen inputs), and a ``memory_budget`` switches the node program
to the bounded pipeline — Map streams each file in windows and retains
intermediates in a disk-spilling :class:`~repro.kvpairs.spill.StreamStore`
(append order is window order, deterministic from the budget alone, so
every replica of a subset lays out byte-identical ``I^t_S`` — the XOR
coding requirement holds on disk exactly as it did in RAM); Encode/Decode
read the store through zero-copy mmap views; and Reduce externally sorts
own + decoded records (spilled sorted runs, streaming k-way merge)
instead of one in-RAM sort.  Output stays byte-identical to the
in-memory path under both schedules.

The compute hot path (Map's partition pass, Reduce's merge) runs on the
kernels of :mod:`repro.kvpairs.kernels` — MSB radix partition and the
offset-value-coded merge, with ``.ovc`` code sidecars persisted next to
spilled runs; ``REPRO_KERNELS=classic`` selects the plain
``searchsorted`` implementations.  Both are byte-identical, on either
schedule.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.coded_common import group_store_by_subset
from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import (
    CodingPlan,
    build_coding_plan,
    check_schedule,
    parallel_schedule_meta,
)
from repro.core.mapper import hash_file, map_node_coded
from repro.core.outofcore import (
    OutOfCorePlan,
    emit_output,
    export_residency,
    keep_or_spill,
    residency_meta,
)
from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement
from repro.core.terasort import SortRun, _build_partitioner_from_source
from repro.kvpairs import kernels
from repro.kvpairs.datasource import DataSource, FileSource, as_source
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.kvpairs.spill import (
    ExternalSorter,
    IncrementalMerger,
    Run,
    SpillDir,
    StreamStore,
    merge_runs,
)
from repro.runtime.api import Comm
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    PreparedJob,
    execute_multicast_shuffle,
    overlap_meta,
    overlapped_multicast_shuffle,
)
from repro.utils.residency import ResidencyMeter
from repro.utils.subsets import Subset, without

#: Tag base for multicast shuffle; group index is added per packet.
MULTICAST_TAG_BASE = 10_000

STAGES_CODED = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


class CodedTeraSortProgram(NodeProgram):
    """Per-node CodedTeraSort execution.

    Args:
        comm: communication endpoint.
        files: file id -> data for every file placed on this node
            (resident batches or :class:`DataSource` descriptors the node
            reads locally).
        subsets: file id -> node subset ``S`` (``rank ∈ S``).
        partitioner: shared ``K``-way range partitioner.
        redundancy: the computation-load parameter ``r``.
        schedule: ``"serial"`` (Fig. 9(b) turns) or ``"parallel"``
            (pipelined conflict-free rounds); see the module docstring.
        memory_budget: cap (bytes) on resident record buffers; ``None``
            is the seed in-memory path, a value runs the out-of-core
            pipeline (byte-identical output, both schedules).
        output_dir: with a budget, stream the sorted partition to
            ``<output_dir>/part-<rank>`` and return a ``FileSource``.
        overlap: streaming phase overlap — interleave Map with the coded
            shuffle (a group multicasts as soon as every subset it draws
            on is fully mapped) and feed Reduce incrementally; output
            stays byte-identical to the staged execution.
    """

    STAGES = STAGES_CODED

    def __init__(
        self,
        comm: Comm,
        files: Dict[int, Union[RecordBatch, DataSource]],
        subsets: Dict[int, Subset],
        partitioner: RangePartitioner,
        redundancy: int,
        schedule: str = "serial",
        memory_budget: Optional[int] = None,
        output_dir: Optional[str] = None,
        overlap: bool = False,
    ) -> None:
        super().__init__(comm)
        check_schedule(schedule)
        self.files = files
        self.subsets = subsets
        self.partitioner = partitioner
        self.redundancy = redundancy
        self.schedule = schedule
        self.memory_budget = memory_budget
        self.output_dir = output_dir
        self.overlap = overlap
        #: Telemetry from the pipelined engine (parallel schedule only).
        self.shuffle_telemetry: Dict[str, float] = {}
        #: Residency accounting for the out-of-core path (None otherwise).
        self.meter: Optional[ResidencyMeter] = None

    def run(self) -> Union[RecordBatch, FileSource]:
        before_ks = kernels.stats.snapshot()
        try:
            return self._execute()
        finally:
            kernels.export_stats(self.stopwatch, before_ks)

    def _execute(self) -> Union[RecordBatch, FileSource]:
        if self.memory_budget is not None:
            return self._run_out_of_core()
        if self.overlap:
            return self._run_overlap()
        rank = self.rank

        with self.stage("codegen"):
            plan: CodingPlan = build_coding_plan(self.size, self.redundancy)
            my_groups = plan.groups_of_node[rank]
            rounds = (
                plan.rounds_for("parallel")
                if self.schedule == "parallel"
                else None
            )

        with self.stage("map"):
            resident_files = {
                fid: as_source(data).load() for fid, data in self.files.items()
            }
            kept = map_node_coded(
                rank, resident_files, self.subsets, self.partitioner
            )
            # Store keyed by (subset, target); batches of a subset concatenated.
            store: Dict[Tuple[Subset, int], RecordBatch] = group_store_by_subset(
                kept, self.subsets
            )

        serialized: Dict[Tuple[Subset, int], bytes] = {}

        def lookup(subset: Subset, target: int) -> bytes:
            return serialized[(subset, target)]

        # Serialize the intermediate store once (local compute, charged to
        # encode); packet XOR encoding is driven by the schedule executor —
        # eagerly for serial, lazily per round for parallel.
        with self.stage("encode"):
            serialized.update(
                (key, batch.to_bytes()) for key, batch in store.items()
            )

        def encode_for(gidx: int):
            # Gather-list wire form: the XOR arena travels as a payload
            # part next to the header, never joined into one buffer.
            return encode_packet(rank, plan.groups[gidx], lookup).to_parts()

        def recover(gidx: int, payloads: Dict[int, bytes]) -> RecordBatch:
            return self._recover_group(plan, gidx, payloads, lookup)

        decoded_batches, self.shuffle_telemetry = execute_multicast_shuffle(
            self,
            plan.groups,
            my_groups,
            self.schedule,
            plan.schedule,
            rounds,
            MULTICAST_TAG_BASE,
            encode_for,
            recover,
        )

        with self.stage("reduce"):
            own = [
                batch
                for (subset, target), batch in store.items()
                if target == rank and rank in subset
            ]
            decoded = [decoded_batches[gidx] for gidx in my_groups]
            result = sort_batch(RecordBatch.concat(own + decoded))
        return result

    def _recover_group(
        self,
        plan: CodingPlan,
        gidx: int,
        raw_packets: Dict[int, bytes],
        lookup,
    ) -> RecordBatch:
        """Algorithm 2 for one group: raw packets -> recovered record batch.

        Zero-copy end to end: parsed packets keep their payloads as views
        into the receive arenas, ``recover_intermediate`` decodes every
        segment into one preallocated output buffer, and the batch wraps
        that buffer read-only without copying (the Reduce-stage sort copies
        into its own output anyway).
        """
        packets = {
            sender: CodedPacket.from_bytes(raw)
            for sender, raw in raw_packets.items()
        }
        raw_value = recover_intermediate(
            self.rank, plan.groups[gidx], packets, lookup
        )
        return RecordBatch.from_buffer(raw_value)

    # -- streaming overlap ---------------------------------------------------

    def _codegen_overlap(self):
        """CodeGen for the overlapped run: plan, rounds, readiness sets.

        ``needed[gidx]`` lists the local file subsets group ``gidx``'s
        traffic draws on: this rank's packet for group ``M`` XORs
        ``{I^t_{M\\{t}} : t ∈ M\\{rank}}`` (every such subset contains
        this rank), and decoding the group's inbound packets XORs local
        copies of the *same* subsets back out — so one monotone predicate
        ("all of ``needed[gidx]`` fully mapped") gates both the send and
        the decode of a group.
        """
        with self.stage("codegen"):
            plan: CodingPlan = build_coding_plan(self.size, self.redundancy)
            my_groups = plan.groups_of_node[self.rank]
            rounds = plan.rounds_for(self.schedule)
            needed: Dict[int, List[Subset]] = {
                gidx: [
                    without(plan.groups[gidx], t)
                    for t in plan.groups[gidx]
                    if t != self.rank
                ]
                for gidx in my_groups
            }
        return plan, my_groups, rounds, needed

    def _subset_plan(self):
        """Per-subset map bookkeeping, deterministic from the placement.

        Returns ``(fids, subset_order, remaining, targets)``: file ids in
        map order, subsets in first-appearance order (== the store's own-
        entry order), files left per subset, and each subset's retained
        targets (this rank first, then ascending ``j ∉ S`` — the
        retention rule's insertion order).
        """
        rank = self.rank
        fids = sorted(self.files)
        subset_order: List[Subset] = []
        remaining: Dict[Subset, int] = {}
        targets: Dict[Subset, List[int]] = {}
        for fid in fids:
            subset = self.subsets[fid]
            if rank not in subset:
                raise ValueError(
                    f"node {rank} asked to map file {fid} of subset {subset}"
                )
            if subset not in remaining:
                subset_order.append(subset)
                remaining[subset] = 0
                in_subset = set(subset)
                targets[subset] = [rank] + [
                    j
                    for j in range(self.size)
                    if j != rank and j not in in_subset
                ]
            remaining[subset] += 1
        return fids, subset_order, remaining, targets

    def _run_overlap(self) -> RecordBatch:
        """Streaming overlap, in-memory: Map / Encode / Shuffle / Decode /
        Reduce as one event loop.

        Files are mapped one at a time; the moment a subset's last file
        is hashed, its intermediate values are serialized and every group
        whose ``needed`` subsets are now complete multicasts (posting
        priority = the schedule's round order; no barriers).  Decoded
        groups and own partition values feed an
        :class:`~repro.kvpairs.spill.IncrementalMerger` whose slot order
        replays the staged reduce concatenation — own store entries in
        store order, then decoded groups in ``my_groups`` order — so the
        final merge is byte-identical to the staged
        ``sort_batch(concat(...))``.
        """
        rank = self.rank
        plan, my_groups, rounds, needed = self._codegen_overlap()
        fids, subset_order, remaining, targets = self._subset_plan()

        slot_of_own = {subset: i for i, subset in enumerate(subset_order)}
        slot_of_group = {
            gidx: len(subset_order) + i for i, gidx in enumerate(my_groups)
        }
        merger = IncrementalMerger(len(subset_order) + len(my_groups))

        acc: Dict[Tuple[Subset, int], List[RecordBatch]] = {}
        completed: set = set()
        serialized: Dict[Tuple[Subset, int], bytes] = {}

        def lookup(subset: Subset, target: int) -> bytes:
            return serialized[(subset, target)]

        def complete_subset(subset: Subset) -> None:
            """Seal a fully-mapped subset: serialize its outbound values
            (encode) and feed its own partition into the merge (reduce)."""
            completed.add(subset)
            for target in targets[subset]:
                value = RecordBatch.concat(acc.pop((subset, target), []))
                if target == rank:
                    with self.stage("reduce"):
                        merger.feed(slot_of_own[subset], sort_batch(value))
                else:
                    with self.stage("encode"):
                        serialized[(subset, target)] = value.to_bytes()

        fid_iter = iter(fids)

        def map_step() -> bool:
            fid = next(fid_iter, None)
            if fid is None:
                return False
            subset = self.subsets[fid]
            parts = hash_file(
                as_source(self.files[fid]).load(), self.partitioner
            )
            for target in targets[subset]:
                acc.setdefault((subset, target), []).append(parts[target])
            remaining[subset] -= 1
            if remaining[subset] == 0:
                complete_subset(subset)
            self.fault_checkpoint()
            return True

        def encode_for(gidx: int):
            return encode_packet(rank, plan.groups[gidx], lookup).to_parts()

        def consume(gidx: int, payloads: Dict[int, bytes]) -> None:
            batch = self._recover_group(plan, gidx, payloads, lookup)
            # sort_batch copies out of the receive arena, so no payload
            # view survives this call.
            with self.stage("reduce"):
                merger.feed(slot_of_group[gidx], sort_batch(batch))

        def group_ready(gidx: int) -> bool:
            return all(s in completed for s in needed[gidx])

        self.shuffle_telemetry = overlapped_multicast_shuffle(
            self,
            plan.groups,
            my_groups,
            rounds,
            MULTICAST_TAG_BASE,
            encode_for,
            consume,
            map_step,
            group_ready,
        )

        with self.stage("reduce"):
            chunks = list(merger.finish())
            return (
                RecordBatch.concat(chunks) if chunks else RecordBatch.empty()
            )

    # -- bounded-memory pipeline --------------------------------------------

    def _run_out_of_core(self) -> Union[RecordBatch, FileSource]:
        """Chunked Map into a spillable store, mmap-fed coding, external
        sort at Reduce.

        Determinism note: the store's append order is (file id ascending,
        window ascending) with windows sized from the budget alone, so
        every replica of subset ``S`` writes byte-identical ``I^t_S``
        streams — XOR encode/decode work on mmap views of those files
        exactly as they worked on resident ``to_bytes()`` buffers.
        Byte-identity of the final output follows from the reduce merge
        ordering: own store entries in store order, then decoded groups in
        ``my_groups`` order — the same concatenation the in-memory path
        stably sorts.
        """
        if self.overlap:
            return self._run_out_of_core_overlap()
        rank = self.rank
        assert self.memory_budget is not None
        plan_oc = OutOfCorePlan.for_budget(self.memory_budget)
        meter = self.meter = ResidencyMeter()
        spill = SpillDir(tag=f"cts-r{rank}")
        try:
            with self.stage("codegen"):
                plan: CodingPlan = build_coding_plan(
                    self.size, self.redundancy
                )
                my_groups = plan.groups_of_node[rank]
                rounds = (
                    plan.rounds_for("parallel")
                    if self.schedule == "parallel"
                    else None
                )

            with self.stage("map"):
                store = StreamStore(
                    spill, plan_oc.flush_bytes, meter, tag="store"
                )
                for fid in sorted(self.files):
                    subset = self.subsets[fid]
                    if rank not in subset:
                        raise ValueError(
                            f"node {rank} asked to map file {fid} "
                            f"of subset {subset}"
                        )
                    in_subset = set(subset)
                    source = as_source(self.files[fid])
                    for window in source.iter_batches(
                        plan_oc.input_window_records
                    ):
                        meter.charge(window.nbytes, "map.window")
                        parts = hash_file(window, self.partitioner)
                        # Retention rule, chunked: I^rank_S plus I^j_S
                        # for j outside S, appended in window order.
                        # hash_file's partitions are views into one
                        # whole-window array; the retained minority is
                        # copied out so the discarded majority really
                        # frees when the window ends (retaining views
                        # would pin the full window while the meter only
                        # charges the kept fraction).
                        store.append((subset, rank), parts[rank].copy())
                        for j in range(self.size):
                            if j != rank and j not in in_subset:
                                store.append((subset, j), parts[j].copy())
                        meter.discharge(window.nbytes)
                store.finalize()

            def lookup(subset: Subset, target: int) -> memoryview:
                # Zero-copy mmap view of the on-disk I^t_S stream.
                return store.get_bytes((subset, target))

            def encode_for(gidx: int):
                return encode_packet(
                    rank, plan.groups[gidx], lookup
                ).to_parts()

            decoded_runs: Dict[int, List[Run]] = {}

            def recover(gidx: int, payloads: Dict[int, bytes]) -> None:
                packets = {
                    sender: CodedPacket.from_bytes(raw)
                    for sender, raw in payloads.items()
                }
                raw_value = recover_intermediate(
                    rank, plan.groups[gidx], packets, lookup
                )
                batch = RecordBatch.from_buffer(raw_value)
                meter.charge(batch.nbytes, "decode.recovered")
                # One stably-sorted chunk per group; kept or spilled, it
                # enters the reduce merge at its my_groups position.
                chunk = sort_batch(batch)
                meter.discharge(batch.nbytes)
                decoded_runs[gidx] = [
                    keep_or_spill(
                        chunk, spill, plan_oc, meter, f"grp-{gidx}",
                        owned=True,
                    )
                ]

            _, self.shuffle_telemetry = execute_multicast_shuffle(
                self,
                plan.groups,
                my_groups,
                self.schedule,
                plan.schedule,
                rounds,
                MULTICAST_TAG_BASE,
                encode_for,
                recover,
            )

            with self.stage("reduce"):
                own_sorter = ExternalSorter(
                    spill, plan_oc.sort_chunk_bytes, meter, tag="own"
                )
                for key in store.keys():
                    subset, target = key
                    if target != rank:
                        continue
                    for window in store.iter_batches(
                        key, plan_oc.input_window_records
                    ):
                        own_sorter.add(window)
                ordered: List[Run] = own_sorter.finish()
                for gidx in my_groups:
                    ordered.extend(decoded_runs.get(gidx, []))
                merged = merge_runs(
                    ordered,
                    window_records=plan_oc.merge_window_records(len(ordered)),
                    out_records=plan_oc.out_records,
                    meter=meter,
                )
                result = emit_output(merged, rank, self.output_dir, meter)
            return result
        finally:
            spill.cleanup()
            export_residency(self, meter, self.memory_budget)

    def _run_out_of_core_overlap(self) -> Union[RecordBatch, FileSource]:
        """Streaming overlap under a memory budget.

        Map streams file windows into the :class:`StreamStore`; the
        moment a subset's last window lands its keys are ``seal``-ed
        (flushed + readable while other keys still append), unlocking
        that subset's multicasts and its own-partition external sort.
        Decoded groups become kept-or-spilled sorted runs feeding the
        incremental merge during the loop; the own stream's sorted runs
        enter slot 0 after Map, preserving the staged reduce's leaf
        order (own runs in store order, then groups in ``my_groups``
        order) — so the merge is byte-identical to the staged path.
        """
        rank = self.rank
        assert self.memory_budget is not None
        plan_oc = OutOfCorePlan.for_budget(self.memory_budget)
        meter = self.meter = ResidencyMeter()
        spill = SpillDir(tag=f"cts-ov-r{rank}")
        try:
            plan, my_groups, rounds, needed = self._codegen_overlap()
            fids, subset_order, remaining, targets = self._subset_plan()
            slot_of_group = {
                gidx: 1 + i for i, gidx in enumerate(my_groups)
            }

            store = StreamStore(
                spill, plan_oc.flush_bytes, meter, tag="store"
            )
            merger = IncrementalMerger(
                1 + len(my_groups),
                spill=spill,
                resident_limit=plan_oc.memory_budget // 8,
                window_records=plan_oc.merge_window_records(8),
                out_records=plan_oc.out_records,
                meter=meter,
                tag="ov-merge",
            )
            own_sorter = ExternalSorter(
                spill, plan_oc.sort_chunk_bytes, meter, tag="own"
            )
            completed: set = set()
            own_fed = 0  # subsets whose own stream has entered the sorter

            def lookup(subset: Subset, target: int) -> memoryview:
                # Zero-copy mmap view of the sealed on-disk I^t_S stream.
                return store.get_bytes((subset, target))

            def advance_own() -> None:
                # Feed own streams in store (= subset first-appearance)
                # order, never skipping ahead of an unfinished subset —
                # the external sort's chunk stream must replay the staged
                # reduce's key walk exactly.
                nonlocal own_fed
                while (
                    own_fed < len(subset_order)
                    and subset_order[own_fed] in completed
                ):
                    key = (subset_order[own_fed], rank)
                    with self.stage("reduce"):
                        for window in store.iter_batches(
                            key, plan_oc.input_window_records
                        ):
                            own_sorter.add(window)
                    own_fed += 1

            def complete_subset(subset: Subset) -> None:
                completed.add(subset)
                for target in targets[subset]:
                    store.seal((subset, target))
                advance_own()

            def window_stream():
                for fid in fids:
                    subset = self.subsets[fid]
                    in_subset = set(subset)
                    source = as_source(self.files[fid])
                    for window in source.iter_batches(
                        plan_oc.input_window_records
                    ):
                        meter.charge(window.nbytes, "map.window")
                        parts = hash_file(window, self.partitioner)
                        # Retained minority copied out, as in the staged
                        # path: keeping views would pin the full window.
                        store.append((subset, rank), parts[rank].copy())
                        for j in range(self.size):
                            if j != rank and j not in in_subset:
                                store.append((subset, j), parts[j].copy())
                        meter.discharge(window.nbytes)
                        self.fault_checkpoint()
                        yield True
                    remaining[subset] -= 1
                    if remaining[subset] == 0:
                        complete_subset(subset)

            stream = window_stream()

            def map_step() -> bool:
                return next(stream, False)

            def encode_for(gidx: int):
                return encode_packet(
                    rank, plan.groups[gidx], lookup
                ).to_parts()

            def consume(gidx: int, payloads: Dict[int, bytes]) -> None:
                packets = {
                    sender: CodedPacket.from_bytes(raw)
                    for sender, raw in payloads.items()
                }
                raw_value = recover_intermediate(
                    rank, plan.groups[gidx], packets, lookup
                )
                batch = RecordBatch.from_buffer(raw_value)
                meter.charge(batch.nbytes, "decode.recovered")
                chunk = sort_batch(batch)
                meter.discharge(batch.nbytes)
                run = keep_or_spill(
                    chunk, spill, plan_oc, meter, f"grp-{gidx}", owned=True
                )
                with self.stage("reduce"):
                    merger.feed(slot_of_group[gidx], run)

            def group_ready(gidx: int) -> bool:
                return all(s in completed for s in needed[gidx])

            self.shuffle_telemetry = overlapped_multicast_shuffle(
                self,
                plan.groups,
                my_groups,
                rounds,
                MULTICAST_TAG_BASE,
                encode_for,
                consume,
                map_step,
                group_ready,
            )

            store.finalize()
            with self.stage("reduce"):
                advance_own()
                for run in own_sorter.finish():
                    merger.feed(0, run)
                merged = merger.finish(
                    window_records=plan_oc.merge_window_records(
                        max(2, merger.pending_runs)
                    )
                )
                result = emit_output(merged, rank, self.output_dir, meter)
            return result
        finally:
            spill.cleanup()
            export_residency(self, meter, self.memory_budget)


def _coded_terasort_program(comm: Comm, payload: Tuple) -> CodedTeraSortProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    files, subsets, partitioner, redundancy, schedule, budget, outdir, overlap = payload
    return CodedTeraSortProgram(
        comm,
        files,
        subsets,
        partitioner,
        redundancy,
        schedule=schedule,
        memory_budget=budget,
        output_dir=outdir,
        overlap=overlap,
    )


def check_coded_params(size: int, redundancy: int, schedule: str) -> None:
    """Validate ``(K, r, schedule)``; raises :class:`ValueError` early.

    CodedPlacement itself allows r = K (one file everywhere), but the
    coded shuffle needs multicast groups of r+1 <= K nodes; rejecting
    before any cluster work keeps the error free of job-failure wrapping.
    """
    if not 1 <= redundancy <= size - 1:
        raise ValueError(
            f"redundancy must be in [1, K-1] = [1, {size - 1}], "
            f"got {redundancy}"
        )
    check_schedule(schedule)


def prepare_coded_terasort(
    size: int,
    data: Optional[Union[RecordBatch, DataSource]] = None,
    redundancy: int = 1,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    schedule: str = "serial",
    memory_budget: Optional[int] = None,
    output_dir: Optional[str] = None,
    overlap: bool = False,
) -> PreparedJob:
    """Compile one CodedTeraSort over ``size`` nodes into a pool job.

    Coordinator-side: the shared partitioner, the coded placement, and
    each rank's ``{file_id: source}`` / ``{file_id: subset}`` maps —
    files are cut at the *descriptor* level
    (:meth:`~repro.core.placement.CodedPlacement.split_source`), so for
    file/teragen inputs every worker streams its own splits and the
    control plane ships only descriptors (inline batches keep the seed's
    ship-by-value behavior).  The coding plan itself is rebuilt by every
    node during CodeGen (that cost is part of the measured stage, as in
    the paper) and once more in ``finalize`` for the run metadata.
    """
    check_coded_params(size, redundancy, schedule)
    source = as_source(data)
    partitioner = _build_partitioner_from_source(
        source, size, sampled_partitioner, sample_size, sample_seed
    )
    placement = CodedPlacement(size, redundancy, batches_per_subset)
    file_sources = placement.split_source(source)

    per_node_files: List[Dict[int, DataSource]] = [dict() for _ in range(size)]
    per_node_subsets: List[Dict[int, Subset]] = [dict() for _ in range(size)]
    for file_id, file_source in enumerate(file_sources):
        subset = placement.subset_of_file(file_id)
        for node in subset:
            per_node_files[node][file_id] = file_source
            per_node_subsets[node][file_id] = subset

    payloads: List[Any] = [
        (
            per_node_files[rank],
            per_node_subsets[rank],
            partitioner,
            redundancy,
            schedule,
            memory_budget,
            output_dir,
            overlap,
        )
        for rank in range(size)
    ]
    input_records = source.num_records

    def finalize(result: ClusterResult) -> SortRun:
        plan = build_coding_plan(size, redundancy)
        meta = {
            "algorithm": "coded_terasort",
            "num_nodes": size,
            "redundancy": redundancy,
            "batches_per_subset": batches_per_subset,
            "input_records": input_records,
            "num_files": placement.num_files,
            "files_per_node": placement.files_per_node(),
            "num_groups": plan.num_groups,
            "total_multicasts": plan.total_multicasts,
            "schedule": schedule,
            "schedule_turns": len(plan.schedule),
            "input_kind": type(source).__name__,
        }
        if memory_budget is not None:
            meta["memory_budget"] = memory_budget
            meta.update(residency_meta(result.per_node_times))
        if schedule == "parallel":
            meta.update(parallel_schedule_meta(plan, result.per_node_times))
        meta["kernel_stats"] = kernels.stats_meta(result.per_node_times)
        if overlap:
            meta["overlap"] = overlap_meta(result.per_node_times)
        return SortRun(
            partitions=list(result.results),
            stage_times=result.stage_times,
            traffic=result.traffic,
            partitioner=partitioner,
            meta=meta,
        )

    return PreparedJob(
        builder=_coded_terasort_program, payloads=payloads, finalize=finalize
    )


def run_coded_terasort(
    cluster,
    data: RecordBatch,
    redundancy: int,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    schedule: str = "serial",
) -> SortRun:
    """Sort ``data`` with CodedTeraSort on ``cluster`` (one-shot shim).

    Equivalent to submitting a :class:`repro.session.CodedTeraSortSpec`
    to a fresh one-job :class:`repro.session.Session`; amortize the
    cluster setup across many sorts by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        data: the full input batch.
        redundancy: ``r ∈ [1, K-1]`` — each file is mapped on ``r`` nodes.
        batches_per_subset: input files per node subset (``N = b * C(K, r)``).
        sampled_partitioner / sample_size / sample_seed: see
            :func:`repro.core.terasort.run_terasort`.
        schedule: ``"serial"`` (paper, Fig. 9(b)) or ``"parallel"``
            (pipelined conflict-free rounds); output is byte-identical.

    Returns:
        A :class:`~repro.core.terasort.SortRun` whose ``meta`` carries the
        coding-plan statistics (groups, packets, schedule turns/rounds).
    """
    from repro.session import CodedTeraSortSpec, Session

    with Session(cluster) as session:
        return session.submit(
            CodedTeraSortSpec(
                data=data,
                redundancy=redundancy,
                batches_per_subset=batches_per_subset,
                sampled_partitioner=sampled_partitioner,
                sample_size=sample_size,
                sample_seed=sample_seed,
                schedule=schedule,
            )
        ).result()
