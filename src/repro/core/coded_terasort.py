"""CodedTeraSort: the paper's contribution (§IV).

Six stages per node (§V-A):

1. **CodeGen** — build the coding plan: multicast groups, memberships, and
   the multicast schedule (cost grows as ``C(K, r+1)``);
2. **Map** — hash every locally placed file ``F_S`` (``rank ∈ S``), keeping
   ``I^rank_S`` and ``{I^i_S : i ∉ S}`` per the retention rule;
3. **Encode** — serialize intermediate values and build one coded packet
   ``E_{M, rank}`` per group ``M ∋ rank`` (Algorithm 1);
4. **Multicast Shuffle** — deliver every coded packet to the group's other
   ``r`` members;
5. **Decode** — recover every missing ``I^rank_S`` (``rank ∉ S``) from the
   received packets (Algorithm 2) and deserialize;
6. **Reduce** — locally sort partition ``P_rank``.

Two shuffle schedules are supported (the ``schedule`` knob):

* ``"serial"`` — the paper's Fig. 9(b) execution: one ``(group, sender)``
  turn at a time, enforced by a cluster barrier between turns, with
  Encode fully preceding Shuffle preceding Decode.  This is the faithful
  baseline the paper measures.
* ``"parallel"`` — the §VI "asynchronous execution" future work: the
  turns are greedily colored into rounds of node-disjoint groups
  (:meth:`~repro.core.groups.CodingPlan.rounds_for`, fixing the posting
  order; no inter-round barrier at runtime) and executed by the
  non-blocking pipeline engine
  (:func:`~repro.runtime.program.pipelined_multicast_shuffle`): all
  receives are posted up front, packets are encoded lazily right before
  their round, and each group decodes as soon as its packets arrive —
  Encode / Shuffle / Decode overlap instead of barrier-separating.

Stage-time attribution under the parallel schedule stays *exclusive*:
encode and decode work done inside the shuffle loop is charged to the
``encode`` / ``decode`` stages and only the remaining span (communication
plus waiting) to ``shuffle``, so the six stage times still sum to
wall-clock; ``SortRun.meta["shuffle_span_seconds"]`` preserves the full
overlapped span.  Both schedules produce byte-identical sorted output.

The intermediate-value store is keyed by file *subset* (with
``batches_per_subset > 1``, the files of a subset are concatenated before
encoding, as in the batched CMR scheme of [9]).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.coded_common import group_store_by_subset
from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import (
    CodingPlan,
    build_coding_plan,
    check_schedule,
    parallel_schedule_meta,
)
from repro.core.mapper import map_node_coded
from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement
from repro.core.terasort import SortRun, _build_partitioner
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.runtime.api import Comm
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    PreparedJob,
    execute_multicast_shuffle,
)
from repro.utils.subsets import Subset

#: Tag base for multicast shuffle; group index is added per packet.
MULTICAST_TAG_BASE = 10_000

STAGES_CODED = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


class CodedTeraSortProgram(NodeProgram):
    """Per-node CodedTeraSort execution.

    Args:
        comm: communication endpoint.
        files: file id -> data for every file placed on this node.
        subsets: file id -> node subset ``S`` (``rank ∈ S``).
        partitioner: shared ``K``-way range partitioner.
        redundancy: the computation-load parameter ``r``.
        schedule: ``"serial"`` (Fig. 9(b) turns) or ``"parallel"``
            (pipelined conflict-free rounds); see the module docstring.
    """

    STAGES = STAGES_CODED

    def __init__(
        self,
        comm: Comm,
        files: Dict[int, RecordBatch],
        subsets: Dict[int, Subset],
        partitioner: RangePartitioner,
        redundancy: int,
        schedule: str = "serial",
    ) -> None:
        super().__init__(comm)
        check_schedule(schedule)
        self.files = files
        self.subsets = subsets
        self.partitioner = partitioner
        self.redundancy = redundancy
        self.schedule = schedule
        #: Telemetry from the pipelined engine (parallel schedule only).
        self.shuffle_telemetry: Dict[str, float] = {}

    def run(self) -> RecordBatch:
        rank = self.rank

        with self.stage("codegen"):
            plan: CodingPlan = build_coding_plan(self.size, self.redundancy)
            my_groups = plan.groups_of_node[rank]
            rounds = (
                plan.rounds_for("parallel")
                if self.schedule == "parallel"
                else None
            )

        with self.stage("map"):
            kept = map_node_coded(rank, self.files, self.subsets, self.partitioner)
            # Store keyed by (subset, target); batches of a subset concatenated.
            store: Dict[Tuple[Subset, int], RecordBatch] = group_store_by_subset(
                kept, self.subsets
            )

        serialized: Dict[Tuple[Subset, int], bytes] = {}

        def lookup(subset: Subset, target: int) -> bytes:
            return serialized[(subset, target)]

        # Serialize the intermediate store once (local compute, charged to
        # encode); packet XOR encoding is driven by the schedule executor —
        # eagerly for serial, lazily per round for parallel.
        with self.stage("encode"):
            serialized.update(
                (key, batch.to_bytes()) for key, batch in store.items()
            )

        def encode_for(gidx: int):
            # Gather-list wire form: the XOR arena travels as a payload
            # part next to the header, never joined into one buffer.
            return encode_packet(rank, plan.groups[gidx], lookup).to_parts()

        def recover(gidx: int, payloads: Dict[int, bytes]) -> RecordBatch:
            return self._recover_group(plan, gidx, payloads, lookup)

        decoded_batches, self.shuffle_telemetry = execute_multicast_shuffle(
            self,
            plan.groups,
            my_groups,
            self.schedule,
            plan.schedule,
            rounds,
            MULTICAST_TAG_BASE,
            encode_for,
            recover,
        )

        with self.stage("reduce"):
            own = [
                batch
                for (subset, target), batch in store.items()
                if target == rank and rank in subset
            ]
            decoded = [decoded_batches[gidx] for gidx in my_groups]
            result = sort_batch(RecordBatch.concat(own + decoded))
        return result

    def _recover_group(
        self,
        plan: CodingPlan,
        gidx: int,
        raw_packets: Dict[int, bytes],
        lookup,
    ) -> RecordBatch:
        """Algorithm 2 for one group: raw packets -> recovered record batch.

        Zero-copy end to end: parsed packets keep their payloads as views
        into the receive arenas, ``recover_intermediate`` decodes every
        segment into one preallocated output buffer, and the batch wraps
        that buffer read-only without copying (the Reduce-stage sort copies
        into its own output anyway).
        """
        packets = {
            sender: CodedPacket.from_bytes(raw)
            for sender, raw in raw_packets.items()
        }
        raw_value = recover_intermediate(
            self.rank, plan.groups[gidx], packets, lookup
        )
        return RecordBatch.from_buffer(raw_value)


def _coded_terasort_program(comm: Comm, payload: Tuple) -> CodedTeraSortProgram:
    """Pool builder (module-level for pickling): payload -> node program."""
    files, subsets, partitioner, redundancy, schedule = payload
    return CodedTeraSortProgram(
        comm, files, subsets, partitioner, redundancy, schedule=schedule
    )


def check_coded_params(size: int, redundancy: int, schedule: str) -> None:
    """Validate ``(K, r, schedule)``; raises :class:`ValueError` early.

    CodedPlacement itself allows r = K (one file everywhere), but the
    coded shuffle needs multicast groups of r+1 <= K nodes; rejecting
    before any cluster work keeps the error free of job-failure wrapping.
    """
    if not 1 <= redundancy <= size - 1:
        raise ValueError(
            f"redundancy must be in [1, K-1] = [1, {size - 1}], "
            f"got {redundancy}"
        )
    check_schedule(schedule)


def prepare_coded_terasort(
    size: int,
    data: RecordBatch,
    redundancy: int,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    schedule: str = "serial",
) -> PreparedJob:
    """Compile one CodedTeraSort over ``size`` nodes into a pool job.

    Coordinator-side: the shared partitioner, the coded placement, and
    each rank's ``{file_id: data}`` / ``{file_id: subset}`` maps.  The
    coding plan itself is rebuilt by every node during CodeGen (that cost
    is part of the measured stage, as in the paper) and once more in
    ``finalize`` for the run metadata.
    """
    check_coded_params(size, redundancy, schedule)
    partitioner = _build_partitioner(
        data, size, sampled_partitioner, sample_size, sample_seed
    )
    placement = CodedPlacement(size, redundancy, batches_per_subset)
    assignments = placement.place(data)

    per_node_files: List[Dict[int, RecordBatch]] = [dict() for _ in range(size)]
    per_node_subsets: List[Dict[int, Subset]] = [dict() for _ in range(size)]
    for fa in assignments:
        for node in fa.subset:
            per_node_files[node][fa.file_id] = fa.data
            per_node_subsets[node][fa.file_id] = fa.subset

    payloads: List[Any] = [
        (
            per_node_files[rank],
            per_node_subsets[rank],
            partitioner,
            redundancy,
            schedule,
        )
        for rank in range(size)
    ]
    input_records = len(data)

    def finalize(result: ClusterResult) -> SortRun:
        plan = build_coding_plan(size, redundancy)
        meta = {
            "algorithm": "coded_terasort",
            "num_nodes": size,
            "redundancy": redundancy,
            "batches_per_subset": batches_per_subset,
            "input_records": input_records,
            "num_files": placement.num_files,
            "files_per_node": placement.files_per_node(),
            "num_groups": plan.num_groups,
            "total_multicasts": plan.total_multicasts,
            "schedule": schedule,
            "schedule_turns": len(plan.schedule),
        }
        if schedule == "parallel":
            meta.update(parallel_schedule_meta(plan, result.per_node_times))
        return SortRun(
            partitions=list(result.results),
            stage_times=result.stage_times,
            traffic=result.traffic,
            partitioner=partitioner,
            meta=meta,
        )

    return PreparedJob(
        builder=_coded_terasort_program, payloads=payloads, finalize=finalize
    )


def run_coded_terasort(
    cluster,
    data: RecordBatch,
    redundancy: int,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
    schedule: str = "serial",
) -> SortRun:
    """Sort ``data`` with CodedTeraSort on ``cluster`` (one-shot shim).

    Equivalent to submitting a :class:`repro.session.CodedTeraSortSpec`
    to a fresh one-job :class:`repro.session.Session`; amortize the
    cluster setup across many sorts by holding a session open instead.

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster`.
        data: the full input batch.
        redundancy: ``r ∈ [1, K-1]`` — each file is mapped on ``r`` nodes.
        batches_per_subset: input files per node subset (``N = b * C(K, r)``).
        sampled_partitioner / sample_size / sample_seed: see
            :func:`repro.core.terasort.run_terasort`.
        schedule: ``"serial"`` (paper, Fig. 9(b)) or ``"parallel"``
            (pipelined conflict-free rounds); output is byte-identical.

    Returns:
        A :class:`~repro.core.terasort.SortRun` whose ``meta`` carries the
        coding-plan statistics (groups, packets, schedule turns/rounds).
    """
    from repro.session import CodedTeraSortSpec, Session

    with Session(cluster) as session:
        return session.submit(
            CodedTeraSortSpec(
                data=data,
                redundancy=redundancy,
                batches_per_subset=batches_per_subset,
                sampled_partitioner=sampled_partitioner,
                sample_size=sample_size,
                sample_seed=sample_seed,
                schedule=schedule,
            )
        ).result()
