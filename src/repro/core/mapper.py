"""The Map stage: hashing files into per-partition intermediate values.

§III-A3: hashing file ``F`` under a ``K``-way partitioner produces the
intermediate values ``{I^1_F, ..., I^K_F}`` where ``I^j_F`` holds the KV
pairs of ``F`` whose keys fall in partition ``P_j``.  The split is done with
one vectorized stable argsort over partition indices (a counting-sort-style
grouping), no per-record Python work.

§IV-B adds the coded *retention rule*: after mapping file ``F_S`` on node
``k`` (``k ∈ S``), only ``I^k_S`` (needed by ``k`` itself) and
``{I^i_S : i ∉ S}`` (to be encoded for nodes outside ``S``) are kept —
``I^i_S`` for other ``i ∈ S`` is discarded because node ``i`` computes it
locally.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.partitioner import RangePartitioner
from repro.kvpairs import kernels
from repro.kvpairs.records import RecordBatch
from repro.utils.subsets import Subset


def hash_file(
    data: RecordBatch, partitioner: RangePartitioner
) -> List[RecordBatch]:
    """Split ``data`` into ``K`` per-partition intermediate values.

    Returns:
        ``out[j] = I^j`` — the records of ``data`` whose key falls in
        partition ``j``; concatenating all outputs is a permutation of the
        input.
    """
    k = partitioner.num_partitions
    n = len(data)
    if n == 0:
        return [RecordBatch.empty() for _ in range(k)]
    idx = partitioner.partition_indices(data)
    if kernels.use_ovc():
        order, counts = kernels.group_by_partition(idx, k)
    else:
        order = np.argsort(idx, kind="stable")
        counts = np.bincount(idx, minlength=k)
    grouped = data.take(order)
    offsets = np.cumsum(counts)[:-1]
    return grouped.split_at([int(o) for o in offsets])


def map_node_uncoded(
    file_data: RecordBatch,
    partitioner: RangePartitioner,
) -> List[RecordBatch]:
    """TeraSort's Map at one node: hash its single file (keep everything)."""
    return hash_file(file_data, partitioner)


def map_node_coded(
    node: int,
    files: Dict[int, RecordBatch],
    subsets: Dict[int, Subset],
    partitioner: RangePartitioner,
) -> Dict[int, Dict[int, RecordBatch]]:
    """CodedTeraSort's Map at ``node``: hash every local file, apply retention.

    Args:
        node: this node's rank ``k``.
        files: file id -> file data, the files placed on this node.
        subsets: file id -> node subset ``S`` of that file (``node ∈ S``).
        partitioner: the shared ``K``-way partitioner.

    Returns:
        ``kept[file_id][j] = I^j_S`` for exactly the retained targets:
        ``j == node`` and every ``j ∉ S``.
    """
    kept: Dict[int, Dict[int, RecordBatch]] = {}
    for file_id, data in files.items():
        subset = subsets[file_id]
        if node not in subset:
            raise ValueError(
                f"node {node} asked to map file {file_id} of subset {subset}"
            )
        parts = hash_file(data, partitioner)
        in_subset = set(subset)
        retained: Dict[int, RecordBatch] = {node: parts[node]}
        for j in range(partitioner.num_partitions):
            if j not in in_subset:
                retained[j] = parts[j]
        kept[file_id] = retained
    return kept


def map_output_bytes(kept: Dict[int, Dict[int, RecordBatch]]) -> int:
    """Total retained intermediate bytes (memory-footprint diagnostics)."""
    return sum(
        batch.nbytes for per_file in kept.values() for batch in per_file.values()
    )
