"""The paper's contribution: TeraSort, CodedTeraSort, and Coded MapReduce.

Layering (bottom-up):

* :mod:`repro.core.partitioner` — key-domain partitioning (§III-A2);
* :mod:`repro.core.placement` — file placement: uncoded (§III-A1) and the
  structured redundant placement over ``r``-subsets (§IV-A);
* :mod:`repro.core.mapper` — the Map-stage hash of files into per-partition
  intermediate values (§III-A3, §IV-B), with the coded retention rule;
* :mod:`repro.core.groups` — multicast groups and the CodeGen stage (§V-A);
* :mod:`repro.core.encoding` / :mod:`repro.core.decoding` — Algorithms 1
  and 2 (§IV-C, §IV-E);
* :mod:`repro.core.terasort` / :mod:`repro.core.coded_terasort` — the two
  distributed sort node programs (§III, §IV) plus driver helpers;
* :mod:`repro.core.cmr` — the general Coded MapReduce engine of §II, with
  ready-made jobs (WordCount, Grep, SelfJoin, InvertedIndex) in
  :mod:`repro.core.jobs`;
* :mod:`repro.core.theory` — closed-form loads and run-time model
  (Eqs. (2)-(5), Fig. 2).
"""

from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement, UncodedPlacement
from repro.core.terasort import TeraSortProgram, run_terasort
from repro.core.coded_terasort import CodedTeraSortProgram, run_coded_terasort
from repro.core.theory import (
    coded_comm_load,
    uncoded_comm_load,
    optimal_r,
    predicted_total_time,
)

__all__ = [
    "RangePartitioner",
    "CodedPlacement",
    "UncodedPlacement",
    "TeraSortProgram",
    "run_terasort",
    "CodedTeraSortProgram",
    "run_coded_terasort",
    "coded_comm_load",
    "uncoded_comm_load",
    "optimal_r",
    "predicted_total_time",
]
