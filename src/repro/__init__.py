"""Coded TeraSort — a full reproduction of Li et al., IPDPS Workshops 2017.

CodedTeraSort trades redundant Map computation for an ``r``-fold reduction
of the shuffle bottleneck in distributed sorting, via structured file
placement and XOR-coded multicasts (Coded MapReduce).  This package
provides:

* the complete functional system — TeraSort and CodedTeraSort node
  programs running on real communication backends (threads or processes
  over sockets, with optional 100 Mbps pacing), plus the general Coded
  MapReduce engine with WordCount / Grep / SelfJoin / InvertedIndex jobs;
* a session API: a :class:`Session` owns a persistent worker pool (the
  fork + socket-mesh setup is paid once, as on the paper's standing EC2
  cluster) and runs many declarative jobs — :class:`TeraSortSpec`,
  :class:`CodedTeraSortSpec`, :class:`MapReduceSpec` — each submission
  returning a :class:`JobHandle` future with per-job times and traffic;
* an out-of-core data plane: job inputs are :class:`DataSource`
  descriptors (:class:`InlineSource` by value, :class:`FileSource` /
  :class:`TeragenSource` read or generated worker-side, so the control
  plane ships ~100-byte descriptors instead of record payloads), and a
  ``memory_budget`` switches the sort programs to chunked Map, spilled
  sorted runs, and a streaming external-merge Reduce — datasets 8x the
  per-worker budget sort byte-identically to the in-memory path;
* a fault-tolerant live runtime: worker heartbeats with driver-side
  failure detection (typed :class:`WorkerFailure`), automatic
  byte-identical job retry (``Session(max_retries=...)``), speculative
  re-execution of straggling map shards
  (``TeraSortSpec(speculation=True)``), and a deterministic
  fault-injection harness (``$REPRO_FAULT_PLAN``) that drives the
  chaos tests and straggler benchmarks;
* a multi-tenant sort service: the ``repro serve`` daemon
  (:class:`SortService`) owns one standing TCP worker mesh and runs
  many clients' jobs *concurrently on per-job worker subsets*, with
  admission control, per-tenant quotas (:class:`TenantQuota`), and
  fair-share/priority scheduling; :class:`ServiceClient` is the thin
  submit/status side returning :class:`JobHandle`-compatible futures;
* a discrete-event cluster simulator calibrated to the paper's EC2 testbed
  that regenerates every table and figure at full 12 GB scale;
* the closed-form theory (Eq. (2)-(5)) and an experiment harness producing
  paper-vs-measured reports.

Quickstart (:func:`connect` picks the backend from a URL —
``inproc://K`` worker threads, ``proc://K`` forked processes,
``tcp://HOST:PORT`` a real multi-host mesh)::

    from repro import Session, TeraSortSpec, CodedTeraSortSpec, connect, teragen

    data = teragen(100_000, seed=1)
    with Session(connect("inproc://6")) as session:
        base = session.submit(TeraSortSpec(data=data))
        coded = session.submit(CodedTeraSortSpec(data=data, redundancy=2))
        # JobHandle.result() -> SortRun; partitions are the sorted shards
        ratio = (base.result().traffic.load_bytes("shuffle")
                 / coded.result().traffic.load_bytes("shuffle"))

The legacy one-shot entry points (:func:`run_terasort`,
:func:`run_coded_terasort`, :func:`run_mapreduce`) remain as thin
single-job session shims.  See README.md for the architecture overview
and EXPERIMENTS.md for the reproduction results.
"""

from repro.cluster import connect
from repro.core.coded_terasort import CodedTeraSortProgram, run_coded_terasort
from repro.core.cmr import MapReduceJob, run_mapreduce
from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement, UncodedPlacement
from repro.core.terasort import SortRun, TeraSortProgram, run_terasort
from repro.core.theory import (
    coded_comm_load,
    optimal_r,
    predicted_total_time,
    uncoded_comm_load,
)
from repro.kvpairs.datasource import (
    DataSource,
    FileSource,
    InlineSource,
    TeragenSource,
)
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.teragen import teragen, teragen_skewed, teragen_to_file
from repro.kvpairs.validation import (
    validate_sorted_iter,
    validate_sorted_permutation,
)
from repro.runtime.api import MulticastMode
from repro.runtime.errors import RuntimeTimeoutError, WorkerFailure
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster
from repro.scalable.program import run_grouped_coded_terasort
from repro.scalable.sim import simulate_grouped_coded_terasort
from repro.service import (
    AdmissionError,
    QueueFull,
    QuotaExceeded,
    ServiceClient,
    ServiceJobHandle,
    ServiceRejected,
    ServiceStats,
    SortService,
    TenantQuota,
)
from repro.session import (
    CodedTeraSortSpec,
    JobAttempt,
    JobHandle,
    JobSpec,
    MapReduceSpec,
    Session,
    TeraSortSpec,
)
from repro.sim.costmodel import EC2CostModel
from repro.sim.runner import simulate_coded_terasort, simulate_terasort
from repro.stragglers.runner import straggler_comparison
from repro.wireless.wdc import run_wireless_sort

__version__ = "1.0.0"

__all__ = [
    "connect",
    "Session",
    "JobSpec",
    "JobHandle",
    "JobAttempt",
    "WorkerFailure",
    "RuntimeTimeoutError",
    "TeraSortSpec",
    "CodedTeraSortSpec",
    "MapReduceSpec",
    "CodedTeraSortProgram",
    "run_coded_terasort",
    "MapReduceJob",
    "run_mapreduce",
    "RangePartitioner",
    "CodedPlacement",
    "UncodedPlacement",
    "SortRun",
    "TeraSortProgram",
    "run_terasort",
    "coded_comm_load",
    "uncoded_comm_load",
    "optimal_r",
    "predicted_total_time",
    "RecordBatch",
    "DataSource",
    "InlineSource",
    "FileSource",
    "TeragenSource",
    "teragen",
    "teragen_skewed",
    "teragen_to_file",
    "validate_sorted_iter",
    "validate_sorted_permutation",
    "MulticastMode",
    "ThreadCluster",
    "ProcessCluster",
    "TcpCluster",
    "SortService",
    "ServiceClient",
    "ServiceJobHandle",
    "ServiceRejected",
    "ServiceStats",
    "TenantQuota",
    "AdmissionError",
    "QueueFull",
    "QuotaExceeded",
    "EC2CostModel",
    "simulate_terasort",
    "simulate_coded_terasort",
    "run_grouped_coded_terasort",
    "simulate_grouped_coded_terasort",
    "straggler_comparison",
    "run_wireless_sort",
    "__version__",
]
