"""Payload-copy accounting for the zero-copy shuffle data plane.

The data plane's performance contract is *counted in copies*: a record
batch should be materialized once at the producer and land once in the
receiver's arena, with every intermediate hop operating on buffer views.
This module gives that contract a measurable witness: every library site
that still copies payload bytes calls :func:`count_copy`, and
``benchmarks/bench_datapath.py`` wraps its timed loops in :func:`track`
to report copied-bytes per payload-byte for each lane.

Accounting convention: the receive-side arena fill (``recv_into`` moving
bytes out of the kernel) is the transfer itself and is *not* counted; any
user-space duplication of payload bytes after production or after landing
is.  Tracking is process-local (a forked worker counts its own copies and
ships the totals home in its program result) and disabled by default, so
the hot path pays one global-flag check when idle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

_lock = threading.Lock()
_enabled = False
_sites: Dict[str, int] = {}


def enabled() -> bool:
    """True while a :func:`track` scope is active."""
    return _enabled


def count_copy(nbytes: int, site: str) -> None:
    """Record ``nbytes`` of payload copied at ``site`` (no-op when idle)."""
    if not _enabled or nbytes <= 0:
        return
    with _lock:
        _sites[site] = _sites.get(site, 0) + nbytes


@contextmanager
def track() -> Iterator[Dict[str, int]]:
    """Enable copy counting; yields the ``site -> bytes`` dict.

    The dict is filled on scope exit (and is safe to read afterwards).
    Scopes do not nest: the innermost exit disables counting globally.
    """
    global _enabled
    with _lock:
        _sites.clear()
    _enabled = True
    counts: Dict[str, int] = {}
    try:
        yield counts
    finally:
        _enabled = False
        with _lock:
            counts.update(_sites)


def snapshot() -> Dict[str, int]:
    """Current ``site -> bytes copied`` totals."""
    with _lock:
        return dict(_sites)


def total_copied() -> int:
    """Total payload bytes copied since the current scope began."""
    with _lock:
        return sum(_sites.values())
