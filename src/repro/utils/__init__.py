"""Shared utilities: combinatorics, timing, and text-table formatting.

These helpers are deliberately dependency-light; everything above them
(placement, coding, simulator, experiment harness) builds on this layer.
"""

from repro.utils.subsets import (
    binomial,
    k_subsets,
    subset_rank,
    subset_unrank,
    subsets_containing,
)
from repro.utils.timer import Stopwatch, StageTimes
from repro.utils.tables import format_table

__all__ = [
    "binomial",
    "k_subsets",
    "subset_rank",
    "subset_unrank",
    "subsets_containing",
    "Stopwatch",
    "StageTimes",
    "format_table",
]
