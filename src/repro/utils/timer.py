"""Per-stage wall-clock accounting.

Both sort drivers report a per-stage breakdown in the style of the paper's
Tables I-III (Map / Pack / Shuffle / Unpack / Reduce for TeraSort; CodeGen /
Map / Encode / Shuffle / Decode / Reduce for CodedTeraSort).  Each node runs a
:class:`Stopwatch`; the driver merges them into a :class:`StageTimes` with the
barrier semantics the paper uses (a stage ends when the *slowest* node ends,
so merged stage time is the max over nodes).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping


class Stopwatch:
    """Accumulates wall-clock time into named stages.

    Accounting is **exclusive**: when stage scopes nest (an overlapped
    engine charging a slice of work inside one stage's span to another
    stage), the inner scope's elapsed time is subtracted from the
    enclosing scope, so per-stage times always sum to wall-clock time.
    Nesting is tracked per thread and the accumulator is lock-protected,
    so concurrent stages on one program (e.g. a heartbeat thread timing
    alongside the main loop) never double-count.  Raw :meth:`add` calls
    bypass the nesting logic (pseudo-stages ride on top of real spans).

    Usage::

        sw = Stopwatch()
        with sw.stage("map"):
            ...
        sw.times()["map"]
    """

    def __init__(self) -> None:
        self._times: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def stage(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Directly add ``seconds`` to stage ``name`` (used by simulators)."""
        with self._lock:
            self._times[name] = self._times.get(name, 0.0) + float(seconds)

    def times(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._times)

    def _stack(self) -> List["_StageContext"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack


class _StageContext:
    """One timed scope.  After exit, :attr:`elapsed` is the full span and
    :attr:`exclusive` the span minus any scopes nested inside it (what was
    charged to the stage)."""

    __slots__ = ("_sw", "_name", "_start", "_child", "elapsed", "exclusive")

    def __init__(self, sw: Stopwatch, name: str) -> None:
        self._sw = sw
        self._name = name
        self._start = 0.0
        self._child = 0.0
        self.elapsed = 0.0
        self.exclusive = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        self._child = 0.0
        self._sw._stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        stack = self._sw._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate out-of-order exits (generator scopes)
            try:
                stack.remove(self)
            except ValueError:
                pass
        self.exclusive = max(0.0, self.elapsed - self._child)
        self._sw.add(self._name, self.exclusive)
        if stack:
            stack[-1]._child += self.elapsed


@dataclass
class StageTimes:
    """A merged per-stage breakdown.

    Attributes:
        stages: ordered stage names.
        seconds: stage name -> seconds (max over participating nodes).
    """

    stages: List[str]
    seconds: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def merge_max(
        cls, stages: Iterable[str], per_node: Iterable[Mapping[str, float]]
    ) -> "StageTimes":
        """Merge per-node stopwatch dicts by taking the max per stage.

        Stages missing on a node count as 0 there.
        """
        stages = list(stages)
        merged: Dict[str, float] = {s: 0.0 for s in stages}
        for times in per_node:
            for s in stages:
                v = float(times.get(s, 0.0))
                if v > merged[s]:
                    merged[s] = v
        return cls(stages=stages, seconds=merged)

    @property
    def total(self) -> float:
        return sum(self.seconds.get(s, 0.0) for s in self.stages)

    def __getitem__(self, stage: str) -> float:
        return self.seconds[stage]

    def as_row(self) -> List[float]:
        """Stage seconds in stage order, followed by the total."""
        return [self.seconds.get(s, 0.0) for s in self.stages] + [self.total]

    def scaled(self, factor: float) -> "StageTimes":
        """A copy with every stage multiplied by ``factor``."""
        return StageTimes(
            stages=list(self.stages),
            seconds={s: v * factor for s, v in self.seconds.items()},
        )
