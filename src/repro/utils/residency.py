"""Record-buffer residency accounting for the out-of-core data plane.

The out-of-core pipeline's memory contract is *counted in resident record
bytes*: a program running under a ``memory_budget`` must never hold more
than the budget in buffered records — everything past it must live in
spill files.  This module gives that contract a measurable witness, the
way :mod:`repro.utils.copytrack` does for the zero-copy contract: every
structure that retains record bytes (map-side partition accumulators,
external-sort pending chunks, merge cursor windows, decoded intermediates,
materialized outputs) charges a :class:`ResidencyMeter`, and discharges it
when the bytes are spilled or released.

Accounting convention (mirroring copytrack's):

* **counted** — record payload bytes the program is *retaining* in user
  space: accumulated partition chunks waiting to be sorted/sent, loaded
  merge windows, recovered intermediate values held for the reducer, and
  any fully materialized output batch;
* **not counted** — transient transport buffers (send gather lists,
  receive arenas that are drained and released within one shuffle turn)
  and mmap-backed views of spill files (those pages are the OS page
  cache's to keep or evict — they are the *disk* side of the contract).

Unlike copytrack the meter is a per-program *object*, not process-global:
the threaded backend runs K node programs in one process, and each must
account (and be asserted) independently.  Peaks are exported through the
stopwatch's pseudo-stage channel (``oc_peak_resident_bytes`` etc. in
``ClusterResult.per_node_times``) so forked and remote workers ship them
home with zero extra plumbing.
"""

from __future__ import annotations

from typing import Dict


class ResidencyMeter:
    """Tracks resident record bytes, their peak, and spill volume."""

    __slots__ = ("_resident", "_peak", "_spilled_bytes", "_spill_runs", "_sites")

    def __init__(self) -> None:
        self._resident = 0
        self._peak = 0
        self._spilled_bytes = 0
        self._spill_runs = 0
        self._sites: Dict[str, int] = {}

    # -- residency ---------------------------------------------------------

    def charge(self, nbytes: int, site: str = "") -> None:
        """Record ``nbytes`` of record payload becoming resident."""
        if nbytes <= 0:
            return
        self._resident += nbytes
        if self._resident > self._peak:
            self._peak = self._resident
        if site:
            self._sites[site] = self._sites.get(site, 0) + nbytes

    def discharge(self, nbytes: int) -> None:
        """Record ``nbytes`` of resident payload being spilled or released."""
        if nbytes <= 0:
            return
        self._resident = max(0, self._resident - nbytes)

    # -- spill volume ------------------------------------------------------

    def spilled(self, nbytes: int, runs: int = 1) -> None:
        """Record ``nbytes`` written to spill storage as ``runs`` run(s)."""
        if nbytes > 0:
            self._spilled_bytes += nbytes
        self._spill_runs += max(0, runs)

    # -- readouts ----------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return self._resident

    @property
    def peak_resident_bytes(self) -> int:
        return self._peak

    @property
    def spilled_bytes(self) -> int:
        return self._spilled_bytes

    @property
    def spill_runs(self) -> int:
        return self._spill_runs

    def sites(self) -> Dict[str, int]:
        """Cumulative charged bytes per site (diagnostics)."""
        return dict(self._sites)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResidencyMeter(resident={self._resident}, peak={self._peak}, "
            f"spilled={self._spilled_bytes} in {self._spill_runs} runs)"
        )
