"""Plain-text / markdown table rendering for experiment reports.

The experiment harness renders every reproduced table both to the console
(for ``pytest -s`` / CLI runs) and to markdown fragments that EXPERIMENTS.md
is assembled from.  Numbers are formatted with a fixed number of decimals so
paper-vs-measured rows line up.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(cell: Cell, decimals: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{decimals}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    decimals: int = 2,
    markdown: bool = False,
) -> str:
    """Render a table as aligned text or GitHub markdown.

    Args:
        headers: column titles.
        rows: row cells; floats formatted to ``decimals`` places.
        decimals: float precision.
        markdown: emit a pipe table instead of aligned plain text.

    Returns:
        The rendered table, newline-terminated.
    """
    str_rows: List[List[str]] = [[_fmt(c, decimals) for c in row] for row in rows]
    cols = len(headers)
    for row in str_rows:
        if len(row) != cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {cols}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        if markdown:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(list(headers))]
    if markdown:
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out) + "\n"
