"""Combinatorics over node subsets.

CodedTeraSort indexes input files by ``r``-subsets of the node set
``{0, ..., K-1}`` and multicast groups by ``(r+1)``-subsets.  This module
provides the subset enumeration, and a *combinadic* ranking/unranking pair so
that subsets can be addressed by dense integer ids without materializing the
full list (useful when ``C(K, r)`` is large, e.g. ``C(20, 5) = 15504``).

All subsets are represented as strictly increasing tuples of ints, and the
enumeration order is lexicographic, matching the serial schedules in the
paper's Fig. 9.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterator, Sequence, Tuple

Subset = Tuple[int, ...]


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` (0 when out of range).

    Thin wrapper over :func:`math.comb` that tolerates negative / oversized
    ``k`` the way combinatorial identities expect.
    """
    if k < 0 or k > n or n < 0:
        return 0
    return comb(n, k)


def k_subsets(n: int, k: int) -> Iterator[Subset]:
    """Yield all ``k``-subsets of ``range(n)`` in lexicographic order.

    >>> list(k_subsets(4, 2))
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    """
    if k < 0 or k > n:
        return iter(())
    return combinations(range(n), k)


def subset_rank(subset: Sequence[int], n: int) -> int:
    """Rank of ``subset`` among the ``C(n, k)`` lexicographic ``k``-subsets.

    Uses the standard combinadic formula: for subset ``c_0 < c_1 < ... <
    c_{k-1}`` the rank counts, position by position, how many subsets start
    with a smaller element.

    Raises:
        ValueError: if the subset is not strictly increasing or out of range.
    """
    k = len(subset)
    prev = -1
    for c in subset:
        if c <= prev:
            raise ValueError(f"subset must be strictly increasing, got {subset!r}")
        prev = c
    if subset and (subset[0] < 0 or subset[-1] >= n):
        raise ValueError(f"subset {subset!r} out of range for n={n}")

    rank = 0
    prev = -1
    remaining = k
    for i, c in enumerate(subset):
        # Count subsets whose i-th element is in (prev, c): choosing any such
        # element x leaves C(n - x - 1, k - i - 1) completions.
        for x in range(prev + 1, c):
            rank += binomial(n - x - 1, remaining - 1)
        prev = c
        remaining -= 1
    return rank


def subset_unrank(rank: int, n: int, k: int) -> Subset:
    """Inverse of :func:`subset_rank`: the ``rank``-th lexicographic subset.

    Raises:
        ValueError: if ``rank`` is not in ``[0, C(n, k))``.
    """
    total = binomial(n, k)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range [0, {total}) for C({n},{k})")
    out = []
    x = 0
    remaining = k
    while remaining > 0:
        count = binomial(n - x - 1, remaining - 1)
        if rank < count:
            out.append(x)
            remaining -= 1
        else:
            rank -= count
        x += 1
    return tuple(out)


def subsets_containing(n: int, k: int, element: int) -> Iterator[Subset]:
    """Yield the ``k``-subsets of ``range(n)`` that contain ``element``.

    There are ``C(n-1, k-1)`` of them; yielded in the same lexicographic
    order they would appear within :func:`k_subsets`.
    """
    if not 0 <= element < n:
        raise ValueError(f"element {element} out of range(n={n})")
    others = [x for x in range(n) if x != element]
    for rest in combinations(others, k - 1):
        yield tuple(sorted(rest + (element,)))


def complement(subset: Sequence[int], n: int) -> Subset:
    """The elements of ``range(n)`` not in ``subset`` (sorted)."""
    s = set(subset)
    return tuple(x for x in range(n) if x not in s)


def without(subset: Sequence[int], element: int) -> Subset:
    """``subset`` with ``element`` removed (must be present)."""
    if element not in subset:
        raise ValueError(f"{element} not in subset {subset!r}")
    return tuple(x for x in subset if x != element)
