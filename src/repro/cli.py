"""Command-line interface.

Subcommands::

    codedterasort gen       — write a teragen-format dataset to disk
    codedterasort sort      — sort synthetic or on-disk data (threads /
                              processes, or a multi-host TCP cluster via
                              --cluster tcp://); --input FILE plus
                              --memory-budget BYTES runs out-of-core
    codedterasort worker    — join a tcp:// coordinator as one worker agent
    codedterasort serve     — run the multi-tenant sort service daemon
                              (standing worker mesh + TCP control port;
                              concurrent jobs on per-job worker subsets)
    codedterasort submit    — submit one sort job to a running service
    codedterasort status    — job table + per-tenant stats of a service
    codedterasort simulate  — one simulated run at paper scale
    codedterasort tables    — regenerate Tables I-III
    codedterasort figures   — Fig. 2 + trend sweeps
    codedterasort report    — full reproduction report (optionally to
                              EXPERIMENTS.md)
    codedterasort theory    — closed-form loads and optimal r for a config

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_cluster(args: argparse.Namespace):
    """All CLI paths route through the unified repro.connect factory."""
    from repro.cluster import connect

    rate = args.rate_mbps * 125_000 if args.rate_mbps else None
    if getattr(args, "cluster", None):
        return connect(
            args.cluster,
            size=args.nodes,
            rate_bytes_per_s=rate,
            connect_timeout=args.connect_timeout,
            handshake_timeout=args.handshake_timeout,
        )
    if args.backend == "process":
        return connect(f"proc://{args.nodes}", rate_bytes_per_s=rate)
    return connect(f"inproc://{args.nodes}")


def _sort_spec(args: argparse.Namespace, data, source):
    from repro.session import CodedTeraSortSpec, TeraSortSpec

    fields = dict(
        data=data,
        input=source,
        memory_budget=args.memory_budget,
        output_dir=args.output,
    )
    if args.overlap and args.speculation:
        raise SystemExit(
            "--overlap and --speculation are mutually exclusive: both "
            "replace the shuffle with their own event loop (hide "
            "communication with --overlap, or run stragglers with "
            "--speculation)"
        )
    if args.algorithm == "coded":
        if args.speculation:
            raise SystemExit(
                "--speculation applies to --algorithm terasort only "
                "(the coded shuffle has no independent map shards to "
                "re-execute)"
            )
        return CodedTeraSortSpec(
            redundancy=args.redundancy, schedule=args.schedule,
            overlap=args.overlap, **fields
        )
    return TeraSortSpec(
        speculation=args.speculation, overlap=args.overlap, **fields
    )


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.core.outofcore import MIN_MEMORY_BUDGET
    from repro.kvpairs.teragen import teragen_to_file

    written = teragen_to_file(args.out, args.records, seed=args.seed)
    print(f"wrote {args.records} records ({written} bytes, seed {args.seed}) "
          f"to {args.out}")
    print(f"sort it with: repro sort --input {args.out} "
          f"--memory-budget {max(written // 8, MIN_MEMORY_BUDGET)}")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.kvpairs.datasource import FileSource
    from repro.kvpairs.teragen import teragen
    from repro.kvpairs.validation import validate_sorted_permutation
    from repro.session import Session
    from repro.utils.tables import format_table

    if args.input is not None:
        # On-disk input: the control plane ships per-rank FileSource
        # descriptors; workers mmap their own ranges (the path must
        # resolve on every worker's host).
        data = None
        source = FileSource(args.input)
        n_records = source.num_records
    else:
        data = teragen(args.records, seed=args.seed)
        source = None
        n_records = args.records
    cluster = _build_cluster(args)
    backend = args.backend
    if getattr(args, "cluster", None):
        backend = f"tcp ({cluster.address})"
        print(f"rendezvous listening on {cluster.address} — start workers "
              f"with: repro worker --join {cluster.address}")
    with Session(
        cluster,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        failure_timeout=args.failure_timeout,
    ) as session:
        spec = _sort_spec(args, data, source)
        if args.repeat > 1:
            # Back-to-back jobs on one standing worker pool: the cluster
            # setup is paid once, so per-job wall time is the job itself.
            import time as _time

            t0 = _time.perf_counter()
            handles = [session.submit(spec) for _ in range(args.repeat)]
            runs = [h.result() for h in handles]
            elapsed = _time.perf_counter() - t0
            run = runs[-1]
            print(f"session: {args.repeat} jobs in {elapsed:.3f}s "
                  f"({args.repeat / elapsed:.2f} jobs/s on one worker pool)")
        else:
            run = session.submit(spec).result()
    if getattr(args, "cluster", None):
        cluster.close()
    from repro.kvpairs.records import RecordBatch

    if data is not None and all(
        isinstance(p, RecordBatch) for p in run.partitions
    ):
        validate_sorted_permutation(data, run.partitions)
        verdict = "output valid"
    else:
        # Streaming validation — constant memory — whenever the input is
        # on disk or the output came back as part-file descriptors
        # (--output): global sortedness, record count, and the
        # order-independent multiset checksum against the input.
        from itertools import chain

        from repro.kvpairs.validation import checksum_iter, validate_sorted_iter

        def out_batches():
            return chain.from_iterable(
                _iter_partition(p) for p in run.partitions
            )

        n_out = validate_sorted_iter(out_batches())
        if n_out != n_records:
            raise AssertionError(
                f"record count mismatch: input {n_records}, output {n_out}"
            )
        in_batches = source.iter_batches() if source is not None else [data]
        if checksum_iter(in_batches) != checksum_iter(out_batches()):
            raise AssertionError(
                "output is not a permutation of the input "
                "(checksum mismatch)"
            )
        verdict = "output sorted, permutation verified (streaming check)"
    sched = f", schedule={args.schedule}" if args.algorithm == "coded" else ""
    print(f"sorted {n_records} records on {args.nodes} nodes "
          f"({args.algorithm}, backend={backend}{sched}) — {verdict}")
    if args.memory_budget is not None and "oc_peak_resident_bytes" in run.meta:
        print(f"out-of-core: budget {run.meta['memory_budget']} bytes, "
              f"peak resident {run.meta['oc_peak_resident_bytes']}, "
              f"spilled {run.meta['oc_spilled_bytes']} bytes "
              f"in {run.meta['oc_spill_runs']} runs")
    if args.algorithm == "coded" and args.schedule == "parallel":
        print(f"parallel schedule: {run.meta['schedule_turns']} turns packed "
              f"into {run.meta['schedule_rounds']} rounds "
              f"({run.meta['parallel_speedup']:.2f}x theoretical)")
    stages = run.stage_times
    print(format_table(
        ["stage", "seconds"],
        [[s, stages.seconds.get(s, 0.0)] for s in stages.stages]
        + [["total", stages.total]],
        decimals=4,
    ))
    if run.traffic is not None:
        from repro.kvpairs.records import RECORD_BYTES

        shuffle = run.traffic.load_bytes("shuffle")
        print(f"shuffle payload: {shuffle} bytes "
              f"({shuffle / max(1, n_records * RECORD_BYTES):.4f} of dataset)")
    return 0


def _iter_partition(part):
    """Batches of one output partition (RecordBatch or FileSource)."""
    from repro.kvpairs.datasource import DataSource

    if isinstance(part, DataSource):
        return part.iter_batches()
    return iter([part])


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.tcp import TcpClusterError, run_worker

    try:
        return run_worker(
            args.join,
            rank=args.rank,
            advertise=args.advertise,
            connect_timeout=args.connect_timeout,
            handshake_timeout=args.handshake_timeout,
            quiet=args.quiet,
        )
    except TcpClusterError as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import time

    from repro.cluster import connect
    from repro.runtime.tcp import TcpClusterError
    from repro.service import SortService, TenantQuota

    rate = args.rate_mbps * 125_000 if args.rate_mbps else None
    cluster = connect(
        args.listen,
        size=args.nodes,
        rate_bytes_per_s=rate,
        timeout=args.job_timeout,
        connect_timeout=args.connect_timeout,
        handshake_timeout=args.handshake_timeout,
        failure_timeout=args.failure_timeout,
    )
    service = SortService(
        cluster,
        control=args.control,
        max_queue_depth=args.max_queue_depth,
        default_quota=TenantQuota(
            max_concurrent=args.max_concurrent,
            max_queued=args.max_queued,
        ),
        max_retries=args.max_retries,
        shrink_to_fit=args.shrink_to_fit,
    )
    # Machine-parseable lines first (the smoke harness scrapes them),
    # before start() blocks waiting for workers.
    print(f"[serve] rendezvous {cluster.address}", flush=True)
    print(f"[serve] control {service.control_address}", flush=True)
    print(f"[serve] waiting for {args.nodes} workers — start them with: "
          f"repro worker --join {cluster.address}", flush=True)

    def _on_term(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _on_term)
    try:
        service.start()
        print("[serve] ready", flush=True)
        while not service.closed:
            time.sleep(0.25)
    except TcpClusterError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        cluster.close()
        print("[serve] stopped", flush=True)
    return 0


def _submit_spec(args: argparse.Namespace):
    from repro.kvpairs.datasource import FileSource
    from repro.kvpairs.teragen import teragen
    from repro.session import CodedTeraSortSpec, TeraSortSpec

    if args.input is not None:
        data, source = None, FileSource(args.input)
    else:
        data, source = teragen(args.records, seed=args.seed), None
    if args.algorithm == "coded":
        return CodedTeraSortSpec(
            data=data,
            input=source,
            redundancy=args.redundancy,
            schedule=args.schedule,
        )
    return TeraSortSpec(data=data, input=source)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceRejected

    client = ServiceClient(args.connect)
    spec = _submit_spec(args)
    try:
        handle = client.submit(
            spec,
            tenant=args.tenant,
            priority=args.priority,
            workers=args.workers,
        )
    except ServiceRejected as exc:
        print(f"rejected ({exc.kind}): {exc}", file=sys.stderr)
        return 3
    workers = args.workers if args.workers else "all"
    print(f"submitted job {handle.job_id} "
          f"(tenant={args.tenant}, priority={args.priority}, "
          f"workers={workers})")
    if args.no_wait:
        return 0
    try:
        run = handle.result(timeout=args.wait_timeout)
    except TimeoutError as exc:
        print(f"{exc}", file=sys.stderr)
        return 4
    except RuntimeError as exc:
        print(f"job {handle.job_id} failed: {exc}", file=sys.stderr)
        return 1
    n_out = sum(len(p) for p in run.partitions)
    print(f"job {handle.job_id} done: {len(run.partitions)} sorted "
          f"partitions, {n_out} records")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient
    from repro.utils.tables import format_table

    client = ServiceClient(args.connect)
    stats = client.stats()
    jobs = client.status(args.job)
    if args.json:
        import json

        print(json.dumps(
            {"stats": stats.to_dict(), "jobs": jobs}, indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"workers: {stats.workers_live}/{stats.workers} live; "
          f"jobs: {stats.jobs_queued} queued, {stats.jobs_running} running, "
          f"{stats.jobs_done} done, {stats.jobs_failed} failed, "
          f"{stats.jobs_rejected} rejected")
    if stats.queue_wait_p50 is not None:
        print(f"queue wait: p50 {stats.queue_wait_p50:.3f}s, "
              f"p95 {stats.queue_wait_p95:.3f}s")
    if stats.tenants:
        print(format_table(
            ["tenant", "queued", "running", "done", "failed", "rejected",
             "bytes sorted"],
            [[name, t.jobs_queued, t.jobs_running, t.jobs_done,
              t.jobs_failed, t.jobs_rejected, t.bytes_sorted]
             for name, t in sorted(stats.tenants.items())],
        ))
    if jobs:
        print(format_table(
            ["job", "tenant", "state", "workers", "attempts", "error"],
            [[j["job_id"], j["tenant"], j["state"],
              ",".join(str(w) for w in j["workers_used"]) or j["workers"],
              j["attempts"],
              (j["error"][0] if j["error"] else "")]
             for j in jobs],
        ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.runner import simulate_coded_terasort, simulate_terasort
    from repro.utils.tables import format_table

    if args.algorithm == "coded":
        rep = simulate_coded_terasort(
            args.nodes, args.redundancy, n_records=args.records
        )
    else:
        rep = simulate_terasort(args.nodes, n_records=args.records)
    print(f"simulated {rep.algorithm}: K={rep.num_nodes}, r={rep.redundancy}, "
          f"{rep.n_records} records, {rep.transfers} transfers")
    print(format_table(
        ["stage", "seconds"],
        [[s, rep.stage_times.seconds[s]] for s in rep.stage_times.stages]
        + [["total", rep.total_time]],
        decimals=2,
    ))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table
    from repro.experiments.tables import table1, table2, table3

    granularity = "turn" if args.fast else "transfer"
    for t in (table1, table2, table3):
        print(render_table(t(granularity=granularity)))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import fig2_series, sweep_k, sweep_r
    from repro.experiments.report import render_fig2, render_sweep

    print(render_fig2(fig2_series(measure=not args.fast, max_measured_r=6)))
    print(render_sweep(sweep_r(), "Speedup vs r (K=16)"))
    print(render_sweep(sweep_k(), "Speedup vs K (r=3)"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_all, write_experiments_md

    if args.output:
        write_experiments_md(args.output, fast=args.fast)
        print(f"wrote {args.output}")
    else:
        print(render_all(fast=args.fast))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.core.theory import (
        TimeModel,
        coded_comm_load,
        optimal_r,
        optimal_total_time,
        predicted_total_time,
        uncoded_comm_load,
    )
    from repro.utils.tables import format_table

    k = args.nodes
    rows = []
    for r in range(1, k + 1):
        rows.append([r, uncoded_comm_load(r, k), coded_comm_load(r, k)])
    print(format_table(["r", "L_uncoded", "L_CMR"], rows, decimals=4))
    if args.t_map is not None and args.t_shuffle is not None:
        model = TimeModel(
            t_map=args.t_map,
            t_shuffle=args.t_shuffle,
            t_reduce=args.t_reduce,
        )
        r_star = optimal_r(model, k)
        print(f"T_uncoded = {model.total_uncoded:.2f}s; "
              f"r* = {r_star}; "
              f"T(r*) = {predicted_total_time(model, r_star, k):.2f}s; "
              f"Eq.(5) bound = {optimal_total_time(model):.2f}s")
    return 0


def _cmd_stragglers(args: argparse.Namespace) -> int:
    from repro.stragglers.latency import ShiftedExponential
    from repro.stragglers.runner import (
        render_straggler_table,
        straggler_comparison,
    )

    latency = ShiftedExponential(shift=args.shift, rate=args.rate)
    results = straggler_comparison(
        num_workers=args.workers,
        recovery_threshold=args.threshold,
        iterations=args.iterations,
        latency=latency,
    )
    print(render_straggler_table(results))
    coded = next(r for r in results if r.scheme == "coded")
    print(f"\ncoded saving vs uncoded: "
          f"{100 * coded.reduction_vs_uncoded:.1f}% "
          f"([11] reports 31.3%-35.7%)")
    return 0


def _cmd_scalable(args: argparse.Namespace) -> int:
    from repro.scalable.sim import simulate_grouped_coded_terasort
    from repro.scalable.theory import grouped_vs_full
    from repro.sim.runner import simulate_coded_terasort, simulate_terasort
    from repro.utils.tables import format_table

    k, g, r = args.nodes, args.group_size, args.redundancy
    cmp = grouped_vs_full(k, g, r)
    print(f"grouped (g={g}, r={r}) vs full coded (r={cmp.full_redundancy}) "
          f"at K={k}:")
    print(f"  load {cmp.load_grouped:.3f} vs {cmp.load_full:.3f}; "
          f"CodeGen {cmp.codegen_grouped} vs {cmp.codegen_full} groups "
          f"({cmp.codegen_ratio:.0f}x fewer)\n")
    base = simulate_terasort(k, granularity="turn")
    full = simulate_coded_terasort(k, r, granularity="turn")
    grouped = simulate_grouped_coded_terasort(k, g, r, granularity="turn")
    rows = []
    for label, rep in (
        ("TeraSort", base),
        (f"CodedTeraSort r={r}", full),
        (f"Grouped g={g}, r={r}", grouped),
    ):
        stage = rep.stage_times
        rows.append([
            label,
            stage.seconds.get("codegen", 0.0),
            stage.seconds.get("shuffle", 0.0),
            stage.total,
            base.total_time / rep.total_time,
        ])
    print(format_table(
        ["scheme", "codegen (s)", "shuffle (s)", "total (s)", "speedup"],
        rows, decimals=2,
    ))
    return 0


def _cmd_wireless(args: argparse.Namespace) -> int:
    from repro.kvpairs.teragen import teragen
    from repro.kvpairs.validation import validate_sorted_permutation
    from repro.utils.tables import format_table
    from repro.wireless.theory import (
        wireless_coded_load,
        wireless_edge_load,
        wireless_uncoded_load,
    )
    from repro.wireless.wdc import run_wireless_sort

    k, r = args.users, args.redundancy
    data = teragen(args.records, seed=0)
    theory = {
        "uncoded": wireless_uncoded_load(r, k),
        "edge": wireless_edge_load(r, k),
        "d2d": wireless_coded_load(r, k),
    }
    rows = []
    for protocol in ("uncoded", "edge", "d2d"):
        out = run_wireless_sort(data, k, r, protocol=protocol)
        validate_sorted_permutation(data, out.partitions)
        rows.append([
            protocol,
            out.shuffle_load(),
            theory[protocol],
            out.airtime.total_airtime,
        ])
    print(format_table(
        ["protocol", "measured load", "theory load", "airtime (s)"],
        rows, decimals=4,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codedterasort",
        description="Coded TeraSort reproduction (Li et al., 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "gen", help="write a teragen-format dataset file to disk"
    )
    p.add_argument("--records", "-n", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", "-o", required=True,
                   help="output file (raw packed 100-byte records)")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("sort", help="sort synthetic or on-disk data")
    p.add_argument("--algorithm", choices=["terasort", "coded"], default="coded")
    p.add_argument("--nodes", "-K", type=int, default=6)
    p.add_argument("--redundancy", "-r", type=int, default=2)
    p.add_argument("--records", "-n", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--input", default=None, metavar="FILE",
                   help="sort this teragen-format file instead of "
                        "generating records (workers read their own "
                        "ranges; the path must resolve on every worker's "
                        "host)")
    p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                   help="per-worker cap on resident record buffers; "
                        "enables the out-of-core pipeline (spill files + "
                        "external merge), output byte-identical")
    p.add_argument("--output", default=None, metavar="DIR",
                   help="with --memory-budget: stream each sorted "
                        "partition to DIR/part-<rank> instead of "
                        "returning it in RAM")
    p.add_argument("--backend", choices=["thread", "process"], default="thread")
    p.add_argument("--cluster", default=None, metavar="tcp://HOST:PORT",
                   help="run on a multi-host TCP cluster: listen here as "
                        "the rendezvous coordinator and wait for --nodes "
                        "`repro worker --join` agents (overrides --backend)")
    p.add_argument("--rate-mbps", type=float, default=None,
                   help="per-node egress throttle (process/tcp backends)")
    p.add_argument("--connect-timeout", type=float, default=300.0,
                   help="with --cluster: seconds to wait for all --nodes "
                        "workers to join the rendezvous")
    p.add_argument("--handshake-timeout", type=float, default=30.0,
                   help="with --cluster: per-step bound for each worker's "
                        "rendezvous handshake")
    p.add_argument("--schedule", choices=["serial", "parallel"],
                   default="serial",
                   help="coded shuffle schedule: serial Fig. 9(b) turns "
                        "(paper) or pipelined conflict-free rounds")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the sort N times on one session (persistent "
                        "worker pool) and report jobs/sec")
    p.add_argument("--max-retries", type=int, default=0,
                   help="automatically resubmit a job up to N times after "
                        "an infrastructure failure (worker crash or "
                        "silence); re-runs are byte-identical")
    p.add_argument("--retry-backoff", type=float, default=0.5,
                   help="base seconds between retry attempts (doubles "
                        "per attempt)")
    p.add_argument("--failure-timeout", type=float, default=None,
                   help="declare a worker dead after this many seconds "
                        "without a heartbeat (default: the backend's "
                        "setting; process/tcp backends only)")
    p.add_argument("--speculation", action="store_true",
                   help="with --algorithm terasort and --input: launch "
                        "backup copies of straggling map shards on "
                        "finished workers (first finisher wins; output "
                        "stays byte-identical)")
    p.add_argument("--overlap", action="store_true",
                   help="streaming phase overlap: ship shuffle traffic "
                        "while Map is still running and merge it while "
                        "it arrives, hiding communication behind compute "
                        "(both algorithms; output stays byte-identical; "
                        "mutually exclusive with --speculation)")
    p.set_defaults(func=_cmd_sort)

    p = sub.add_parser(
        "worker",
        help="join a tcp:// coordinator as one cluster worker agent",
    )
    p.add_argument("--join", required=True, metavar="HOST:PORT",
                   help="rendezvous coordinator address (tcp:// optional)")
    p.add_argument("--rank", type=int, default=None,
                   help="request this specific rank (duplicates are "
                        "rejected); default: lowest free rank")
    p.add_argument("--advertise", default=None, metavar="HOST",
                   help="address peers should dial for this worker's mesh "
                        "listener (default: local address of the "
                        "coordinator connection)")
    p.add_argument("--connect-timeout", type=float, default=30.0,
                   help="seconds to keep retrying the coordinator dial")
    p.add_argument("--handshake-timeout", type=float, default=30.0,
                   help="per-step bound for rendezvous and mesh setup")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant sort service daemon (standing worker "
             "mesh + control port; concurrent jobs on worker subsets)",
    )
    p.add_argument("--nodes", "-K", type=int, default=6,
                   help="mesh size: how many `repro worker` agents to admit")
    p.add_argument("--listen", default="tcp://127.0.0.1:0",
                   metavar="tcp://HOST:PORT",
                   help="worker rendezvous address (port 0 = ephemeral)")
    p.add_argument("--control", default="tcp://127.0.0.1:0",
                   metavar="tcp://HOST:PORT",
                   help="client control port for submit/status")
    p.add_argument("--rate-mbps", type=float, default=None,
                   help="per-worker egress throttle")
    p.add_argument("--job-timeout", type=float, default=300.0,
                   help="per-job wall bound")
    p.add_argument("--connect-timeout", type=float, default=300.0,
                   help="seconds to wait for all workers at startup")
    p.add_argument("--handshake-timeout", type=float, default=30.0)
    p.add_argument("--failure-timeout", type=float, default=30.0,
                   help="declare a worker dead after this long without a "
                        "heartbeat")
    p.add_argument("--max-queue-depth", type=int, default=64,
                   help="global queued-job bound (admission control)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="default per-tenant running-job quota")
    p.add_argument("--max-queued", type=int, default=16,
                   help="default per-tenant queued-job quota")
    p.add_argument("--max-retries", type=int, default=1,
                   help="per-job retry budget for worker failures")
    p.add_argument("--shrink-to-fit", action="store_true",
                   help="let the scheduler re-plan a queued shrinkable "
                        "job onto fewer free workers when nothing fits "
                        "at full width (elastic subset scheduling)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one sort job to a running service"
    )
    p.add_argument("--connect", required=True, metavar="tcp://HOST:PORT",
                   help="the service's control address (printed by serve)")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier in the queue (running jobs "
                        "are never preempted)")
    p.add_argument("--workers", type=int, default=None,
                   help="run on this many workers (a subset of the mesh); "
                        "default: the whole mesh")
    p.add_argument("--algorithm", choices=["terasort", "coded"],
                   default="coded")
    p.add_argument("--redundancy", "-r", type=int, default=2)
    p.add_argument("--schedule", choices=["serial", "parallel"],
                   default="serial")
    p.add_argument("--records", "-n", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--input", default=None, metavar="FILE",
                   help="sort this teragen-format file (path must resolve "
                        "on every worker host)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and return without waiting")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status", help="job table + per-tenant stats of a running service"
    )
    p.add_argument("--connect", required=True, metavar="tcp://HOST:PORT")
    p.add_argument("--job", type=int, default=None,
                   help="show only this job id")
    p.add_argument("--json", action="store_true",
                   help="machine-readable ServiceStats + job rows")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("simulate", help="simulate one run at paper scale")
    p.add_argument("--algorithm", choices=["terasort", "coded"], default="coded")
    p.add_argument("--nodes", "-K", type=int, default=16)
    p.add_argument("--redundancy", "-r", type=int, default=3)
    p.add_argument("--records", "-n", type=int, default=120_000_000)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("tables", help="regenerate Tables I-III")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("figures", help="regenerate Fig. 2 and trend sweeps")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("report", help="full reproduction report")
    p.add_argument("--output", "-o", default=None,
                   help="write markdown to this path (e.g. EXPERIMENTS.md)")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("theory", help="closed-form loads / optimal r")
    p.add_argument("--nodes", "-K", type=int, default=16)
    p.add_argument("--t-map", type=float, default=None)
    p.add_argument("--t-shuffle", type=float, default=None)
    p.add_argument("--t-reduce", type=float, default=0.0)
    p.set_defaults(func=_cmd_theory)

    p = sub.add_parser(
        "stragglers",
        help="MDS-coded gradient descent vs stragglers (ref [11])",
    )
    p.add_argument("--workers", "-n", type=int, default=10)
    p.add_argument("--threshold", "-k", type=int, default=7)
    p.add_argument("--iterations", "-t", type=int, default=60)
    p.add_argument("--shift", type=float, default=1.0)
    p.add_argument("--rate", type=float, default=0.5)
    p.set_defaults(func=_cmd_stragglers)

    p = sub.add_parser(
        "scalable",
        help="grouped coded sorting vs the CodeGen wall (§VI)",
    )
    p.add_argument("--nodes", "-K", type=int, default=20)
    p.add_argument("--group-size", "-g", type=int, default=10)
    p.add_argument("--redundancy", "-r", type=int, default=5)
    p.set_defaults(func=_cmd_scalable)

    p = sub.add_parser(
        "wireless",
        help="coded shuffling over a shared wireless medium ([24]/[25])",
    )
    p.add_argument("--users", "-K", type=int, default=6)
    p.add_argument("--redundancy", "-r", type=int, default=2)
    p.add_argument("--records", "-n", type=int, default=20_000)
    p.set_defaults(func=_cmd_wireless)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
