"""Deterministic fault injection driven by ``$REPRO_FAULT_PLAN``.

The live backends are instrumented with three *fault points*:

``stage``
    fires when a worker program enters a stage
    (:class:`~repro.runtime.program.NodeProgram`'s stage scope);
``send`` / ``recv``
    fire on every blocking :meth:`Comm.send` / :meth:`Comm.recv`.

A *fault plan* is a semicolon-separated list of clauses, each
``<point>.<action>[,key=value,...]``::

    stage.crash,rank=1,stage=shuffle          # hard-exit rank 1 entering shuffle
    stage.slow,rank=2,stage=map,factor=5      # rank 2's map runs 5x slower
    stage.delay,rank=0,stage=reduce,secs=0.2  # 200ms pause entering reduce
    send.delay,rank=1,peer=3,secs=0.05        # 50ms before each send 1->3
    recv.crash,rank=2,times=1                 # die on rank 2's first recv

Actions: ``crash`` (``os._exit(137)`` — simulates SIGKILL, skips atexit
handlers so spill dirs leak like a real kill), ``delay`` (sleep ``secs``),
``slow`` (stage point only: a :class:`Pacer` that stretches the stage's
measured work by ``factor``, applied at the program's fault checkpoints).

Match keys: ``rank`` (worker rank), ``stage`` (stage name), ``peer``
(send/recv only), ``job`` (exact job sequence number), ``job_lt`` (fires
only while the job sequence is below N — lets a plan crash attempts
0..N-1 and then let the retry succeed without editing the environment),
``times`` (max firings per process; default 1 for ``crash``, unlimited
otherwise).

The plan is read from the environment on every lookup (cached on the
string value), so forked pool workers and ``repro worker`` subprocesses
pick it up from their inherited environment with no plumbing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

ENV_VAR = "REPRO_FAULT_PLAN"

_POINTS = ("stage", "send", "recv")
_ACTIONS = ("crash", "delay", "slow")

#: Exit code used by injected crashes; chosen to look like SIGKILL (137).
CRASH_EXIT_CODE = 137


class Pacer:
    """Stretches a stage's elapsed work time by ``factor`` (plus ``secs``).

    ``checkpoint()`` sleeps ``(factor - 1) * elapsed_since_last_checkpoint``
    and resets the clock, so the *total* injected delay is
    ``(factor - 1) x (real work time)`` regardless of how often the
    program checkpoints — a windowed map and a single-shot map see the
    same slowdown, which keeps speculation-on and speculation-off bench
    lanes comparable.

    ``poll``: an injected slowdown must stay *preemptible* the way real
    slow work at a window boundary is — a program that can abandon its
    work mid-stage (speculative map) passes its abandon-check and the
    sleep runs in short slices, returning ``True`` (remaining delay
    dropped) as soon as the check fires.
    """

    _POLL_SLICE = 0.02

    def __init__(self, factor: float, secs: float = 0.0) -> None:
        self.factor = factor
        self._extra = secs  # one-time additive delay, paid at first checkpoint
        self._last = time.monotonic()

    def checkpoint(self, poll: Optional[Callable[[], bool]] = None) -> bool:
        now = time.monotonic()
        delay = (self.factor - 1.0) * (now - self._last) + self._extra
        self._extra = 0.0
        fired = False
        if delay > 0:
            if poll is None:
                time.sleep(delay)
            else:
                end = time.monotonic() + delay
                while True:
                    if poll():
                        fired = True
                        break
                    remaining = end - time.monotonic()
                    if remaining <= 0:
                        break
                    time.sleep(min(self._POLL_SLICE, remaining))
        self._last = time.monotonic()
        return fired


@dataclass
class FaultSpec:
    """One parsed plan clause."""

    point: str
    action: str
    rank: Optional[int] = None
    stage: Optional[str] = None
    peer: Optional[int] = None
    job: Optional[int] = None
    job_lt: Optional[int] = None
    secs: float = 0.0
    factor: float = 1.0
    times: Optional[int] = None  # None = unlimited
    fired: int = field(default=0, compare=False)

    def matches(
        self,
        rank: int,
        stage: Optional[str],
        job: Optional[int],
        peer: Optional[int] = None,
    ) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.rank is not None and rank != self.rank:
            return False
        if self.stage is not None and stage != self.stage:
            return False
        if self.peer is not None and peer != self.peer:
            return False
        if self.job is not None and job != self.job:
            return False
        if self.job_lt is not None and (job is None or job >= self.job_lt):
            return False
        return True


class FaultPlan:
    """A parsed ``$REPRO_FAULT_PLAN``; firing state is per-process."""

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs = specs

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            head, _, rest = clause.partition(",")
            point, dot, action = head.strip().partition(".")
            if not dot or point not in _POINTS or action not in _ACTIONS:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected "
                    f"<{'|'.join(_POINTS)}>.<{'|'.join(_ACTIONS)}>"
                )
            if action == "slow" and point != "stage":
                raise ValueError(
                    f"bad fault clause {clause!r}: 'slow' only applies to "
                    f"the 'stage' point (use 'delay' for send/recv)"
                )
            spec = FaultSpec(point=point, action=action)
            if rest:
                for kv in rest.split(","):
                    key, eq, value = kv.strip().partition("=")
                    if not eq:
                        raise ValueError(
                            f"bad fault clause {clause!r}: {kv!r} is not "
                            f"key=value"
                        )
                    try:
                        if key in ("rank", "peer", "job", "job_lt", "times"):
                            setattr(spec, key, int(value))
                        elif key in ("secs", "factor"):
                            setattr(spec, key, float(value))
                        elif key == "stage":
                            spec.stage = value
                        else:
                            raise ValueError(f"unknown key {key!r}")
                    except ValueError as exc:
                        raise ValueError(
                            f"bad fault clause {clause!r}: {exc}"
                        ) from None
            if spec.action == "crash" and spec.times is None:
                spec.times = 1
            specs.append(spec)
        return cls(specs)

    # -- fault points --------------------------------------------------------

    def stage_enter(
        self, rank: int, stage: str, job: Optional[int]
    ) -> Optional[Pacer]:
        """Fire stage-entry faults; returns a Pacer when a slowdown matched."""
        pacer: Optional[Pacer] = None
        for spec in self.specs:
            if spec.point != "stage" or not spec.matches(rank, stage, job):
                continue
            spec.fired += 1
            if spec.action == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif spec.action == "delay":
                time.sleep(spec.secs)
            elif spec.action == "slow" and pacer is None:
                pacer = Pacer(spec.factor, spec.secs)
        return pacer

    def comm_op(
        self,
        point: str,
        rank: int,
        peer: int,
        stage: Optional[str],
        job: Optional[int],
    ) -> None:
        """Fire send/recv faults for one blocking comm operation."""
        for spec in self.specs:
            if spec.point != point or not spec.matches(rank, stage, job, peer):
                continue
            spec.fired += 1
            if spec.action == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif spec.action == "delay":
                time.sleep(spec.secs)


# Cache keyed on the raw env string: re-parsing on change keeps the hooks
# cheap while letting tests monkeypatch the variable between jobs.
_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan from ``$REPRO_FAULT_PLAN``, or None when unset/empty."""
    global _cache
    text = os.environ.get(ENV_VAR) or None
    cached_text, cached_plan = _cache
    if text == cached_text:
        return cached_plan
    plan = FaultPlan.parse(text) if text else None
    _cache = (text, plan)
    return plan


def stage_enter(rank: int, stage: str, job: Optional[int]) -> Optional[Pacer]:
    """Module-level stage hook; no-op (returns None) without a plan."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.stage_enter(rank, stage, job)


def comm_op(
    point: str, rank: int, peer: int, stage: Optional[str], job: Optional[int]
) -> None:
    """Module-level send/recv hook; no-op without a plan."""
    plan = active_plan()
    if plan is not None:
        plan.comm_op(point, rank, peer, stage, job)
