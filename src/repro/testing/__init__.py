"""Deterministic fault injection for the live runtime (see ``faults``)."""
