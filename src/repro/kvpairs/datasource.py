"""DataSource descriptors: inputs workers materialize or stream locally.

The seed reproduction shipped every worker's input records *through the
control plane* — ``PreparedJob`` payloads pickled whole ``RecordBatch``es
to the pool — so the driver's RAM bounded the cluster's dataset.  The CMR
line of work (and every real MapReduce deployment) assumes the opposite:
workers *own their input splits* and the coordinator ships only
descriptors.  A :class:`DataSource` is that descriptor: a tiny picklable
value naming where a worker's records come from, with three concrete
kinds:

* :class:`InlineSource` — wraps a resident batch; pickles the records
  themselves.  The default, preserving the seed behavior exactly for
  in-memory datasets and tests.
* :class:`FileSource` — a path plus a record range into a raw
  teragen-format file (packed 100-byte records).  Workers mmap the file
  locally; the control plane carries ~100 bytes per rank.  The path must
  resolve on the worker's host (same machine or a shared filesystem).
* :class:`TeragenSource` — seed + row range of a deterministic synthetic
  dataset; workers generate their own split.  Generation is windowed on
  fixed 65536-row boundaries so any subrange of the same (seed) stream
  yields byte-identical records regardless of how ranks were split.

Every source supports full materialization (:meth:`DataSource.load`),
bounded streaming (:meth:`DataSource.iter_batches` — the out-of-core Map
stage's input path), descriptor-level splitting (:meth:`DataSource.subrange`,
used by the driver to cut per-rank/per-file splits without touching
records), and splitter sampling (:meth:`DataSource.sample`).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.kvpairs.records import RECORD_BYTES, RecordBatch
from repro.kvpairs.teragen import teragen

#: Default streaming window, in records (1 MiB of payload).
DEFAULT_BATCH_RECORDS = 10486

#: TeragenSource generation window (rows); fixed so subranges align.
TERAGEN_WINDOW_ROWS = 65536


class DataSource(ABC):
    """A picklable descriptor of one contiguous record dataset."""

    @property
    @abstractmethod
    def num_records(self) -> int:
        """Total records this source yields."""

    @property
    def nbytes(self) -> int:
        return self.num_records * RECORD_BYTES

    def __len__(self) -> int:
        return self.num_records

    @abstractmethod
    def load(self) -> RecordBatch:
        """Materialize the whole source (zero-copy where the kind allows)."""

    @abstractmethod
    def subrange(self, start: int, count: int) -> "DataSource":
        """A descriptor for records ``[start, start + count)`` of this source."""

    def iter_batches(
        self, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[RecordBatch]:
        """Stream the source as consecutive windows of ``batch_records``."""
        if batch_records <= 0:
            batch_records = DEFAULT_BATCH_RECORDS
        return iter(self.load().iter_slices(batch_records))

    def sample(self, max_records: int, seed: int = 7) -> RecordBatch:
        """Up to ``max_records`` records for splitter estimation.

        The default takes an evenly strided subset (robust to sorted or
        clustered files); subclasses may override with cheaper schemes.
        """
        n = self.num_records
        take = min(max_records, n)
        if take <= 0:
            return RecordBatch.empty()
        idx = np.linspace(0, n - 1, take).astype(np.int64)
        return self.load().take(idx)

    def _check_range(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.num_records:
            raise ValueError(
                f"subrange [{start}, {start + count}) outside "
                f"[0, {self.num_records})"
            )


@dataclass(frozen=True)
class InlineSource(DataSource):
    """A resident batch shipped by value (the seed behavior)."""

    batch: RecordBatch

    @property
    def num_records(self) -> int:
        return len(self.batch)

    def load(self) -> RecordBatch:
        return self.batch

    def subrange(self, start: int, count: int) -> "InlineSource":
        self._check_range(start, count)
        return InlineSource(self.batch.slice(start, start + count))

    def sample(self, max_records: int, seed: int = 7) -> RecordBatch:
        # Preserves the seed partitioner exactly: a uniform random sample
        # of the resident batch, same RNG law as `_build_partitioner`.
        n = len(self.batch)
        take = min(max_records, n)
        if take <= 0:
            return RecordBatch.empty()
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=take, replace=False)
        return self.batch.take(idx)


@dataclass(frozen=True)
class FileSource(DataSource):
    """A record range of a raw teragen-format file, read locally.

    Attributes:
        path: file of packed 100-byte records; must exist on the host of
            whoever calls :meth:`load` / :meth:`iter_batches` (worker-local
            path or shared filesystem).
        start_record: first record of the range.
        count: records in the range; ``None`` means "through end of file"
            (resolved against the file size when first needed).
    """

    path: str
    start_record: int = 0
    count: Optional[int] = None

    @property
    def num_records(self) -> int:
        if self.count is not None:
            return self.count
        size = os.path.getsize(self.path)
        if size % RECORD_BYTES:
            raise ValueError(
                f"{self.path}: size {size} not a multiple of {RECORD_BYTES}"
            )
        return max(0, size // RECORD_BYTES - self.start_record)

    def load(self) -> RecordBatch:
        from repro.kvpairs.spill import read_run_file

        n = self.num_records
        whole = read_run_file(self.path)
        if self.start_record + n > len(whole):
            raise ValueError(
                f"{self.path}: range [{self.start_record}, "
                f"{self.start_record + n}) beyond {len(whole)} records"
            )
        # mmap-backed zero-copy slice; pages fault in as they are read.
        return whole.slice(self.start_record, self.start_record + n)

    def subrange(self, start: int, count: int) -> "FileSource":
        self._check_range(start, count)
        return FileSource(self.path, self.start_record + start, count)


@dataclass(frozen=True)
class TeragenSource(DataSource):
    """Rows ``[start_row, start_row + count)`` of a synthetic teragen stream.

    The stream keyed by ``seed`` is generated in fixed
    :data:`TERAGEN_WINDOW_ROWS`-aligned windows (window ``w`` uses the
    spawned seed ``(seed, w)``), so any two descriptors over the same seed
    produce byte-identical records for overlapping rows — ranks can split
    a dataset without coordinating generation order.  Values embed the
    absolute row id, exactly like :func:`~repro.kvpairs.teragen.teragen`.
    """

    count: int
    seed: int = 0
    start_row: int = 0

    @property
    def num_records(self) -> int:
        return self.count

    def load(self) -> RecordBatch:
        return RecordBatch.concat(list(self.iter_batches()))

    def subrange(self, start: int, count: int) -> "TeragenSource":
        self._check_range(start, count)
        return TeragenSource(count, self.seed, self.start_row + start)

    def iter_batches(
        self, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[RecordBatch]:
        if batch_records <= 0:
            batch_records = DEFAULT_BATCH_RECORDS
        pos = self.start_row
        end = self.start_row + self.count
        pending = []
        pending_n = 0
        while pos < end:
            w = pos // TERAGEN_WINDOW_ROWS
            w_start = w * TERAGEN_WINDOW_ROWS
            w_end = min(w_start + TERAGEN_WINDOW_ROWS, end)
            window = teragen(
                TERAGEN_WINDOW_ROWS, seed=(self.seed, w), start_row=w_start
            ).slice(pos - w_start, w_end - w_start)
            pos = w_end
            pending.append(window)
            pending_n += len(window)
            while pending_n >= batch_records:
                chunk = RecordBatch.concat(pending)
                yield chunk.slice(0, batch_records)
                rest = chunk.slice(batch_records, len(chunk))
                pending = [rest] if len(rest) else []
                pending_n = len(rest)
        if pending_n:
            yield RecordBatch.concat(pending)

    def sample(self, max_records: int, seed: int = 7) -> RecordBatch:
        # Keys are i.i.d. uniform at every row, so a prefix is an unbiased
        # key sample — no need to generate the whole stream.
        take = min(max_records, self.count)
        if take <= 0:
            return RecordBatch.empty()
        out = []
        got = 0
        for batch in self.iter_batches(min(take, DEFAULT_BATCH_RECORDS)):
            out.append(batch.slice(0, min(len(batch), take - got)))
            got += len(out[-1])
            if got >= take:
                break
        return RecordBatch.concat(out)


def as_source(data: Union[RecordBatch, DataSource]) -> DataSource:
    """Coerce a batch (seed call style) or pass a source through."""
    if isinstance(data, DataSource):
        return data
    if isinstance(data, RecordBatch):
        return InlineSource(data)
    raise TypeError(
        f"expected RecordBatch or DataSource, got {type(data).__name__}"
    )
