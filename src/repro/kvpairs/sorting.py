"""Local sorting and merging of record batches (the Reduce-stage workhorse).

Both TeraSort and CodedTeraSort end with each node sorting its partition
locally (the paper uses ``std::sort``).  We realize the exact 10-byte key
order with a two-column ``np.lexsort`` on the ``(hi, lo)`` key decomposition
— a stable, vectorized radix-style sort with no per-record Python work.

``merge_sorted`` is the k-way merge variant of Reduce (merging per-source
already-sorted runs), which is how Hadoop's reducer actually consumes
shuffled spills.  It is a *real* vectorized merge — a tournament of stable
pairwise merges — not a concatenate-and-resort.  Two kernel
implementations back it, selected by ``$REPRO_KERNELS`` (see
:mod:`repro.kvpairs.kernels`):

* ``ovc`` (default) — the offset-value-coded merge: per-run ``uint16``
  OVC columns (offset of the first key byte differing from the
  predecessor, packed with the byte value at that offset) provide the
  duplicate-group structure and sortedness validation; rank queries
  between runs resolve on cached ``uint64`` prefix words and touch full
  ``S10`` keys only on prefix-word ties.
* ``classic`` — the seed implementation: pairwise ``np.searchsorted``
  over full ``S10`` keys.

Both produce byte-identical output (same records, same stable tie
order).  ``check=False`` skips the per-run sortedness validation for
trusted internal call sites (e.g. :func:`repro.kvpairs.spill.merge_runs`,
which validates each window once as it loads it); public callers keep
the default ``check=True`` contract that unsorted runs raise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kvpairs import kernels
from repro.kvpairs.records import RECORD_DTYPE, RecordBatch


def sort_key_order(batch: RecordBatch) -> np.ndarray:
    """Indices that sort ``batch`` by full 10-byte key (stable)."""
    hi, lo = batch.key_words()
    return np.lexsort((lo, hi))


def sort_batch(batch: RecordBatch) -> RecordBatch:
    """Return a new batch sorted by key (stable; ties keep input order)."""
    if len(batch) <= 1:
        return batch
    return batch.take(sort_key_order(batch))


def is_sorted(batch: RecordBatch) -> bool:
    """True iff keys are non-decreasing in 10-byte lexicographic order."""
    n = len(batch)
    if n <= 1:
        return True
    hi, lo = batch.key_words()
    hi_prev, hi_next = hi[:-1], hi[1:]
    lo_prev, lo_next = lo[:-1], lo[1:]
    ok = (hi_prev < hi_next) | ((hi_prev == hi_next) & (lo_prev <= lo_next))
    return bool(ok.all())


def _merge_two(a: RecordBatch, b: RecordBatch) -> RecordBatch:
    """Classic stable vectorized merge of two sorted runs (``a`` wins ties).

    Each record's output position is its own index plus the count of
    other-run records that precede it: ``searchsorted(left)`` for ``a``'s
    records (equal keys of ``b`` go after) and ``searchsorted(right)`` for
    ``b``'s (equal keys of ``a`` go before).  NumPy compares ``S10`` keys
    bytewise over the full fixed width, which is exactly the 10-byte
    lexicographic order (trailing NULs are the minimal byte, so padded
    comparison and true byte order agree).
    """
    ka, kb = a.keys, b.keys
    pos_a = np.arange(len(a)) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(len(b)) + np.searchsorted(ka, kb, side="right")
    out = np.empty(len(a) + len(b), dtype=RECORD_DTYPE)
    out[pos_a] = a.array
    out[pos_b] = b.array
    return RecordBatch(out)


def _merge_sorted_classic(
    runs: Sequence[RecordBatch], check: bool
) -> RecordBatch:
    if check:
        for i, run in enumerate(runs):
            if not is_sorted(run):
                raise ValueError(f"run {i} is not sorted")
    live = [run for run in runs if len(run)]
    if not live:
        return RecordBatch.empty()
    while len(live) > 1:
        merged = [
            _merge_two(live[i], live[i + 1])
            for i in range(0, len(live) - 1, 2)
        ]
        if len(live) % 2:
            merged.append(live[-1])
        live = merged
    return live[0]


def _merge_sorted_ovc(runs: Sequence[RecordBatch], check: bool) -> RecordBatch:
    cols = [
        kernels.RunColumns.from_batch(run, check=check, what=f"run {i}")
        for i, run in enumerate(runs)
        if len(run) or check
    ]
    return kernels.merge_sorted_columns(cols).batch


def merge_sorted(
    runs: Sequence[RecordBatch], check: bool = True
) -> RecordBatch:
    """Merge already-sorted runs into one sorted batch (stable k-way merge).

    A tournament of pairwise vectorized merges — ``ceil(log2 k)`` rounds
    over the data instead of a full re-sort of the concatenation.  Ties
    preserve run order (records from earlier runs first), matching what a
    stable sort of the concatenation would yield.  Output is
    byte-identical across both kernel modes (``$REPRO_KERNELS``).

    Args:
        runs: the sorted runs, in priority order (earlier wins ties).
        check: validate every run and raise ``ValueError`` if one is not
            sorted (silent misuse would produce subtly unsorted output).
            Trusted internal call sites that just produced/validated the
            runs pass ``False`` and skip the re-scan.
    """
    if kernels.use_ovc():
        return _merge_sorted_ovc(runs, check)
    return _merge_sorted_classic(runs, check)
