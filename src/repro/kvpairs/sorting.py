"""Local sorting of record batches (the Reduce-stage workhorse).

Both TeraSort and CodedTeraSort end with each node sorting its partition
locally (the paper uses ``std::sort``).  We realize the exact 10-byte key
order with a two-column ``np.lexsort`` on the ``(hi, lo)`` key decomposition
— a stable, vectorized radix-style sort with no per-record Python work.

``merge_sorted`` is provided for the k-way merge variant of Reduce (merging
per-source already-sorted runs), which is how Hadoop's reducer actually
consumes shuffled spills.  It is a *real* vectorized merge — a tournament
of stable pairwise ``np.searchsorted`` merges, ``O(n log k)`` comparisons
on 10-byte keys — not a concatenate-and-resort; its output is cross-checked
against sorting the concatenation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kvpairs.records import RECORD_DTYPE, RecordBatch


def sort_key_order(batch: RecordBatch) -> np.ndarray:
    """Indices that sort ``batch`` by full 10-byte key (stable)."""
    hi, lo = batch.key_words()
    return np.lexsort((lo, hi))


def sort_batch(batch: RecordBatch) -> RecordBatch:
    """Return a new batch sorted by key (stable; ties keep input order)."""
    if len(batch) <= 1:
        return batch
    return batch.take(sort_key_order(batch))


def is_sorted(batch: RecordBatch) -> bool:
    """True iff keys are non-decreasing in 10-byte lexicographic order."""
    n = len(batch)
    if n <= 1:
        return True
    hi, lo = batch.key_words()
    hi_prev, hi_next = hi[:-1], hi[1:]
    lo_prev, lo_next = lo[:-1], lo[1:]
    ok = (hi_prev < hi_next) | ((hi_prev == hi_next) & (lo_prev <= lo_next))
    return bool(ok.all())


def _merge_two(a: RecordBatch, b: RecordBatch) -> RecordBatch:
    """Stable vectorized merge of two sorted runs (``a`` wins key ties).

    Each record's output position is its own index plus the count of
    other-run records that precede it: ``searchsorted(left)`` for ``a``'s
    records (equal keys of ``b`` go after) and ``searchsorted(right)`` for
    ``b``'s (equal keys of ``a`` go before).  NumPy compares ``S10`` keys
    bytewise over the full fixed width, which is exactly the 10-byte
    lexicographic order (trailing NULs are the minimal byte, so padded
    comparison and true byte order agree).
    """
    ka, kb = a.keys, b.keys
    pos_a = np.arange(len(a)) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(len(b)) + np.searchsorted(ka, kb, side="right")
    out = np.empty(len(a) + len(b), dtype=RECORD_DTYPE)
    out[pos_a] = a.array
    out[pos_b] = b.array
    return RecordBatch(out)


def merge_sorted(runs: Sequence[RecordBatch]) -> RecordBatch:
    """Merge already-sorted runs into one sorted batch (stable k-way merge).

    A tournament of pairwise :func:`_merge_two` merges — ``ceil(log2 k)``
    vectorized rounds over the data instead of a full re-sort of the
    concatenation.  Ties preserve run order (records from earlier runs
    first), matching what a stable sort of the concatenation would yield.
    Raises if any run is not sorted, because silent misuse would produce
    subtly unsorted output.
    """
    for i, run in enumerate(runs):
        if not is_sorted(run):
            raise ValueError(f"run {i} is not sorted")
    live = [run for run in runs if len(run)]
    if not live:
        return RecordBatch.empty()
    while len(live) > 1:
        merged = [
            _merge_two(live[i], live[i + 1])
            for i in range(0, len(live) - 1, 2)
        ]
        if len(live) % 2:
            merged.append(live[-1])
        live = merged
    return live[0]
