"""Local sorting of record batches (the Reduce-stage workhorse).

Both TeraSort and CodedTeraSort end with each node sorting its partition
locally (the paper uses ``std::sort``).  We realize the exact 10-byte key
order with a two-column ``np.lexsort`` on the ``(hi, lo)`` key decomposition
— a stable, vectorized radix-style sort with no per-record Python work.

``merge_sorted`` is provided for the k-way merge variant of Reduce (merging
per-source already-sorted runs), which is how Hadoop's reducer actually
consumes shuffled spills; it is equivalent to, and cross-checked against,
sorting the concatenation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kvpairs.records import RecordBatch


def sort_key_order(batch: RecordBatch) -> np.ndarray:
    """Indices that sort ``batch`` by full 10-byte key (stable)."""
    hi, lo = batch.key_words()
    return np.lexsort((lo, hi))


def sort_batch(batch: RecordBatch) -> RecordBatch:
    """Return a new batch sorted by key (stable; ties keep input order)."""
    if len(batch) <= 1:
        return batch
    return batch.take(sort_key_order(batch))


def is_sorted(batch: RecordBatch) -> bool:
    """True iff keys are non-decreasing in 10-byte lexicographic order."""
    n = len(batch)
    if n <= 1:
        return True
    hi, lo = batch.key_words()
    hi_prev, hi_next = hi[:-1], hi[1:]
    lo_prev, lo_next = lo[:-1], lo[1:]
    ok = (hi_prev < hi_next) | ((hi_prev == hi_next) & (lo_prev <= lo_next))
    return bool(ok.all())


def merge_sorted(runs: Sequence[RecordBatch]) -> RecordBatch:
    """Merge already-sorted runs into one sorted batch.

    Uses a vectorized merge: concatenates and lexsorts with a stable sort,
    which for pre-sorted runs is near-linear in NumPy's timsort-like
    ``kind='stable'`` path.  Raises if any run is not sorted, because silent
    misuse would produce subtly unsorted output.
    """
    for i, run in enumerate(runs):
        if not is_sorted(run):
            raise ValueError(f"run {i} is not sorted")
    merged = RecordBatch.concat(runs)
    if len(merged) <= 1:
        return merged
    hi, lo = merged.key_words()
    order = np.lexsort((lo, hi))
    return merged.take(order)
