"""Spillable run files and the streaming external k-way merge.

This is the disk half of the out-of-core data plane.  A **run** is a
sorted sequence of 100-byte records stored either resident (one
:class:`~repro.kvpairs.records.RecordBatch`) or in a *run file* — raw
packed teragen-format records, the same on-disk layout Hadoop TeraGen
writes, read back as mmap-backed zero-copy ``RecordBatch`` views (NumPy
keeps the mapping alive, so views stay valid after the file object is
closed and even after the run file is unlinked).

:func:`merge_runs` is the streaming external k-way merge: it walks every
run in bounded windows and repeatedly emits the records at or below the
smallest loaded *window-end* key, merging each round with the existing
vectorized :func:`~repro.kvpairs.sorting.merge_sorted` tournament.  The
merge is **stable across runs** — ties go to the earlier run, and within
a run to the earlier record — so merging the stably-sorted chunks of a
stream, in chunk order, reproduces byte-for-byte what one stable in-RAM
sort of the whole stream would produce.  That equivalence is what lets
the out-of-core sort programs promise output byte-identical to the
in-memory path.

**OVC sidecars.**  With the offset-value-coded kernels active (the
default — see :mod:`repro.kvpairs.kernels`), every *sorted* run file is
written together with a ``<run>.ovc`` sidecar: the run's offset-value
code column as packed little-endian ``uint16``, one code per record, in
record order (code ``i`` is record ``i``'s code relative to record
``i-1``; code 0 is relative to the virtual minus-infinity key).  Readers
mmap the sidecar and slice it in lockstep with the record windows, so
re-merging a spilled run never recomputes codes — and because the
column was computed over the whole run at write time, a window's first
code is automatically relative to the previous window's last record,
which is exactly the cross-window carry the merge needs.  Runs without
a sidecar (resident runs, foreign files) get their codes computed per
window as they are loaded, with the same predecessor carry; that
computation doubles as the per-window sortedness validation, so
:func:`merge_runs` calls the merge with ``check=False`` and still keeps
the "unsorted runs raise" contract.

:class:`ExternalSorter` packages the write side of that contract: feed it
batches in stream order, it accumulates up to a chunk budget, stable-sorts
each chunk, spills it as one run, and hands the ordered run list to
:func:`merge_runs`.  :class:`StreamStore` is the unsorted cousin used by
the coded Map stage: per-key append-ordered record streams spilled to one
file per key, read back as mmap views (the deterministic byte layout XOR
coding requires) or as bounded windows.

Spill hygiene: every run file lives under a per-job :class:`SpillDir`
(``repro-spill-<pid>-*`` under the system temp dir, or ``$REPRO_SPILL_DIR``).
Dirs are removed on job success *and* failure (program ``finally``),
at interpreter exit (``atexit``), and :func:`SpillDir.sweep_stale` lets a
fresh worker reap dirs orphaned by a SIGKILLed predecessor on the same
host.
"""

from __future__ import annotations

import atexit
import mmap
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.kvpairs import kernels
from repro.kvpairs.kernels import OVC_BYTES, OVC_DTYPE, RunColumns
from repro.kvpairs.records import KEY_BYTES, RECORD_BYTES, RecordBatch
from repro.kvpairs.sorting import is_sorted, merge_sorted, sort_batch
from repro.utils.residency import ResidencyMeter

#: Default merge window per run and output chunk, in records.
DEFAULT_WINDOW_RECORDS = 16384
#: Prefix shared by every spill dir (the ``.gitignore``d pattern).
SPILL_DIR_PREFIX = "repro-spill"

_active_dirs: "set[str]" = set()
_active_lock = threading.Lock()


def _cleanup_active() -> None:  # pragma: no cover - exercised at exit
    with _active_lock:
        paths = list(_active_dirs)
        _active_dirs.clear()
    for path in paths:
        shutil.rmtree(path, ignore_errors=True)


atexit.register(_cleanup_active)


def spill_base_dir() -> str:
    """Where spill dirs are created: ``$REPRO_SPILL_DIR`` or the system tmp."""
    return os.environ.get("REPRO_SPILL_DIR") or tempfile.gettempdir()


class SpillDir:
    """A per-job temp directory holding run files (context manager).

    The directory name embeds the creating pid
    (``repro-spill-<pid>-<rand>``) so :func:`sweep_stale` can tell live
    dirs from orphans.  ``cleanup()`` is idempotent and also runs from an
    ``atexit`` hook, so a worker that exits through ``SystemExit`` (e.g.
    the TCP agent's SIGTERM handler) still removes its dirs.
    """

    def __init__(self, tag: str = "job", base: Optional[str] = None) -> None:
        base = base or spill_base_dir()
        os.makedirs(base, exist_ok=True)
        self.path = tempfile.mkdtemp(
            prefix=f"{SPILL_DIR_PREFIX}-{os.getpid()}-{tag}-", dir=base
        )
        self._seq = 0
        self._lock = threading.Lock()
        with _active_lock:
            _active_dirs.add(self.path)

    def new_path(self, prefix: str = "run") -> str:
        """A fresh file path inside the dir (files are created lazily)."""
        with self._lock:
            self._seq += 1
            return os.path.join(self.path, f"{prefix}-{self._seq:06d}.bin")

    def cleanup(self) -> None:
        """Remove the directory and everything in it (idempotent)."""
        with _active_lock:
            _active_dirs.discard(self.path)
        shutil.rmtree(self.path, ignore_errors=True)

    @property
    def exists(self) -> bool:
        return os.path.isdir(self.path)

    def __enter__(self) -> "SpillDir":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    @staticmethod
    def sweep_stale(base: Optional[str] = None) -> List[str]:
        """Remove spill dirs whose creator process is gone; returns removals.

        Covers workers that died without running ``atexit`` (SIGKILL): the
        next agent starting on the same host reaps their leftovers.  Dirs
        belonging to live pids (including this process) are left alone.

        Race-safe under concurrent sweeps (every worker of a re-forked
        pool sweeps at startup): a sweeper first *claims* an orphan by
        renaming it to ``<name>.reap-<sweeper pid>`` — the atomic rename
        ensures exactly one winner per dir — then removes the claimed
        name.  A claim whose sweeper itself died is re-claimed by the
        next sweep.
        """
        base = base or spill_base_dir()
        removed: List[str] = []
        try:
            entries = os.listdir(base)
        except OSError:
            return removed
        for name in entries:
            if not name.startswith(SPILL_DIR_PREFIX + "-"):
                continue
            plain, _, claim = name.partition(".reap-")
            parts = plain.split("-")
            try:
                owner = int(parts[2])
            except (IndexError, ValueError):
                continue
            if claim:
                # Already claimed: only steal it from a dead sweeper.
                try:
                    claimer = int(claim.rsplit(".reap-", 1)[-1])
                except ValueError:
                    continue
                if claimer == os.getpid() or _pid_alive(claimer):
                    continue
            elif owner == os.getpid() or _pid_alive(owner):
                continue
            path = os.path.join(base, name)
            claimed = f"{path}.reap-{os.getpid()}"
            try:
                os.rename(path, claimed)
            except OSError:
                continue  # lost the claim race to a concurrent sweeper
            shutil.rmtree(claimed, ignore_errors=True)
            removed.append(path)
        return removed


def install_spill_cleanup_handler() -> None:
    """Make SIGTERM run ``atexit`` hooks (i.e. remove live spill dirs).

    Python's default SIGTERM disposition kills the process without
    running ``atexit``, so a terminated worker would leak its spill dirs
    until a successor sweeps them.  Worker entry points (forked pool
    workers, TCP agents) call this from their main thread; elsewhere it
    is a silent no-op.  SIGKILL still leaks — that is what
    :func:`SpillDir.sweep_stale` is for.
    """
    import signal

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # not the main thread
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


# ---------------------------------------------------------------------------
# Run files: raw packed records on disk, mmap-backed zero-copy reads.
# ---------------------------------------------------------------------------


def write_run_file(path: str, batches: Iterable[RecordBatch]) -> int:
    """Append ``batches`` to ``path`` as packed records; returns bytes written."""
    written = 0
    with open(path, "ab") as f:
        for batch in batches:
            if len(batch) == 0:
                continue
            f.write(batch.as_memoryview())
            written += batch.nbytes
    return written


def read_run_file(path: str) -> RecordBatch:
    """The whole run file as one mmap-backed read-only batch (zero-copy).

    The returned batch's array aliases the mapping; NumPy keeps the mmap
    object alive, so the batch (and any view sliced from it) stays valid
    after this function closes the file descriptor — and after the file
    is later unlinked (POSIX keeps mapped pages reachable).
    """
    size = os.path.getsize(path)
    if size == 0:
        return RecordBatch.empty()
    with open(path, "rb") as f:
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    return RecordBatch.from_buffer(mm)


def ovc_sidecar_path(path: str) -> str:
    """Where a run file's OVC column lives (``<run>.ovc``)."""
    return path + ".ovc"


def write_ovc_file(path: str, codes) -> None:
    """Persist an OVC column as packed little-endian ``uint16``."""
    with open(ovc_sidecar_path(path), "wb") as f:
        f.write(np.ascontiguousarray(codes, dtype=OVC_DTYPE).tobytes())


def read_ovc_file(path: str, num_records: int):
    """The run's OVC column as a zero-copy mmap view, or ``None``.

    Returns ``None`` when no sidecar exists or its length does not match
    ``num_records`` (a mismatched sidecar is ignored, never trusted).
    """
    sidecar = ovc_sidecar_path(path)
    try:
        size = os.path.getsize(sidecar)
    except OSError:
        return None
    if size != num_records * OVC_BYTES or size == 0:
        return None
    with open(sidecar, "rb") as f:
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    return np.frombuffer(mm, dtype=OVC_DTYPE)


def write_sorted_run(path: str, chunk: RecordBatch) -> None:
    """Write one sorted chunk as a run file (+ OVC sidecar in ovc mode).

    The one write path every sorted-run producer (``ExternalSorter``,
    ``PartitionSpiller``, ``keep_or_spill``) shares: the chunk was just
    stable-sorted by the caller, so its OVC column is computed without
    the validation pass and persisted alongside the records.
    """
    write_run_file(path, [chunk])
    if kernels.use_ovc() and len(chunk):
        write_ovc_file(path, kernels.ovc_codes(chunk, check=False))


@dataclass
class Run:
    """One sorted run: resident batch or file-backed records.

    ``num_records`` is tracked so sizing decisions never need an extra
    ``stat`` (and so empty runs short-circuit without touching disk).
    File runs written through :func:`write_sorted_run` carry an OVC
    sidecar; :meth:`load_codes` finds it by path.
    """

    path: Optional[str] = None
    batch: Optional[RecordBatch] = None
    num_records: int = 0

    @classmethod
    def resident(cls, batch: RecordBatch) -> "Run":
        return cls(batch=batch, num_records=len(batch))

    @classmethod
    def from_file(cls, path: str, num_records: Optional[int] = None) -> "Run":
        if num_records is None:
            num_records = os.path.getsize(path) // RECORD_BYTES
        return cls(path=path, num_records=num_records)

    @property
    def nbytes(self) -> int:
        return self.num_records * RECORD_BYTES

    def load(self) -> RecordBatch:
        """The whole run (mmap-backed view for file runs)."""
        if self.batch is not None:
            return self.batch
        if self.path is None or self.num_records == 0:
            return RecordBatch.empty()
        return read_run_file(self.path)

    def load_codes(self):
        """The run's persisted OVC column (mmap view), or ``None``."""
        if self.path is None or self.num_records == 0:
            return None
        return read_ovc_file(self.path, self.num_records)

    def iter_batches(self, window_records: int) -> Iterator[RecordBatch]:
        """The run as consecutive windows of at most ``window_records``."""
        if window_records <= 0:
            window_records = DEFAULT_WINDOW_RECORDS
        return iter(self.load().iter_slices(window_records))


RunLike = Union[Run, RecordBatch]


def _as_run(run: RunLike) -> Run:
    return Run.resident(run) if isinstance(run, RecordBatch) else run


def spill_blob(spill: SpillDir, data, prefix: str = "blob") -> memoryview:
    """Write arbitrary serialized bytes to a file; return a mmap read view.

    The generic-payload cousin of run files, used by the CMR engine to
    keep pickled intermediate values out of RAM: the returned view is
    mmap-backed (the mapping outlives the file descriptor) and works
    anywhere a bytes-like intermediate is accepted — the XOR encoder's
    ``lookup``, ``pickle.loads``, ``memoryview`` slicing.
    """
    path = spill.new_path(prefix)
    with open(path, "wb") as f:
        f.write(data)
    return read_blob(path)


def read_blob(path: str) -> memoryview:
    """A zero-copy mmap view of a whole file (empty files give ``b""``)."""
    if os.path.getsize(path) == 0:
        return memoryview(b"")
    with open(path, "rb") as f:
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    return memoryview(mm)


# ---------------------------------------------------------------------------
# The streaming external k-way merge.
# ---------------------------------------------------------------------------


def _part_nbytes(part: Union[RecordBatch, RunColumns]) -> int:
    if isinstance(part, RunColumns):
        return part.batch.nbytes + part.hi.nbytes + part.codes.nbytes
    return part.nbytes


class _Cursor:
    """Bounded, validating read position into one sorted run.

    Pulls the run in windows and validates each window exactly once as
    it loads (classic: an ``is_sorted`` scan plus the window-boundary
    key check; ovc: OVC code computation, whose inversion check *is* the
    validation — or a trusted persisted sidecar, sliced in lockstep).
    Downstream merges therefore run with ``check=False`` while the
    documented "unsorted runs raise ``ValueError``" contract holds.
    """

    __slots__ = (
        "_source", "_codes_src", "_window", "_pos", "_n", "_meter",
        "_what", "_ovc", "_last_key", "head",
    )

    def __init__(
        self,
        run: Run,
        window_records: int,
        meter: Optional[ResidencyMeter],
        index: int,
    ) -> None:
        if window_records <= 0:
            window_records = DEFAULT_WINDOW_RECORDS
        self._ovc = kernels.use_ovc()
        self._source = run.load()
        self._codes_src = run.load_codes() if self._ovc else None
        self._n = run.num_records
        self._window = window_records
        self._pos = 0
        self._meter = meter
        self._what = f"run {index}"
        self._last_key: Optional[np.bytes_] = None
        #: The loaded-but-unconsumed records (with columns in ovc mode).
        self.head: Optional[Union[RecordBatch, RunColumns]] = None

    @property
    def done(self) -> bool:
        return self._pos >= self._n

    def _head_batch(self) -> RecordBatch:
        return self.head.batch if self._ovc else self.head

    def _pull(self) -> Optional[Union[RecordBatch, RunColumns]]:
        """Load, validate, and meter the next window (None if exhausted)."""
        if self.done:
            return None
        start = self._pos
        stop = min(start + self._window, self._n)
        self._pos = stop
        window = self._source.slice(start, stop)
        if self._ovc:
            if self._codes_src is not None:
                part: Union[RecordBatch, RunColumns] = RunColumns.from_batch(
                    window, codes=self._codes_src[start:stop]
                )
            else:
                base = (
                    None
                    if self._last_key is None
                    else bytes(self._last_key).ljust(KEY_BYTES, b"\x00")
                )
                part = RunColumns.from_batch(
                    window, base_key=base, check=True, what=self._what
                )
        else:
            if not is_sorted(window) or (
                self._last_key is not None
                and window.keys[0] < self._last_key
            ):
                raise ValueError(f"{self._what} is not sorted")
            part = window
        self._last_key = window.keys[-1]
        if self._meter is not None:
            self._meter.charge(_part_nbytes(part), "merge.window")
        return part

    def refill(self) -> None:
        """Ensure at least one unconsumed record is loaded (or exhausted)."""
        while not self.done and (
            self.head is None or len(self._head_batch()) == 0
        ):
            self.head = self._pull()

    def extend_past(self, bound: np.bytes_) -> None:
        """Load more windows until the last loaded key exceeds ``bound``.

        Needed for cross-run tie stability: a run whose loaded window *ends*
        exactly at the bound may continue with equal keys in the next
        window, and those must be emitted in the same round (before any
        later run's equal keys get a chance to overtake them).
        """
        assert self.head is not None
        parts = [self.head]
        while not self.done and self._tail_key(parts) <= bound:
            nxt = self._pull()
            if nxt is None:
                break
            parts.append(nxt)
        if len(parts) > 1:
            self.head = (
                RunColumns.concat(parts)
                if self._ovc
                else RecordBatch.concat(parts)
            )

    def _tail_key(self, parts) -> np.bytes_:
        last = parts[-1]
        return (last.batch if self._ovc else last).keys[-1]

    def take_upto(
        self, bound: np.bytes_
    ) -> Union[RecordBatch, RunColumns]:
        """Split off (and return) every loaded record with key <= ``bound``."""
        assert self.head is not None
        batch = self._head_batch()
        cut = int(np.searchsorted(batch.keys, bound, side="right"))
        head = self.head.slice(0, cut)
        self.head = self.head.slice(cut, len(batch))
        if self._meter is not None:
            self._meter.discharge(_part_nbytes(head))
        return head

    @property
    def live(self) -> bool:
        return self.head is not None and len(self._head_batch()) > 0

    @property
    def head_last_key(self) -> np.bytes_:
        return self._head_batch().keys[-1]


def merge_runs(
    runs: Sequence[RunLike],
    window_records: int = DEFAULT_WINDOW_RECORDS,
    out_records: int = DEFAULT_WINDOW_RECORDS,
    meter: Optional[ResidencyMeter] = None,
) -> Iterator[RecordBatch]:
    """Stream-merge sorted runs into sorted output batches (stable).

    Args:
        runs: the sorted runs, **in priority order** — key ties are broken
            toward earlier runs, which is exactly the contract that makes
            merging a stream's stably-sorted chunks equivalent to stably
            sorting the whole stream.
        window_records: how many records to hold per run at a time.
        out_records: maximum records per yielded batch.
        meter: optional residency meter charged for loaded windows.

    Yields:
        Sorted batches whose concatenation is the stable merge of all
        runs.  Empty runs contribute nothing; a single run streams through
        a re-chunking fast path with no merge work.

    Raises:
        ValueError: if any run's records are found out of order (surfaced
            by :func:`~repro.kvpairs.sorting.merge_sorted`).
    """
    runs = [_as_run(r) for r in runs]
    live_runs = [r for r in runs if r.num_records > 0]
    if not live_runs:
        return
    if out_records <= 0:
        out_records = DEFAULT_WINDOW_RECORDS
    if len(live_runs) == 1:
        # Single-run fast path: no merge work, just bounded re-chunking —
        # but the documented "unsorted runs raise" contract still holds
        # (window sortedness + boundary keys, same check is_sorted does).
        prev_last: Optional[np.bytes_] = None
        for chunk in live_runs[0].iter_batches(out_records):
            if len(chunk) == 0:
                continue
            if not is_sorted(chunk) or (
                prev_last is not None and chunk.keys[0] < prev_last
            ):
                raise ValueError("run 0 is not sorted")
            prev_last = chunk.keys[-1]
            yield chunk
        return
    cursors = [
        _Cursor(r, window_records, meter, i) for i, r in enumerate(live_runs)
    ]
    for c in cursors:
        c.refill()
    while True:
        active = [c for c in cursors if c.live]
        if not active:
            return
        # The smallest loaded window-end key bounds what can be emitted:
        # every record <= bound across *all* runs is currently loaded
        # (after extend_past pulls the boundary ties), so one stable
        # merge round emits them in globally correct, stable order.
        bound = min(c.head_last_key for c in active)
        for c in active:
            c.extend_past(bound)
        heads = [h for h in (c.take_upto(bound) for c in active) if len(h)]
        if heads and isinstance(heads[0], RunColumns):
            # Windows were validated (or sidecar-trusted) at load time and
            # carry their columns — merge directly, no re-validation.
            merged = kernels.merge_sorted_columns(heads).batch
        else:
            merged = merge_sorted(heads, check=False)
        yield from merged.iter_slices(out_records)
        for c in cursors:
            c.refill()


# ---------------------------------------------------------------------------
# ExternalSorter: stream in, sorted runs out.
# ---------------------------------------------------------------------------


class ExternalSorter:
    """Budget-bounded stable external sort over a stream of batches.

    Feed batches **in stream order** via :meth:`add`; once pending bytes
    reach ``chunk_bytes`` the chunk is stable-sorted and spilled as one
    run.  :meth:`finish` flushes the tail and returns the runs in chunk
    order — merge them with :func:`merge_runs` to get exactly the output
    of one stable in-RAM sort of the concatenated stream.
    """

    def __init__(
        self,
        spill: SpillDir,
        chunk_bytes: int,
        meter: Optional[ResidencyMeter] = None,
        tag: str = "sort",
    ) -> None:
        if chunk_bytes < RECORD_BYTES:
            chunk_bytes = RECORD_BYTES
        self._spill = spill
        self._chunk_bytes = chunk_bytes
        self._meter = meter
        self._tag = tag
        self._pending: List[RecordBatch] = []
        self._pending_bytes = 0
        self._runs: List[Run] = []

    @property
    def runs_so_far(self) -> int:
        return len(self._runs)

    def add(self, batch: RecordBatch) -> None:
        if len(batch) == 0:
            return
        if self._meter is not None:
            self._meter.charge(batch.nbytes, f"{self._tag}.pending")
        self._pending.append(batch)
        self._pending_bytes += batch.nbytes
        if self._pending_bytes >= self._chunk_bytes:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        chunk = sort_batch(RecordBatch.concat(self._pending))
        path = self._spill.new_path(self._tag)
        write_sorted_run(path, chunk)
        self._runs.append(Run.from_file(path, len(chunk)))
        if self._meter is not None:
            self._meter.spilled(chunk.nbytes)
            self._meter.discharge(self._pending_bytes)
        self._pending = []
        self._pending_bytes = 0

    def finish(self) -> List[Run]:
        """Flush the tail chunk and return all runs in chunk order."""
        self._flush()
        return list(self._runs)

    def merge(
        self,
        window_records: int = DEFAULT_WINDOW_RECORDS,
        out_records: int = DEFAULT_WINDOW_RECORDS,
    ) -> Iterator[RecordBatch]:
        """Finish and stream the fully sorted output."""
        return merge_runs(
            self.finish(),
            window_records=window_records,
            out_records=out_records,
            meter=self._meter,
        )


# ---------------------------------------------------------------------------
# Incremental merge frontier (streaming-overlap reduce side).
# ---------------------------------------------------------------------------


class SortedRunWriter:
    """Stream sorted chunks into one run file (+ OVC sidecar with carry).

    The incremental cousin of :func:`write_sorted_run`: chunks arrive one
    at a time (each sorted, each starting at or after the previous
    chunk's last key), records append to the run file and — in ovc mode —
    each chunk's code column is computed **relative to the previous
    chunk's last key** and appended to the sidecar, so the finished file
    is indistinguishable from one written whole.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._f = open(path, "ab")
        self._fovc = (
            open(ovc_sidecar_path(path), "ab") if kernels.use_ovc() else None
        )
        self._last_key: Optional[np.bytes_] = None
        self._num = 0

    def write(self, chunk: RecordBatch) -> None:
        if len(chunk) == 0:
            return
        self._f.write(chunk.as_memoryview())
        if self._fovc is not None:
            base = (
                None
                if self._last_key is None
                else bytes(self._last_key).ljust(KEY_BYTES, b"\x00")
            )
            codes = kernels.ovc_codes(chunk, base_key=base, check=False)
            self._fovc.write(
                np.ascontiguousarray(codes, dtype=OVC_DTYPE).tobytes()
            )
        self._last_key = chunk.keys[-1]
        self._num += len(chunk)

    def close(self) -> Run:
        self._f.close()
        if self._fovc is not None:
            self._fovc.close()
        return Run.from_file(self._path, self._num)


class IncrementalMerger:
    """Merge frontier that starts merge work at first arrival.

    The shuffle ↔ reduce overlap primitive: sorted runs are fed into
    priority **slots** as they arrive (slot index = the run's position in
    the serial reduce's priority order; runs within a slot arrive in
    stream order), and the merger eagerly pre-merges *adjacent* runs
    within a slot whenever the stack top grows to within ``eager_factor``
    of its neighbor — a size-ladder that keeps eager work amortized
    ``O(n log n)`` while the shuffle is still in flight.  Because the
    stable merge is associative and ties break toward the earlier run,
    pre-merging adjacent runs never changes the final byte stream:
    :meth:`finish` yields exactly what :func:`merge_runs` over all fed
    runs in slot-major, feed order would.

    With a ``spill`` dir the pair-merge streams through
    :func:`merge_runs` into a new run file (OVC sidecar carried by
    :class:`SortedRunWriter`) whenever either side is file-backed or the
    pair exceeds ``resident_limit``; merged source files are unlinked
    (fed file runs are owned by the merger).  Without one, everything
    stays resident.
    """

    def __init__(
        self,
        num_slots: int,
        spill: Optional[SpillDir] = None,
        resident_limit: Optional[int] = None,
        window_records: int = DEFAULT_WINDOW_RECORDS,
        out_records: int = DEFAULT_WINDOW_RECORDS,
        meter: Optional[ResidencyMeter] = None,
        eager_factor: float = 2.0,
        tag: str = "overlap",
    ) -> None:
        self._slots: List[List[Run]] = [[] for _ in range(num_slots)]
        self._spill = spill
        self._limit = (
            resident_limit if resident_limit is not None else float("inf")
        )
        self._window = window_records
        self._out = out_records
        self._meter = meter
        self._factor = max(1.0, eager_factor)
        self._tag = tag
        #: Eager pre-merge accounting (overlap telemetry).
        self.eager_merges = 0
        self.eager_records = 0

    @property
    def pending_runs(self) -> int:
        return sum(len(s) for s in self._slots)

    def feed(self, slot: int, run: RunLike) -> None:
        """Add the next run of ``slot`` (runs within a slot in stream order)."""
        run = _as_run(run)
        if run.num_records == 0:
            return
        stack = self._slots[slot]
        stack.append(run)
        while (
            len(stack) >= 2
            and stack[-2].num_records <= self._factor * stack[-1].num_records
        ):
            hi = stack.pop()
            lo = stack.pop()
            stack.append(self._merge_pair(lo, hi))

    def _merge_pair(self, lo: Run, hi: Run) -> Run:
        self.eager_merges += 1
        self.eager_records += lo.num_records + hi.num_records
        resident = lo.batch is not None and hi.batch is not None
        if self._spill is None or (
            resident and lo.nbytes + hi.nbytes <= self._limit
        ):
            return Run.resident(
                merge_sorted([lo.load(), hi.load()], check=False)
            )
        writer = SortedRunWriter(self._spill.new_path(self._tag))
        for chunk in merge_runs(
            [lo, hi],
            window_records=self._window,
            out_records=self._out,
            meter=self._meter,
        ):
            writer.write(chunk)
        merged = writer.close()
        if self._meter is not None:
            self._meter.spilled(merged.nbytes)
        for old in (lo, hi):
            if old.path is not None:
                for stale in (old.path, ovc_sidecar_path(old.path)):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
        return merged

    def finish(
        self, window_records: Optional[int] = None
    ) -> Iterator[RecordBatch]:
        """Stream the stable merge of everything fed, in slot order.

        ``window_records`` overrides the construction-time window for the
        final merge (out-of-core callers re-derive it from how many runs
        actually remain on the frontier).
        """
        runs = [run for stack in self._slots for run in stack]
        return merge_runs(
            runs,
            window_records=(
                self._window if window_records is None else window_records
            ),
            out_records=self._out,
            meter=self._meter,
        )


# ---------------------------------------------------------------------------
# StreamStore: per-key append-ordered record streams (the coded Map store).
# ---------------------------------------------------------------------------


class StreamStore:
    """Keyed, append-ordered, spillable record streams (NOT sorted).

    The coded Map stage retains one intermediate value per ``(subset,
    target)``; XOR coding requires every replica to serialize it
    byte-identically, so the layout is purely *append order* — windows of
    each file hashed in window order, files in ascending id — never a
    sort.  The store accumulates per-key batches and, when the shared
    resident total passes ``flush_bytes``, appends everything to one file
    per key (order preserved: a flush only moves the resident prefix to
    disk).  :meth:`finalize` flushes the tails and returns zero-copy mmap
    views of the complete per-key byte streams for the encoder.
    """

    def __init__(
        self,
        spill: SpillDir,
        flush_bytes: int,
        meter: Optional[ResidencyMeter] = None,
        tag: str = "store",
    ) -> None:
        self._spill = spill
        self._flush_bytes = max(flush_bytes, RECORD_BYTES)
        self._meter = meter
        self._tag = tag
        self._pending: Dict[Hashable, List[RecordBatch]] = {}
        self._paths: Dict[Hashable, str] = {}
        self._counts: Dict[Hashable, int] = {}
        self._resident = 0
        self._order: List[Hashable] = []
        self._sealed: Dict[Hashable, Optional[RecordBatch]] = {}
        self._final: Optional[Dict[Hashable, RecordBatch]] = None

    def append(self, key: Hashable, batch: RecordBatch) -> None:
        if self._final is not None:
            raise RuntimeError("store already finalized")
        if key in self._sealed:
            raise RuntimeError(f"key {key!r} already sealed")
        if key not in self._counts:
            self._counts[key] = 0
            self._order.append(key)
        if len(batch) == 0:
            return
        if self._meter is not None:
            self._meter.charge(batch.nbytes, f"{self._tag}.pending")
        self._pending.setdefault(key, []).append(batch)
        self._counts[key] += len(batch)
        self._resident += batch.nbytes
        if self._resident >= self._flush_bytes:
            self._flush()

    def _flush(self) -> None:
        for key, batches in self._pending.items():
            if not batches:
                continue
            path = self._paths.get(key)
            if path is None:
                path = self._paths[key] = self._spill.new_path(self._tag)
            written = write_run_file(path, batches)
            if self._meter is not None:
                self._meter.spilled(written)
        if self._meter is not None:
            self._meter.discharge(self._resident)
        self._pending = {}
        self._resident = 0

    def keys(self) -> List[Hashable]:
        """All keys in first-append order (deterministic across replicas)."""
        return list(self._order)

    def num_records(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def seal(self, key: Hashable) -> None:
        """Flush ``key``'s pending tail and allow reading it back early.

        Streaming-overlap hook: once a subset's last file is mapped its
        store entries are complete, so sealing just those keys lets the
        encoder / decoder mmap them while other subsets still append.
        The per-key file receives exactly the bytes the eventual global
        flush would have written (append order is preserved; flush timing
        never reorders within a key), so sealed reads are byte-identical
        to post-:meth:`finalize` reads.
        """
        if self._final is not None or key in self._sealed:
            return
        batches = self._pending.pop(key, None)
        if batches:
            nbytes = sum(b.nbytes for b in batches)
            path = self._paths.get(key)
            if path is None:
                path = self._paths[key] = self._spill.new_path(self._tag)
            written = write_run_file(path, batches)
            self._resident -= nbytes
            if self._meter is not None:
                self._meter.spilled(written)
                self._meter.discharge(nbytes)
        self._sealed[key] = None

    def finalize(self) -> None:
        """Flush every tail; afterwards keys read back as mmap views."""
        if self._final is None:
            self._flush()
            self._final = {}

    def get(self, key: Hashable) -> RecordBatch:
        """The complete stream for ``key`` as one zero-copy mmap view.

        Readable after :meth:`finalize`, or early for a :meth:`seal`-ed
        key (the streaming-overlap path reads completed subsets while
        the map tail is still appending other keys).
        """
        if self._final is None:
            if key not in self._sealed:
                raise RuntimeError(
                    "finalize() the store (or seal() the key) before "
                    "reading it back"
                )
            batch = self._sealed[key]
            if batch is None:
                path = self._paths.get(key)
                batch = (
                    RecordBatch.empty() if path is None
                    else read_run_file(path)
                )
                self._sealed[key] = batch
            return batch
        batch = self._final.get(key)
        if batch is None:
            path = self._paths.get(key)
            batch = RecordBatch.empty() if path is None else read_run_file(path)
            self._final[key] = batch
        return batch

    def get_bytes(self, key: Hashable) -> memoryview:
        """The stream's raw serialized bytes (the encoder's lookup form)."""
        return self.get(key).as_memoryview()

    def iter_batches(
        self, key: Hashable, window_records: int
    ) -> Iterator[RecordBatch]:
        """The stream as bounded windows (reduce-side consumption)."""
        return iter(self.get(key).iter_slices(window_records))
