"""Output validation (TeraValidate's role in the Hadoop benchmark suite).

After a distributed sort we verify two properties:

1. **Sortedness** — the concatenation of the per-node outputs, in partition
   order, is non-decreasing in key order (checked without materializing the
   concatenation: each part sorted + boundary keys ordered).
2. **Permutation** — the output is a permutation of the input: same record
   count and same multiset of records.  The multiset check uses an
   order-independent 128-bit checksum (sum of per-record BLAKE2 digests mod
   2^128), so it needs one pass and no global sort.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.kvpairs.records import RECORD_BYTES, RecordBatch
from repro.kvpairs.sorting import is_sorted

_CHECKSUM_MOD = 1 << 128


def batch_checksum(batch: RecordBatch) -> int:
    """Order-independent 128-bit multiset checksum of a batch.

    Sums a 16-byte BLAKE2b digest of each record modulo 2^128.  Addition is
    commutative, so any permutation of the same records gives the same value,
    while any single-byte corruption changes it with overwhelming probability.
    """
    n = len(batch)
    if n == 0:
        return 0
    raw = batch.raw_view()
    total = 0
    # Hash in chunks to bound Python-loop overhead for large batches.
    chunk = 65536
    for start in range(0, n, chunk):
        rows = raw[start : start + chunk]
        for row in rows:
            digest = hashlib.blake2b(row.tobytes(), digest_size=16).digest()
            total = (total + int.from_bytes(digest, "little")) % _CHECKSUM_MOD
    return total


def validate_permutation(inp: RecordBatch, out_parts: Sequence[RecordBatch]) -> None:
    """Assert that ``out_parts`` together are a permutation of ``inp``.

    Raises:
        AssertionError: with a diagnostic message on count or content
        mismatch.
    """
    n_out = sum(len(p) for p in out_parts)
    if n_out != len(inp):
        raise AssertionError(
            f"record count mismatch: input {len(inp)}, output {n_out}"
        )
    in_sum = batch_checksum(inp)
    out_sum = 0
    for p in out_parts:
        out_sum = (out_sum + batch_checksum(p)) % _CHECKSUM_MOD
    if in_sum != out_sum:
        raise AssertionError(
            "output is not a permutation of the input (checksum mismatch)"
        )


def validate_sorted(out_parts: Sequence[RecordBatch]) -> None:
    """Assert that the partition-ordered output is globally sorted.

    Checks each part individually plus the boundary between consecutive
    non-empty parts.

    Raises:
        AssertionError: naming the offending part or boundary.
    """
    prev_idx = None
    prev_last = None  # (hi, lo) of last key of previous non-empty part
    for i, part in enumerate(out_parts):
        if not is_sorted(part):
            raise AssertionError(f"partition {i} is not locally sorted")
        if len(part) == 0:
            continue
        hi, lo = part.key_words()
        first = (int(hi[0]), int(lo[0]))
        if prev_last is not None and first < prev_last:
            raise AssertionError(
                f"boundary violation between partitions {prev_idx} and {i}: "
                f"{prev_last} > {first}"
            )
        prev_last = (int(hi[-1]), int(lo[-1]))
        prev_idx = i


def validate_sorted_iter(batches: Iterable[RecordBatch]) -> int:
    """Assert global sortedness over a *stream* of batches; returns count.

    The streaming counterpart of :func:`validate_sorted` for out-of-core
    runs: it holds one batch (plus the previous boundary key) at a time,
    so a multi-gigabyte output validates in constant memory — feed it
    e.g. ``FileSource(...).iter_batches()`` chained across partitions in
    partition order.

    Raises:
        AssertionError: naming the offending batch or boundary.
    """
    total = 0
    prev_idx = None
    prev_last = None
    for i, batch in enumerate(batches):
        if not is_sorted(batch):
            raise AssertionError(f"batch {i} is not locally sorted")
        total += len(batch)
        if len(batch) == 0:
            continue
        hi, lo = batch.key_words()
        first = (int(hi[0]), int(lo[0]))
        if prev_last is not None and first < prev_last:
            raise AssertionError(
                f"boundary violation between batches {prev_idx} and {i}: "
                f"{prev_last} > {first}"
            )
        prev_last = (int(hi[-1]), int(lo[-1]))
        prev_idx = i
    return total


def checksum_iter(batches: Iterable[RecordBatch]) -> int:
    """Order-independent multiset checksum of a batch stream.

    Summable with :func:`batch_checksum` values mod 2^128 — lets a
    permutation check compare a streamed (out-of-core) dataset against
    resident partitions without materializing either side.
    """
    total = 0
    for batch in batches:
        total = (total + batch_checksum(batch)) % _CHECKSUM_MOD
    return total


def validate_sorted_permutation(
    inp: RecordBatch, out_parts: Sequence[RecordBatch]
) -> None:
    """Full TeraValidate: sorted and a permutation of the input."""
    validate_sorted(out_parts)
    validate_permutation(inp, out_parts)
