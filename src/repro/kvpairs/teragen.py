"""TeraGen-style synthetic record generation.

The paper's inputs come from Hadoop TeraGen: 120 M records of a 10-byte
uniformly random key plus a 90-byte value.  We reproduce the format with a
seeded NumPy generator.  Values embed the global row id in ASCII (as TeraGen
does) so that validation can detect record corruption, and the remainder is a
deterministic filler pattern.

A skewed variant (``teragen_skewed``) draws keys from a Zipf-like
distribution over a reduced key prefix space; it exercises the sampling
partitioner the way hot-key workloads stress real TeraSort deployments.
"""

from __future__ import annotations

import numpy as np

from repro.kvpairs.records import KEY_BYTES, VALUE_BYTES, RecordBatch

_ROWID_DIGITS = 20  # enough for 2**64 row ids in decimal
_FILLER = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def teragen(n: int, seed: int = 0, start_row: int = 0) -> RecordBatch:
    """Generate ``n`` TeraGen-format records.

    Args:
        n: number of 100-byte records.
        seed: RNG seed; same (seed, start_row, n) always gives the same batch.
        start_row: global row id of the first record (embedded in values).

    Returns:
        A :class:`RecordBatch` with uniform random 10-byte keys.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    # Uniform random key bytes, exactly like TeraGen's random keys.
    keys = rng.integers(0, 256, size=(n, KEY_BYTES), dtype=np.uint8)
    values = _make_values(n, start_row)
    return RecordBatch.from_arrays(keys, values)


def teragen_skewed(
    n: int,
    seed: int = 0,
    start_row: int = 0,
    zipf_a: float = 1.3,
    hot_prefixes: int = 4096,
) -> RecordBatch:
    """Generate records whose key *prefixes* follow a Zipf distribution.

    The first two key bytes are drawn from ``hot_prefixes`` values with
    Zipf(``zipf_a``) popularity; the remaining 8 bytes stay uniform.  This
    creates heavily imbalanced range partitions under a naive uniform
    splitter, which the sampling partitioner must fix.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if zipf_a <= 1.0:
        raise ValueError(f"zipf_a must be > 1, got {zipf_a}")
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(zipf_a, size=n)
    prefixes = ((ranks - 1) % hot_prefixes).astype(np.uint16)
    # Spread prefixes over the full 16-bit space, preserving the skew shape.
    spread = (
        prefixes.astype(np.uint32) * (65536 // hot_prefixes)
    ).astype(np.uint16)
    keys = np.empty((n, KEY_BYTES), dtype=np.uint8)
    keys[:, 0] = spread >> 8
    keys[:, 1] = spread & 0xFF
    keys[:, 2:] = rng.integers(0, 256, size=(n, KEY_BYTES - 2), dtype=np.uint8)
    values = _make_values(n, start_row)
    return RecordBatch.from_arrays(keys, values)


def _make_values(n: int, start_row: int) -> np.ndarray:
    """Vectorized 90-byte values: zero-padded decimal row id + filler."""
    values = np.empty((n, VALUE_BYTES), dtype=np.uint8)
    if n == 0:
        return values
    row_ids = np.arange(start_row, start_row + n, dtype=np.uint64)
    # Decimal digits of the row id, most significant first, as ASCII.
    digits = np.empty((n, _ROWID_DIGITS), dtype=np.uint64)
    rem = row_ids.copy()
    for pos in range(_ROWID_DIGITS - 1, -1, -1):
        digits[:, pos] = rem % 10
        rem //= 10
    values[:, :_ROWID_DIGITS] = digits.astype(np.uint8) + ord("0")
    filler = np.frombuffer(_FILLER, dtype=np.uint8)
    reps = -(-(VALUE_BYTES - _ROWID_DIGITS) // len(filler))
    tail = np.tile(filler, reps)[: VALUE_BYTES - _ROWID_DIGITS]
    values[:, _ROWID_DIGITS:] = tail
    return values


def teragen_to_file(
    path: str,
    n: int,
    seed: int = 0,
    start_row: int = 0,
    batch_records: int = 0,
) -> int:
    """Write ``n`` synthetic records to ``path`` (raw packed teragen format).

    Generation is windowed — memory stays bounded by one window no matter
    how large ``n`` is — and uses the aligned-window stream of
    :class:`~repro.kvpairs.datasource.TeragenSource`, so
    ``FileSource(path)`` later yields byte-identical records to
    ``TeragenSource(n, seed, start_row)``: the on-disk and generate-local
    descriptions of a dataset are interchangeable.

    Returns:
        Bytes written.
    """
    # Local import: datasource imports this module for its generator.
    from repro.kvpairs.datasource import DEFAULT_BATCH_RECORDS, TeragenSource

    source = TeragenSource(n, seed, start_row)
    written = 0
    with open(path, "wb") as f:
        for batch in source.iter_batches(batch_records or DEFAULT_BATCH_RECORDS):
            f.write(batch.as_memoryview())
            written += batch.nbytes
    return written


def extract_row_ids(batch: RecordBatch) -> np.ndarray:
    """Recover the embedded row ids from a TeraGen batch's values.

    Inverse of the value layout produced by :func:`teragen`; used by
    validation to check that no record was corrupted in flight.
    """
    n = len(batch)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    raw = batch.raw_view()[:, KEY_BYTES:]
    digits = raw[:, :_ROWID_DIGITS].astype(np.uint64) - ord("0")
    if digits.min(initial=0) > 9 or digits.max(initial=0) > 9:
        raise ValueError("values do not carry TeraGen row ids")
    out = np.zeros(n, dtype=np.uint64)
    for pos in range(_ROWID_DIGITS):
        out = out * np.uint64(10) + digits[:, pos]
    return out
