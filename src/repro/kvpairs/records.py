"""100-byte KV records stored in NumPy structured arrays.

Format (identical to Hadoop TeraGen, which the paper uses):

* key:   10 bytes, compared as a big-endian unsigned integer — i.e. plain
  lexicographic byte order;
* value: 90 bytes, opaque.

Key comparisons never go through Python objects.  A 10-byte key is decomposed
into ``(hi, lo)`` where ``hi`` is the first 8 bytes as a big-endian ``uint64``
and ``lo`` is the last 2 bytes as a big-endian ``uint16``; ``np.lexsort`` on
the pair realizes the exact 10-byte order.  Range partitioning uses ``hi``
only, which is a deterministic function of the key (all records with equal
``hi`` land in the same partition, so global sortedness across partitions is
preserved).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.utils import copytrack

#: Anything exporting the buffer protocol that a batch can wrap or emit.
BufferLike = Union[bytes, bytearray, memoryview]

KEY_BYTES = 10
VALUE_BYTES = 90
RECORD_BYTES = KEY_BYTES + VALUE_BYTES

RECORD_DTYPE = np.dtype([("key", f"S{KEY_BYTES}"), ("value", f"S{VALUE_BYTES}")])
assert RECORD_DTYPE.itemsize == RECORD_BYTES


class RecordBatch:
    """An immutable-by-convention batch of 100-byte KV records.

    Wraps a C-contiguous structured array of :data:`RECORD_DTYPE`.  All
    operations returning new batches share memory where NumPy slicing allows.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr: np.ndarray) -> None:
        if arr.dtype != RECORD_DTYPE:
            raise TypeError(f"expected dtype {RECORD_DTYPE}, got {arr.dtype}")
        if arr.ndim != 1:
            raise ValueError(f"expected 1-D record array, got shape {arr.shape}")
        self._arr = arr

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "RecordBatch":
        return cls(np.empty(0, dtype=RECORD_DTYPE))

    @classmethod
    def from_arrays(cls, keys: np.ndarray, values: np.ndarray) -> "RecordBatch":
        """Build a batch from parallel key/value byte arrays.

        Args:
            keys: shape ``(n,)`` of ``S10`` or ``(n, 10)`` uint8.
            values: shape ``(n,)`` of ``S90`` or ``(n, 90)`` uint8.
        """
        keys = _as_bytes_col(keys, KEY_BYTES, "key")
        values = _as_bytes_col(values, VALUE_BYTES, "value")
        if len(keys) != len(values):
            raise ValueError(
                f"length mismatch: {len(keys)} keys vs {len(values)} values"
            )
        arr = np.empty(len(keys), dtype=RECORD_DTYPE)
        arr["key"] = keys
        arr["value"] = values
        return cls(arr)

    @classmethod
    def concat(cls, batches: Iterable["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches in order (empty input gives an empty batch)."""
        arrays = [b._arr for b in batches]
        if not arrays:
            return cls.empty()
        return cls(np.concatenate(arrays))

    # -- accessors ----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying structured array (do not mutate)."""
        return self._arr

    @property
    def keys(self) -> np.ndarray:
        return self._arr["key"]

    @property
    def values(self) -> np.ndarray:
        return self._arr["value"]

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (``len(self) * 100``)."""
        return len(self._arr) * RECORD_BYTES

    def __len__(self) -> int:
        return len(self._arr)

    def __repr__(self) -> str:
        return f"RecordBatch(n={len(self)}, nbytes={self.nbytes})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        return len(self) == len(other) and bool(
            np.array_equal(self._arr, other._arr)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable buffer underneath

    # -- key decomposition ---------------------------------------------------

    def key_words(self) -> Tuple[np.ndarray, np.ndarray]:
        """Decompose keys into ``(hi, lo)`` sortable integer columns.

        Returns:
            ``hi``: first 8 key bytes as big-endian ``uint64``;
            ``lo``: last 2 key bytes as big-endian ``uint16``.

        ``np.lexsort((lo, hi))`` orders records exactly as 10-byte
        lexicographic key order.
        """
        n = len(self._arr)
        if n == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.uint16),
            )
        # View the structured array as raw bytes; each row is 100 bytes with
        # the key first.  Copies only 10n bytes total.
        raw = self.raw_view()
        hi = np.ascontiguousarray(raw[:, :8]).view(">u8").reshape(n)
        lo = np.ascontiguousarray(raw[:, 8:10]).view(">u2").reshape(n)
        return hi.astype(np.uint64, copy=False), lo.astype(np.uint16, copy=False)

    def key_prefix_u64(self) -> np.ndarray:
        """First 8 key bytes as big-endian ``uint64`` (partitioning column)."""
        return self.key_words()[0]

    def raw_view(self) -> np.ndarray:
        """The records as an ``(n, 100)`` uint8 matrix (zero-copy if possible).

        Columns ``0..9`` are the key bytes, ``10..99`` the value bytes.
        Field views of structured arrays are not byte-contiguous, so byte-level
        access must go through this whole-record view.
        """
        arr = self._arr
        if not arr.flags["C_CONTIGUOUS"]:
            arr = np.ascontiguousarray(arr)
        return arr.view(np.uint8).reshape(len(arr), RECORD_BYTES)

    # -- transforms ----------------------------------------------------------

    def take(self, indices: np.ndarray) -> "RecordBatch":
        return RecordBatch(self._arr[indices])

    def slice(self, start: int, stop: int) -> "RecordBatch":
        return RecordBatch(self._arr[start:stop])

    def iter_slices(self, window_records: int) -> Iterable["RecordBatch"]:
        """Consecutive zero-copy windows of at most ``window_records``.

        The one bounded-windowing loop every streaming consumer (spill
        runs, stores, data sources, merges) shares.
        """
        if window_records <= 0:
            raise ValueError(
                f"window_records must be >= 1, got {window_records}"
            )
        for start in range(0, len(self), window_records):
            yield self.slice(start, min(start + window_records, len(self)))

    def split_at(self, offsets: Sequence[int]) -> List["RecordBatch"]:
        """Split into consecutive chunks at ``offsets`` (cumulative indices).

        ``offsets`` has one entry per split point, e.g. ``[3, 7]`` splits a
        batch of 10 into chunks of sizes 3, 4, 3.
        """
        parts = np.split(self._arr, list(offsets))
        return [RecordBatch(p) for p in parts]

    def copy(self) -> "RecordBatch":
        return RecordBatch(self._arr.copy())

    # -- raw bytes -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Raw little-overhead wire form: the packed 100-byte records (copies)."""
        copytrack.count_copy(self.nbytes, "records.to_bytes")
        return self._arr.tobytes()

    def as_memoryview(self) -> memoryview:
        """Flat byte view of the packed records (zero-copy when contiguous).

        The view aliases this batch's memory — use it as a gather-send
        part or an encoder input, not as something to mutate.  Batches
        built from non-contiguous slices are compacted first (one copy).
        """
        arr = self._arr
        if not arr.flags["C_CONTIGUOUS"]:
            copytrack.count_copy(self.nbytes, "records.compact")
            arr = np.ascontiguousarray(arr)
        return memoryview(arr.view(np.uint8).reshape(-1))

    @classmethod
    def from_bytes(cls, buf: BufferLike) -> "RecordBatch":
        """Inverse of :meth:`to_bytes`; copies into an owned array.

        Raises:
            ValueError: if ``len(buf)`` is not a multiple of 100.
        """
        view = _record_view(buf)
        copytrack.count_copy(view.size * RECORD_BYTES, "records.from_bytes")
        return cls(view.copy())

    @classmethod
    def from_buffer(cls, buf: BufferLike) -> "RecordBatch":
        """Zero-copy *read-only* batch over a received buffer.

        The array aliases ``buf`` (NumPy keeps the buffer alive, so the
        batch may outlive the name the caller held it by) and is marked
        non-writeable — but the aliasing runs both ways: if the *owner* of
        ``buf`` mutates it later, this batch sees the change.  Use it for
        decode-then-discard paths; any transform that must survive later
        buffer reuse (``sort_batch``, ``take``, ``concat``) already copies
        into fresh memory.

        Raises:
            ValueError: if ``len(buf)`` is not a multiple of 100.
        """
        arr = _record_view(buf)
        arr.flags.writeable = False
        return cls(arr)


def _record_view(buf: BufferLike) -> np.ndarray:
    """View ``buf`` as a 1-D :data:`RECORD_DTYPE` array (no copy)."""
    view = memoryview(buf)
    if view.ndim != 1 or view.format not in ("B", "b", "c"):
        view = view.cast("B")
    if len(view) % RECORD_BYTES != 0:
        raise ValueError(
            f"buffer length {len(view)} not a multiple of {RECORD_BYTES}"
        )
    return np.frombuffer(view, dtype=RECORD_DTYPE)


def _as_bytes_col(a: np.ndarray, width: int, what: str) -> np.ndarray:
    """Normalize an ``(n, width)`` uint8 or ``(n,)`` S<width> array to S<width>."""
    a = np.asarray(a)
    if a.dtype == np.uint8:
        if a.ndim != 2 or a.shape[1] != width:
            raise ValueError(f"{what} uint8 array must be (n, {width}), got {a.shape}")
        return np.ascontiguousarray(a).view(f"S{width}").reshape(len(a))
    if a.dtype == np.dtype(f"S{width}"):
        return a
    if a.dtype.kind == "S":
        # Narrower bytes are zero-padded to width by astype.
        if a.dtype.itemsize > width:
            raise ValueError(
                f"{what} byte strings wider than {width}: {a.dtype.itemsize}"
            )
        return a.astype(f"S{width}")
    raise TypeError(f"{what}: unsupported dtype {a.dtype}")
