"""Key-value record substrate (the paper's TeraGen data format).

Every record is 100 bytes: a 10-byte key and a 90-byte value, matching the
Hadoop TeraGen records the paper sorts.  Records are held in NumPy structured
arrays and all bulk operations (partitioning, sorting, serialization) are
vectorized per the HPC guide — no per-record Python loops on the data path.

The sort/merge/partition hot path runs on the compute kernels of
:mod:`repro.kvpairs.kernels` (offset-value-coded merge, MSB radix
partition) by default; ``REPRO_KERNELS=classic`` selects the plain
``searchsorted`` implementations for A/B benchmarking.  Both produce
byte-identical output.
"""

from repro.kvpairs.records import (
    KEY_BYTES,
    RECORD_BYTES,
    RECORD_DTYPE,
    VALUE_BYTES,
    RecordBatch,
)
from repro.kvpairs.teragen import teragen, teragen_skewed
from repro.kvpairs.serialization import (
    pack_batch,
    pack_batch_parts,
    unpack_batch,
    pack_batches,
    pack_batches_parts,
    unpack_batches,
)
from repro.kvpairs.kernels import (
    KERNELS_ENV,
    KernelStats,
    kernel_mode,
    ovc_codes,
    use_ovc,
)
from repro.kvpairs.sorting import sort_batch, merge_sorted, is_sorted
from repro.kvpairs.validation import (
    validate_sorted,
    validate_permutation,
    batch_checksum,
)

__all__ = [
    "KEY_BYTES",
    "VALUE_BYTES",
    "RECORD_BYTES",
    "RECORD_DTYPE",
    "RecordBatch",
    "teragen",
    "teragen_skewed",
    "pack_batch",
    "pack_batch_parts",
    "unpack_batch",
    "pack_batches",
    "pack_batches_parts",
    "unpack_batches",
    "KERNELS_ENV",
    "KernelStats",
    "kernel_mode",
    "ovc_codes",
    "use_ovc",
    "sort_batch",
    "merge_sorted",
    "is_sorted",
    "validate_sorted",
    "validate_permutation",
    "batch_checksum",
]
