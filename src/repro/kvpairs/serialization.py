"""Pack / Unpack: the wire format for intermediate values.

The paper's implementation adds explicit Pack and Unpack stages around the
shuffle: each intermediate value is serialized into one contiguous memory
array so that a single TCP flow carries it (Section V-A).  We reproduce that
with a small framed binary format:

* ``pack_batch`` / ``unpack_batch`` — one RecordBatch <-> one frame;
* ``pack_batches`` / ``unpack_batches`` — an ordered sequence of tagged
  batches in a single buffer (used when a node ships several intermediate
  values to the same destination).

The pack side is zero-copy: ``pack_batch_parts`` / ``pack_batches_parts``
return a gather list of ``[header, records-view, header, records-view,
...]`` parts that feeds straight into the runtime's vectored send, so the
record bytes are never re-copied between the mapper's structured array and
the socket.  The joined-``bytes`` forms (``pack_batch`` / ``pack_batches``)
remain for callers that genuinely need one owned buffer.

The unpack side takes ``copy=False`` to return batches that are zero-copy
read-only views into the received buffer (``RecordBatch.from_buffer``);
the views keep the parent buffer alive, so they may safely outlive the
caller's reference to it.

Frame layout (little-endian):

========  =====  =========================================
offset    size   field
========  =====  =========================================
0         4      magic ``b"CTS1"``
4         8      tag (uint64, caller-defined identifier)
12        8      payload length in bytes (uint64)
20        n      payload: packed 100-byte records
========  =====  =========================================
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Tuple

from repro.kvpairs.records import RECORD_BYTES, BufferLike, RecordBatch
from repro.utils import copytrack

MAGIC = b"CTS1"
_HEADER = struct.Struct("<4sQQ")
HEADER_BYTES = _HEADER.size


class SerializationError(ValueError):
    """Raised when a buffer does not parse as a valid frame sequence."""


def pack_batch_parts(batch: RecordBatch, tag: int = 0) -> List[BufferLike]:
    """One batch as a ``[header, records-view]`` gather list (zero-copy)."""
    payload = batch.as_memoryview()
    return [_HEADER.pack(MAGIC, tag, len(payload)), payload]


def pack_batch(batch: RecordBatch, tag: int = 0) -> bytes:
    """Serialize one batch into a single owned framed buffer (one copy)."""
    parts = pack_batch_parts(batch, tag)
    copytrack.count_copy(batch.nbytes, "serialization.pack_join")
    return b"".join(parts)


def unpack_batch(buf: BufferLike, copy: bool = True) -> Tuple[int, RecordBatch]:
    """Parse a buffer holding exactly one frame.

    Args:
        buf: the framed buffer (any bytes-like object).
        copy: ``False`` returns a zero-copy read-only batch viewing
            ``buf``; ``True`` (default) copies into an owned batch.

    Returns:
        ``(tag, batch)``.

    Raises:
        SerializationError: on bad magic, truncation, or trailing bytes.
    """
    view = memoryview(buf)
    tag, batch, end = _read_frame(view, 0, copy)
    if end != len(view):
        raise SerializationError(
            f"{len(view) - end} trailing bytes after single frame"
        )
    return tag, batch


def pack_batches_parts(
    batches: Iterable[Tuple[int, RecordBatch]]
) -> List[BufferLike]:
    """An ordered ``(tag, batch)`` sequence as one flat gather list.

    The returned parts alternate ``header, records-view, ...`` and form
    exactly the buffer :func:`pack_batches` would produce — without
    materializing it.
    """
    parts: List[BufferLike] = []
    for tag, batch in batches:
        parts.extend(pack_batch_parts(batch, tag))
    return parts


def pack_batches(batches: Iterable[Tuple[int, RecordBatch]]) -> bytes:
    """Serialize an ordered sequence of ``(tag, batch)`` into one buffer."""
    parts = pack_batches_parts(batches)
    copytrack.count_copy(
        sum(len(p) for p in parts), "serialization.pack_join"
    )
    return b"".join(parts)


def unpack_batches(
    buf: BufferLike, copy: bool = True
) -> List[Tuple[int, RecordBatch]]:
    """Parse a concatenation of frames, preserving order.

    With ``copy=False`` every batch is a zero-copy read-only view into
    ``buf``; the views keep the underlying buffer alive even after the
    caller drops its own reference.

    Raises:
        SerializationError: if any frame is malformed.
    """
    view = memoryview(buf)
    out: List[Tuple[int, RecordBatch]] = []
    pos = 0
    while pos < len(view):
        tag, batch, pos = _read_frame(view, pos, copy)
        out.append((tag, batch))
    return out


def unpack_batches_dict(
    buf: BufferLike, copy: bool = True
) -> Dict[int, RecordBatch]:
    """Like :func:`unpack_batches` but keyed by tag.

    Raises:
        SerializationError: on duplicate tags.
    """
    out: Dict[int, RecordBatch] = {}
    for tag, batch in unpack_batches(buf, copy=copy):
        if tag in out:
            raise SerializationError(f"duplicate tag {tag} in frame sequence")
        out[tag] = batch
    return out


def packed_size(n_records: int) -> int:
    """Frame size for a batch of ``n_records`` (header + payload)."""
    return HEADER_BYTES + n_records * RECORD_BYTES


def _read_frame(
    view: memoryview, pos: int, copy: bool
) -> Tuple[int, RecordBatch, int]:
    if len(view) - pos < HEADER_BYTES:
        raise SerializationError(
            f"truncated header at offset {pos} ({len(view) - pos} bytes left)"
        )
    magic, tag, length = _HEADER.unpack_from(view, pos)
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r} at offset {pos}")
    start = pos + HEADER_BYTES
    end = start + length
    if end > len(view):
        raise SerializationError(
            f"truncated payload at offset {start}: need {length}, "
            f"have {len(view) - start}"
        )
    if length % RECORD_BYTES != 0:
        raise SerializationError(
            f"payload length {length} not a multiple of {RECORD_BYTES}"
        )
    body = view[start:end]
    batch = RecordBatch.from_bytes(body) if copy else RecordBatch.from_buffer(body)
    return tag, batch, end
