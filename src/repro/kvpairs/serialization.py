"""Pack / Unpack: the wire format for intermediate values.

The paper's implementation adds explicit Pack and Unpack stages around the
shuffle: each intermediate value is serialized into one contiguous memory
array so that a single TCP flow carries it (Section V-A).  We reproduce that
with a small framed binary format:

* ``pack_batch`` / ``unpack_batch`` — one RecordBatch <-> one frame;
* ``pack_batches`` / ``unpack_batches`` — an ordered sequence of tagged
  batches in a single buffer (used when a node ships several intermediate
  values to the same destination).

Frame layout (little-endian):

========  =====  =========================================
offset    size   field
========  =====  =========================================
0         4      magic ``b"CTS1"``
4         8      tag (uint64, caller-defined identifier)
12        8      payload length in bytes (uint64)
20        n      payload: packed 100-byte records
========  =====  =========================================
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.kvpairs.records import RECORD_BYTES, RecordBatch

MAGIC = b"CTS1"
_HEADER = struct.Struct("<4sQQ")
HEADER_BYTES = _HEADER.size


class SerializationError(ValueError):
    """Raised when a buffer does not parse as a valid frame sequence."""


def pack_batch(batch: RecordBatch, tag: int = 0) -> bytes:
    """Serialize one batch into a single framed buffer."""
    payload = batch.to_bytes()
    return _HEADER.pack(MAGIC, tag, len(payload)) + payload


def unpack_batch(buf: bytes) -> Tuple[int, RecordBatch]:
    """Parse a buffer holding exactly one frame.

    Returns:
        ``(tag, batch)``.

    Raises:
        SerializationError: on bad magic, truncation, or trailing bytes.
    """
    tag, batch, end = _read_frame(buf, 0)
    if end != len(buf):
        raise SerializationError(
            f"{len(buf) - end} trailing bytes after single frame"
        )
    return tag, batch


def pack_batches(batches: Iterable[Tuple[int, RecordBatch]]) -> bytes:
    """Serialize an ordered sequence of ``(tag, batch)`` into one buffer."""
    parts: List[bytes] = []
    for tag, batch in batches:
        parts.append(pack_batch(batch, tag))
    return b"".join(parts)


def unpack_batches(buf: bytes) -> List[Tuple[int, RecordBatch]]:
    """Parse a concatenation of frames, preserving order.

    Raises:
        SerializationError: if any frame is malformed.
    """
    out: List[Tuple[int, RecordBatch]] = []
    pos = 0
    while pos < len(buf):
        tag, batch, pos = _read_frame(buf, pos)
        out.append((tag, batch))
    return out


def unpack_batches_dict(buf: bytes) -> Dict[int, RecordBatch]:
    """Like :func:`unpack_batches` but keyed by tag.

    Raises:
        SerializationError: on duplicate tags.
    """
    out: Dict[int, RecordBatch] = {}
    for tag, batch in unpack_batches(buf):
        if tag in out:
            raise SerializationError(f"duplicate tag {tag} in frame sequence")
        out[tag] = batch
    return out


def packed_size(n_records: int) -> int:
    """Frame size for a batch of ``n_records`` (header + payload)."""
    return HEADER_BYTES + n_records * RECORD_BYTES


def _read_frame(buf: bytes, pos: int) -> Tuple[int, RecordBatch, int]:
    if len(buf) - pos < HEADER_BYTES:
        raise SerializationError(
            f"truncated header at offset {pos} ({len(buf) - pos} bytes left)"
        )
    magic, tag, length = _HEADER.unpack_from(buf, pos)
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r} at offset {pos}")
    start = pos + HEADER_BYTES
    end = start + length
    if end > len(buf):
        raise SerializationError(
            f"truncated payload at offset {start}: need {length}, "
            f"have {len(buf) - start}"
        )
    if length % RECORD_BYTES != 0:
        raise SerializationError(
            f"payload length {length} not a multiple of {RECORD_BYTES}"
        )
    batch = RecordBatch.from_bytes(buf[start:end])
    return tag, batch, end
